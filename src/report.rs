//! The common result shape returned by every partitioning algorithm.
//!
//! Every [`crate::api::PartitionJob`] run — whatever driver it dispatches
//! to — produces one [`PartitionReport`]: the assignment, the per-stream
//! history, the quality metrics, the per-phase wall-clock timings and the
//! resolved effective configuration. The report serialises itself to JSON
//! with a hand-rolled writer (no external dependencies), so bench sweeps
//! and the CLI `--json` flag can emit machine-readable results.

use hyperpraw_core::{PartitionHistory, StopReason};
use hyperpraw_hypergraph::Partition;
use hyperpraw_lowmem::StreamedQuality;

use crate::api::Algorithm;

/// Where a report's quality metrics stand. Stream runs cannot afford an
/// in-memory evaluation, so their cut metrics start out deferred rather
/// than silently absent; the JSON carries this status explicitly so
/// consumers can tell "not evaluated yet" from "evaluated to null".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QualityStatus {
    /// The metrics were computed in memory as part of the run.
    Evaluated,
    /// The run skipped evaluation (out-of-core stream); the cut metrics
    /// are `null` until back-filled through
    /// [`PartitionReport::attach_streamed_quality`].
    Deferred,
    /// Deferred metrics were back-filled by a streamed (edge-major
    /// re-read) evaluation.
    Streamed,
}

impl QualityStatus {
    /// Stable lowercase identifier used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            QualityStatus::Evaluated => "evaluated",
            QualityStatus::Deferred => "deferred",
            QualityStatus::Streamed => "streamed",
        }
    }
}

/// Wall-clock seconds spent in each phase of a job run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// Time spent inside the partitioning driver (including any
    /// precomputation the driver performs, e.g. the adjacency build).
    pub partition_secs: f64,
    /// Time spent evaluating the quality metrics of the result
    /// (zero when the run could not afford an evaluation).
    pub evaluate_secs: f64,
}

/// Extra statistics reported by the memory-bounded streaming drivers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LowMemStats {
    /// The `α` the value function actually used (resolved from the FENNEL
    /// formula when the configuration left it unset).
    pub alpha: f64,
    /// Streaming passes executed (may stop early on a fixed point).
    pub passes: usize,
    /// Buffered low-confidence assignments revisited after the final pass.
    pub restreamed: usize,
    /// How many revisited assignments changed partition.
    pub moved_in_restream: usize,
    /// Heap bytes held by the connectivity index at the end of the run.
    pub index_memory_bytes: usize,
}

/// The resolved configuration a job ran with. Fields that do not apply to
/// the dispatched algorithm are `None`.
#[derive(Clone, Debug, PartialEq)]
pub struct EffectiveConfig {
    /// Number of partitions (compute units).
    pub partitions: u32,
    /// RNG seed.
    pub seed: u64,
    /// Whether the driver saw a profiled (non-uniform) cost matrix.
    pub architecture_aware: bool,
    /// Imbalance tolerance (restreaming and multilevel drivers).
    pub imbalance_tolerance: Option<f64>,
    /// Maximum number of streams/passes.
    pub max_iterations: Option<usize>,
    /// The `α` tempering factor (restreaming drivers).
    pub tempering_factor: Option<f64>,
    /// Refinement factor; `None` for "no refinement" or non-restreaming
    /// drivers.
    pub refinement_factor: Option<f64>,
    /// Explicit initial `α` (when the configuration pinned one).
    pub initial_alpha: Option<f64>,
    /// Connectivity provider name (in-memory HyperPRAW drivers).
    pub connectivity: Option<&'static str>,
    /// Stream order name (in-memory HyperPRAW drivers).
    pub stream_order: Option<&'static str>,
    /// Worker threads (1 = sequential); a `threads(0)` auto-detect request
    /// is resolved to the real machine parallelism before it lands here.
    pub threads: usize,
    /// Worker scheduling of the parallel drivers: `"bsp"` (deterministic
    /// bulk-synchronous windows) or `"steal"` (lock-free work stealing).
    /// `None` for single-threaded and non-parallel drivers.
    pub parallel_mode: Option<&'static str>,
    /// Vertices per synchronisation window (bulk-synchronous mode only —
    /// work stealing has no windows).
    pub sync_interval: Option<usize>,
    /// Connectivity index kind (lowmem drivers).
    pub index: Option<&'static str>,
    /// Memory budget in bytes (lowmem drivers).
    pub budget_bytes: Option<usize>,
    /// Sketch rebuilds between passes (lowmem drivers).
    pub rebuild_sketches: Option<bool>,
}

/// The common result of a [`crate::api::PartitionJob`] run.
///
/// The `partition` is bit-identical to what the underlying driver returns
/// for the same configuration (pinned by `tests/api_equivalence.rs`); the
/// report only adds the uniform metadata around it.
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// The algorithm that produced the partition.
    pub algorithm: Algorithm,
    /// The vertex-to-partition assignment.
    pub partition: Partition,
    /// Per-stream history (empty unless the driver tracks one).
    pub history: PartitionHistory,
    /// Why the run stopped (`None` for one-shot drivers).
    pub stop_reason: Option<StopReason>,
    /// Streams/passes executed (1 for the one-shot baselines).
    pub iterations: usize,
    /// The `α` in effect when the run stopped (`None` for drivers without
    /// a value function).
    pub final_alpha: Option<f64>,
    /// Total imbalance `max_k W(k) / avg_k W(k)` of the returned
    /// partition. Stream runs cannot recover per-vertex weights after the
    /// fact and report the unweighted (vertex-count) imbalance.
    pub imbalance: f64,
    /// Partitioning communication cost under the evaluation cost matrix
    /// (`None` when the run could not afford the evaluation, e.g. a pure
    /// stream run).
    pub comm_cost: Option<f64>,
    /// Number of hyperedges spanning more than one partition.
    pub hyperedge_cut: Option<u64>,
    /// Sum of external degrees over cut hyperedges.
    pub soed: Option<u64>,
    /// Whether the quality metrics were evaluated, deferred, or
    /// back-filled by a streamed evaluation.
    pub quality: QualityStatus,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// The registry the job ran with. Disabled (the default) unless the
    /// job was built with [`crate::api::PartitionJob::registry`]; the JSON
    /// `telemetry` section embeds its metric snapshot when live.
    pub telemetry: hyperpraw_telemetry::Registry,
    /// The resolved effective configuration.
    pub config: EffectiveConfig,
    /// Extra statistics from the lowmem drivers.
    pub lowmem: Option<LowMemStats>,
}

impl PartitionReport {
    /// Fills the cut metrics from a streamed quality evaluation (the
    /// edge-major re-read of the input file that out-of-core runs use
    /// instead of an in-memory [`hyperpraw_core::metrics::QualityReport`]).
    pub fn attach_streamed_quality(&mut self, quality: &StreamedQuality) {
        self.hyperedge_cut = Some(quality.hyperedge_cut);
        self.soed = Some(quality.soed);
        self.imbalance = quality.imbalance;
        self.quality = QualityStatus::Streamed;
    }

    /// Serialises the report as a JSON object, without the per-vertex
    /// assignment (use [`PartitionReport::to_json_with_assignment`] when
    /// the consumer needs it inline).
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Serialises the report as a JSON object including the `assignment`
    /// array (one partition id per vertex).
    pub fn to_json_with_assignment(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, with_assignment: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        field(&mut out, "algorithm", json_str(self.algorithm.name()));
        field(
            &mut out,
            "partitions",
            self.partition.num_parts().to_string(),
        );
        field(
            &mut out,
            "num_vertices",
            self.partition.num_vertices().to_string(),
        );
        field(&mut out, "iterations", self.iterations.to_string());
        field(
            &mut out,
            "stop_reason",
            match self.stop_reason {
                Some(r) => json_str(r.name()),
                None => "null".into(),
            },
        );
        field(&mut out, "final_alpha", json_opt_f64(self.final_alpha));

        out.push_str("  \"metrics\": {\n");
        subfield(&mut out, "quality", json_str(self.quality.name()));
        subfield(&mut out, "imbalance", json_f64(self.imbalance));
        subfield(&mut out, "comm_cost", json_opt_f64(self.comm_cost));
        subfield(&mut out, "hyperedge_cut", json_opt_u64(self.hyperedge_cut));
        last_subfield(&mut out, "soed", json_opt_u64(self.soed));
        out.push_str("  },\n");

        // The telemetry section subsumes the per-phase timings and, when
        // the job ran with a live registry, embeds its metric snapshot
        // (counters, gauges, histogram percentiles).
        out.push_str("  \"telemetry\": {\n");
        subfield(
            &mut out,
            "partition_secs",
            json_f64(self.timings.partition_secs),
        );
        subfield(
            &mut out,
            "evaluate_secs",
            json_f64(self.timings.evaluate_secs),
        );
        last_subfield(
            &mut out,
            "metrics",
            if self.telemetry.is_enabled() {
                self.telemetry.render_json()
            } else {
                "null".into()
            },
        );
        out.push_str("  },\n");

        let c = &self.config;
        out.push_str("  \"config\": {\n");
        subfield(&mut out, "partitions", c.partitions.to_string());
        subfield(&mut out, "seed", c.seed.to_string());
        subfield(
            &mut out,
            "architecture_aware",
            c.architecture_aware.to_string(),
        );
        subfield(
            &mut out,
            "imbalance_tolerance",
            json_opt_f64(c.imbalance_tolerance),
        );
        subfield(&mut out, "max_iterations", json_opt_usize(c.max_iterations));
        subfield(
            &mut out,
            "tempering_factor",
            json_opt_f64(c.tempering_factor),
        );
        subfield(
            &mut out,
            "refinement_factor",
            json_opt_f64(c.refinement_factor),
        );
        subfield(&mut out, "initial_alpha", json_opt_f64(c.initial_alpha));
        subfield(&mut out, "connectivity", json_opt_str(c.connectivity));
        subfield(&mut out, "stream_order", json_opt_str(c.stream_order));
        subfield(&mut out, "threads", c.threads.to_string());
        subfield(&mut out, "parallel_mode", json_opt_str(c.parallel_mode));
        subfield(&mut out, "sync_interval", json_opt_usize(c.sync_interval));
        subfield(&mut out, "index", json_opt_str(c.index));
        subfield(&mut out, "budget_bytes", json_opt_usize(c.budget_bytes));
        last_subfield(
            &mut out,
            "rebuild_sketches",
            match c.rebuild_sketches {
                Some(b) => b.to_string(),
                None => "null".into(),
            },
        );
        out.push_str("  },\n");

        match &self.lowmem {
            None => field(&mut out, "lowmem", "null".into()),
            Some(s) => {
                out.push_str("  \"lowmem\": {\n");
                subfield(&mut out, "alpha", json_f64(s.alpha));
                subfield(&mut out, "passes", s.passes.to_string());
                subfield(&mut out, "restreamed", s.restreamed.to_string());
                subfield(
                    &mut out,
                    "moved_in_restream",
                    s.moved_in_restream.to_string(),
                );
                last_subfield(
                    &mut out,
                    "index_memory_bytes",
                    s.index_memory_bytes.to_string(),
                );
                out.push_str("  },\n");
            }
        }

        out.push_str("  \"history\": [");
        for (i, r) in self.history.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"iteration\": {}, \"phase\": {}, \"alpha\": {}, \"imbalance\": {}, \
                 \"comm_cost\": {}, \"moved_vertices\": {}",
                r.iteration,
                json_str(r.phase.name()),
                json_f64(r.alpha),
                json_f64(r.imbalance),
                json_f64(r.comm_cost),
                r.moved_vertices
            ));
            out.push('}');
        }
        if self.history.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }

        if with_assignment {
            out.push_str(",\n  \"assignment\": [");
            for (i, &p) in self.partition.assignment().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&p.to_string());
            }
            out.push(']');
        }
        out.push_str("\n}\n");
        out
    }

    /// A human-readable multi-line summary (the CLI's text output).
    pub fn text_summary(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<17}: {v}\n"));
        };
        line("algorithm", self.algorithm.name().to_string());
        line("partitions", self.partition.num_parts().to_string());
        line("iterations", self.iterations.to_string());
        if let Some(r) = self.stop_reason {
            line("stop reason", r.name().to_string());
        }
        if let Some(cut) = self.hyperedge_cut {
            line("hyperedge cut", cut.to_string());
        }
        if let Some(soed) = self.soed {
            line("SOED", soed.to_string());
        }
        if let Some(cc) = self.comm_cost {
            line("comm cost", format!("{cc:.1}"));
        }
        line("imbalance", format!("{:.4}", self.imbalance));
        line(
            "partition time",
            format!("{:.3} s", self.timings.partition_secs),
        );
        if let Some(s) = &self.lowmem {
            line("passes run", s.passes.to_string());
            line(
                "restreamed",
                format!("{} ({} moved)", s.restreamed, s.moved_in_restream),
            );
            line("index memory", format!("{} B", s.index_memory_bytes));
        }
        out
    }
}

/// Migration cost of one dynamic update batch, in the paper's
/// architecture-aware terms (moving a vertex costs its weight times the
/// cost-matrix entry of the link it crosses).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MigrationReport {
    /// Pre-existing vertices whose assignment changed.
    pub vertices_moved: usize,
    /// `vertices_moved` over the live vertex count.
    pub moved_fraction: f64,
    /// Σ weight(v) · cost(old part, new part) over the moved vertices.
    pub bytes_moved: f64,
}

/// What recovery from a serve state directory found and did — surfaced
/// by the daemon's `report` op so operators can see that (and how) a
/// session survived a restart. Mirrors
/// [`hyperpraw_dynamic::RecoveryStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Size of the snapshot file the session was loaded from.
    pub snapshot_bytes: u64,
    /// Journal batches replayed on top of the snapshot.
    pub batches_replayed: usize,
    /// Journal bytes dropped because they were torn or corrupt.
    pub truncated_bytes: u64,
    /// Whether a torn/corrupt journal tail was detected (and dropped).
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// Serialises the recovery stats as a compact JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"snapshot_bytes\": {}, \"batches_replayed\": {}, \"truncated_bytes\": {}, \"torn_tail\": {}}}",
            self.snapshot_bytes, self.batches_replayed, self.truncated_bytes, self.torn_tail
        )
    }
}

impl From<hyperpraw_dynamic::RecoveryStats> for RecoveryReport {
    fn from(s: hyperpraw_dynamic::RecoveryStats) -> Self {
        Self {
            snapshot_bytes: s.snapshot_bytes,
            batches_replayed: s.batches_replayed,
            truncated_bytes: s.truncated_bytes,
            torn_tail: s.torn_tail,
        }
    }
}

/// The result of one dynamic update batch: a full [`PartitionReport`] for
/// the post-update assignment, extended with what the batch touched and
/// what migrating to the new assignment costs.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The post-update partition report (quality re-evaluated in memory).
    pub report: PartitionReport,
    /// Ids assigned to `add_vertex` updates, in batch order.
    pub new_vertices: Vec<u32>,
    /// Size of the restreamed dirty set (touched vertices plus their
    /// distinct-neighbour ring).
    pub dirty_vertices: usize,
    /// Whether the batch crossed the staleness threshold and rebuilt the
    /// adjacency instead of patching it.
    pub rebuilt_adjacency: bool,
    /// Migration cost of this batch.
    pub migration: MigrationReport,
}

impl UpdateReport {
    /// Serialises the update report as a JSON object with the underlying
    /// [`PartitionReport`] embedded under `"report"`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1536);
        out.push_str("{\n");
        out.push_str("  \"update\": {\n");
        subfield(&mut out, "dirty_vertices", self.dirty_vertices.to_string());
        subfield(
            &mut out,
            "rebuilt_adjacency",
            self.rebuilt_adjacency.to_string(),
        );
        let ids: Vec<String> = self.new_vertices.iter().map(|v| v.to_string()).collect();
        last_subfield(&mut out, "new_vertices", format!("[{}]", ids.join(",")));
        out.push_str("  },\n");
        out.push_str("  \"migration\": {\n");
        subfield(
            &mut out,
            "vertices_moved",
            self.migration.vertices_moved.to_string(),
        );
        subfield(
            &mut out,
            "moved_fraction",
            json_f64(self.migration.moved_fraction),
        );
        last_subfield(
            &mut out,
            "bytes_moved",
            json_f64(self.migration.bytes_moved),
        );
        out.push_str("  },\n");
        // Embed the report, re-indented two spaces. Safe to do per line:
        // the writer escapes newlines inside strings, so every literal
        // '\n' in the JSON is structural.
        out.push_str("  \"report\": ");
        for (i, line) in self.report.to_json().trim_end().lines().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// A human-readable multi-line summary.
    pub fn text_summary(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<17}: {v}\n"));
        };
        line("dirty vertices", self.dirty_vertices.to_string());
        line("adjacency", {
            if self.rebuilt_adjacency {
                "rebuilt".to_string()
            } else {
                "patched".to_string()
            }
        });
        if !self.new_vertices.is_empty() {
            line("new vertices", format!("{:?}", self.new_vertices));
        }
        line(
            "migrated",
            format!(
                "{} vertices ({:.2}%, {:.1} cost-bytes)",
                self.migration.vertices_moved,
                self.migration.moved_fraction * 100.0,
                self.migration.bytes_moved
            ),
        );
        out.push_str(&self.report.text_summary());
        out
    }
}

fn field(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  \"{key}\": {value},\n"));
}

fn subfield(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("    \"{key}\": {value},\n"));
}

fn last_subfield(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("    \"{key}\": {value}\n"));
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number (finite) or `null` — JSON has no NaN/Infinity literals.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".into())
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

fn json_opt_str(v: Option<&'static str>) -> String {
    v.map(json_str).unwrap_or_else(|| "null".into())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_report() -> PartitionReport {
        PartitionReport {
            algorithm: Algorithm::RoundRobin,
            partition: Partition::round_robin(6, 2),
            history: PartitionHistory::new(),
            stop_reason: None,
            iterations: 1,
            final_alpha: None,
            imbalance: 1.0,
            comm_cost: Some(12.5),
            hyperedge_cut: Some(3),
            soed: Some(7),
            quality: QualityStatus::Evaluated,
            timings: PhaseTimings::default(),
            telemetry: hyperpraw_telemetry::Registry::disabled(),
            config: EffectiveConfig {
                partitions: 2,
                seed: 0,
                architecture_aware: false,
                imbalance_tolerance: None,
                max_iterations: None,
                tempering_factor: None,
                refinement_factor: None,
                initial_alpha: None,
                connectivity: None,
                stream_order: None,
                threads: 1,
                parallel_mode: None,
                sync_interval: None,
                index: None,
                budget_bytes: None,
                rebuild_sketches: None,
            },
            lowmem: None,
        }
    }

    #[test]
    fn json_contains_the_headline_fields_and_balanced_braces() {
        let json = sample_report().to_json();
        for needle in [
            "\"algorithm\": \"round-robin\"",
            "\"metrics\"",
            "\"comm_cost\": 12.5",
            "\"hyperedge_cut\": 3",
            "\"telemetry\"",
            "\"partition_secs\"",
            "\"config\"",
            "\"history\": []",
        ] {
            assert!(json.contains(needle), "missing {needle} in\n{json}");
        }
        assert!(!json.contains("assignment"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn live_registry_metrics_land_in_the_telemetry_section() {
        assert!(sample_report().to_json().contains("\"metrics\": null"));
        let mut report = sample_report();
        let registry = hyperpraw_telemetry::Registry::new();
        registry.counter("engine.vertices_scored").add(42);
        report.telemetry = registry;
        let json = report.to_json();
        assert!(
            json.contains("\"metrics\": {"),
            "missing snapshot in\n{json}"
        );
        assert!(json.contains("engine.vertices_scored"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn assignment_variant_lists_every_vertex() {
        let json = sample_report().to_json_with_assignment();
        assert!(json.contains("\"assignment\": [0,1,0,1,0,1]"));
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        let mut report = sample_report();
        report.imbalance = f64::NAN;
        report.comm_cost = Some(f64::INFINITY);
        let json = report.to_json();
        assert!(json.contains("\"imbalance\": null"));
        assert!(json.contains("\"comm_cost\": null"));
    }

    #[test]
    fn string_escaping_is_json_safe() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn streamed_quality_fills_the_cut_metrics() {
        let mut report = sample_report();
        report.hyperedge_cut = None;
        report.soed = None;
        report.attach_streamed_quality(&StreamedQuality {
            hyperedge_cut: 9,
            soed: 21,
            connectivity_minus_one: 12.0,
            imbalance: 1.25,
        });
        assert_eq!(report.hyperedge_cut, Some(9));
        assert_eq!(report.soed, Some(21));
        assert_eq!(report.imbalance, 1.25);
        assert_eq!(report.quality, QualityStatus::Streamed);
    }

    #[test]
    fn deferred_quality_is_explicit_and_backfill_round_trips_through_json() {
        // Regression: a stream run's JSON must say its metrics are
        // deferred rather than leaving bare nulls to interpretation, and
        // the streamed back-fill must round-trip through to_json.
        let mut report = sample_report();
        report.comm_cost = None;
        report.hyperedge_cut = None;
        report.soed = None;
        report.quality = QualityStatus::Deferred;
        let deferred = report.to_json();
        assert!(deferred.contains("\"quality\": \"deferred\""));
        assert!(deferred.contains("\"hyperedge_cut\": null"));

        report.attach_streamed_quality(&StreamedQuality {
            hyperedge_cut: 9,
            soed: 21,
            connectivity_minus_one: 12.0,
            imbalance: 1.25,
        });
        let streamed = report.to_json();
        assert!(streamed.contains("\"quality\": \"streamed\""));
        assert!(streamed.contains("\"hyperedge_cut\": 9"));
        assert!(streamed.contains("\"soed\": 21"));
        assert!(streamed.contains("\"imbalance\": 1.25"));
        assert!(!streamed.contains("\"hyperedge_cut\": null"));
    }

    #[test]
    fn update_report_embeds_the_partition_report() {
        let update = UpdateReport {
            report: sample_report(),
            new_vertices: vec![6, 7],
            dirty_vertices: 11,
            rebuilt_adjacency: false,
            migration: MigrationReport {
                vertices_moved: 3,
                moved_fraction: 0.5,
                bytes_moved: 4.25,
            },
        };
        let json = update.to_json();
        for needle in [
            "\"update\"",
            "\"dirty_vertices\": 11",
            "\"rebuilt_adjacency\": false",
            "\"new_vertices\": [6,7]",
            "\"migration\"",
            "\"vertices_moved\": 3",
            "\"bytes_moved\": 4.25",
            "\"report\": {",
            "\"algorithm\": \"round-robin\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in\n{json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        let text = update.text_summary();
        assert!(text.contains("dirty vertices"));
        assert!(text.contains("algorithm"));
    }
}
