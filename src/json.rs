//! A minimal JSON parser for the serve protocol.
//!
//! The workspace writes JSON by hand ([`crate::report`]) and deliberately
//! carries no serialisation dependency; the `hyperpraw serve` daemon needs
//! the other direction — parsing newline-delimited request objects — so
//! this module provides a small recursive-descent parser into a
//! [`JsonValue`] tree. It accepts standard JSON (RFC 8259): all escape
//! sequences including `\uXXXX` surrogate pairs, scientific-notation
//! numbers, and arbitrary whitespace. Objects preserve key order and keep
//! duplicate keys (lookups return the first). Nesting depth is capped at
//! [`MAX_DEPTH`] so a hostile request cannot overflow the stack.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integers from floats.
    Number(f64),
    /// A string, with all escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order, duplicates preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// First value stored under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, when this is a non-negative number
    /// with no fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-safe) run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 inside string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character inside string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(ch);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(parse("0").unwrap(), JsonValue::Number(0.0));
        assert_eq!(
            parse("\"hi\"").unwrap(),
            JsonValue::String("hi".to_string())
        );
    }

    #[test]
    fn escapes_resolve_including_surrogate_pairs() {
        let v = parse(r#""a\n\t\"\\\/A😀b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\/A\u{1F600}b");
        assert!(parse(r#""\uD83D""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\uDE00""#).is_err(), "unpaired low surrogate");
        assert!(parse(r#""\x""#).is_err(), "bad escape letter");
    }

    #[test]
    fn objects_and_arrays_nest_and_index() {
        let v = parse(r#"{"op": "update", "n": [1, 2, {"k": null}], "ok": true}"#).unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("update"));
        let items = v.get("n").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[1].as_u64(), Some(2));
        assert_eq!(items[2].get("k"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn our_own_report_writer_round_trips() {
        // The serve daemon parses back what `PartitionReport::to_json`
        // writes; pin that the two halves agree on at least the shapes the
        // protocol reads.
        let json = crate::report::tests::sample_report().to_json();
        let v = parse(&json).unwrap();
        assert_eq!(
            v.get("algorithm").and_then(JsonValue::as_str),
            Some("round-robin")
        );
        assert!(v.get("metrics").is_some());
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "[1]]",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[true, fals]").unwrap_err();
        assert!(
            err.offset >= 7,
            "offset {} points into the input",
            err.offset
        );
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20).to_string() + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }
}
