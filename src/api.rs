//! The one front door: a unified, builder-first partitioning API.
//!
//! Every partitioning driver in the workspace — sequential and
//! bulk-synchronous HyperPRAW, the memory-bounded streaming partitioners
//! and the multilevel baseline — is dispatchable through a single
//! [`PartitionJob`], selected by an [`Algorithm`] value. The job validates
//! its inputs up front (returning [`PartitionError::InvalidConfig`]
//! instead of panicking), runs against either an in-memory
//! [`Hypergraph`] or any [`VertexStream`], and always returns the common
//! [`PartitionReport`]. The partitions themselves are **bit-identical**
//! to calling the underlying drivers directly (pinned by
//! `tests/api_equivalence.rs`): the job is a facade over the same thin
//! drivers, not a fifth implementation.
//!
//! ```
//! use hyperpraw::api::{Algorithm, PartitionJob};
//! use hyperpraw::hypergraph::generators::{mesh_hypergraph, MeshConfig};
//!
//! let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
//! let report = PartitionJob::new(Algorithm::HyperPrawBasic)
//!     .partitions(8)
//!     .seed(7)
//!     .run(&hg)
//!     .unwrap();
//! assert_eq!(report.partition.num_parts(), 8);
//! assert!(report.to_json().contains("\"algorithm\": \"hyperpraw-basic\""));
//! ```

use std::borrow::Cow;
use std::fmt;
use std::time::Instant;

use hyperpraw_core::metrics::QualityReport;
use hyperpraw_core::{
    baselines, Connectivity, CostMatrix, HyperPraw, HyperPrawConfig, ParallelConfig,
    ParallelHyperPraw, ParallelMode, PartitionHistory, RefinementPolicy, StreamOrder,
};
use hyperpraw_dynamic::{DynamicConfig, DynamicError, DynamicPartitioner, GraphUpdate};
use hyperpraw_hypergraph::io::stream::VertexStream;
use hyperpraw_hypergraph::io::IoError;
use hyperpraw_hypergraph::{Hypergraph, Partition, VertexId};
use hyperpraw_lowmem::{
    unweighted_imbalance, IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget,
};
use hyperpraw_multilevel::{MultilevelConfig, MultilevelPartitioner};

use hyperpraw_storage::{decode_u64, encode_u64};

use crate::report::{
    EffectiveConfig, LowMemStats, MigrationReport, PartitionReport, PhaseTimings, QualityStatus,
    RecoveryReport, UpdateReport,
};

/// Every partitioning algorithm dispatchable through a [`PartitionJob`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential HyperPRAW restreaming with a uniform cost matrix
    /// (architecture-oblivious).
    HyperPrawBasic,
    /// Sequential HyperPRAW restreaming with a profiled cost matrix.
    HyperPrawAware,
    /// Bulk-synchronous multi-threaded HyperPRAW, uniform cost matrix.
    ParallelBasic,
    /// Bulk-synchronous multi-threaded HyperPRAW, profiled cost matrix.
    ParallelAware,
    /// Memory-bounded streaming partitioner with the exact (unbounded
    /// memory) connectivity index. Runs in-memory or over a
    /// [`VertexStream`].
    LowMemExact,
    /// Memory-bounded streaming partitioner with Bloom/MinHash sketches
    /// sized by the memory budget. Runs in-memory or over a
    /// [`VertexStream`].
    LowMemSketched,
    /// Multilevel recursive bisection (the Zoltan-like baseline).
    MultilevelBaseline,
    /// Round-robin assignment (the naive baseline).
    RoundRobin,
}

impl Algorithm {
    /// Every algorithm, in the order the evaluation tables list them.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::RoundRobin,
            Algorithm::MultilevelBaseline,
            Algorithm::HyperPrawBasic,
            Algorithm::HyperPrawAware,
            Algorithm::ParallelBasic,
            Algorithm::ParallelAware,
            Algorithm::LowMemExact,
            Algorithm::LowMemSketched,
        ]
    }

    /// Name as printed in reports, CSVs and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::HyperPrawBasic => "hyperpraw-basic",
            Algorithm::HyperPrawAware => "hyperpraw-aware",
            Algorithm::ParallelBasic => "parallel-basic",
            Algorithm::ParallelAware => "parallel-aware",
            Algorithm::LowMemExact => "lowmem-exact",
            Algorithm::LowMemSketched => "lowmem-sketched",
            Algorithm::MultilevelBaseline => "multilevel",
            Algorithm::RoundRobin => "round-robin",
        }
    }

    /// The accepted `parse` spellings, for error messages and CLI usage
    /// text — one definition so the two cannot drift apart.
    pub fn expected_names() -> &'static str {
        "aware | basic | parallel[-basic] | lowmem[-exact] | multilevel | round-robin"
    }

    /// Parses the names printed by [`Algorithm::name`] plus the historical
    /// CLI aliases (`aware`, `basic`, `zoltan`, `rr`, ...).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "aware" | "hyperpraw-aware" => Ok(Algorithm::HyperPrawAware),
            "basic" | "hyperpraw-basic" => Ok(Algorithm::HyperPrawBasic),
            "parallel" | "parallel-aware" => Ok(Algorithm::ParallelAware),
            "parallel-basic" => Ok(Algorithm::ParallelBasic),
            "lowmem" | "lowmem-sketched" => Ok(Algorithm::LowMemSketched),
            "lowmem-exact" => Ok(Algorithm::LowMemExact),
            "multilevel" | "zoltan" => Ok(Algorithm::MultilevelBaseline),
            "round-robin" | "rr" => Ok(Algorithm::RoundRobin),
            other => Err(format!(
                "unknown algorithm '{other}' (expected {})",
                Self::expected_names()
            )),
        }
    }

    /// `true` for the variants that require a profiled cost matrix (the
    /// architecture-aware algorithms).
    pub fn requires_cost_matrix(&self) -> bool {
        matches!(self, Algorithm::HyperPrawAware | Algorithm::ParallelAware)
    }

    /// `true` for the algorithms that can run over a [`VertexStream`]
    /// without materialising the hypergraph in memory.
    pub fn supports_streams(&self) -> bool {
        matches!(self, Algorithm::LowMemExact | Algorithm::LowMemSketched)
    }

    /// `true` for the algorithms that run worker threads (the
    /// bulk-synchronous drivers); [`PartitionJob::threads`] has no effect
    /// on the others.
    pub fn supports_threads(&self) -> bool {
        matches!(
            self,
            Algorithm::ParallelBasic
                | Algorithm::ParallelAware
                | Algorithm::LowMemExact
                | Algorithm::LowMemSketched
        )
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors returned by the job API — the replacement for the drivers' mix
/// of panics and `io::Result`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The job's configuration is invalid (bad parameter ranges, missing
    /// cost matrix, more partitions than vertices, ...).
    InvalidConfig(String),
    /// An IO problem while reading a vertex stream.
    Io(String),
    /// The requested combination is not supported (e.g. streaming an
    /// in-memory-only algorithm).
    Unsupported(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PartitionError::Io(m) => write!(f, "io error: {m}"),
            PartitionError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<IoError> for PartitionError {
    fn from(e: IoError) -> Self {
        PartitionError::Io(e.to_string())
    }
}

/// A fluent, validated partitioning job.
///
/// Construct with [`PartitionJob::new`], set the shared knobs (partitions
/// or a cost matrix, seed, tolerance, threads, budget, ...) through the
/// builder methods, then [`run`](PartitionJob::run) it on an in-memory
/// hypergraph or [`run_stream`](PartitionJob::run_stream) it over an
/// on-disk vertex stream. Builder setters never panic; all range checking
/// happens in [`validate`](PartitionJob::validate) / the run methods and
/// surfaces as [`PartitionError::InvalidConfig`].
#[derive(Clone, Debug)]
pub struct PartitionJob {
    algorithm: Algorithm,
    partitions: Option<u32>,
    cost: Option<CostMatrix>,
    hyperpraw: HyperPrawConfig,
    parallel: ParallelConfig,
    lowmem: LowMemConfig,
    multilevel: MultilevelConfig,
    prefetch: bool,
    registry: hyperpraw_telemetry::Registry,
}

impl PartitionJob {
    /// Creates a job for `algorithm` with every driver configuration at
    /// its crate default.
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            partitions: None,
            cost: None,
            hyperpraw: HyperPrawConfig::default(),
            parallel: ParallelConfig::default(),
            lowmem: LowMemConfig::default(),
            multilevel: MultilevelConfig::default(),
            prefetch: true,
            registry: hyperpraw_telemetry::Registry::disabled(),
        }
    }

    /// The algorithm this job dispatches to.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Sets the number of partitions (compute units). Redundant — but
    /// cross-checked — when a cost matrix is supplied.
    pub fn partitions(mut self, p: u32) -> Self {
        self.partitions = Some(p);
        self
    }

    /// Supplies the communication-cost matrix. Required by the
    /// architecture-aware algorithms (which partition *with* it); the
    /// oblivious algorithms ignore it for partitioning but evaluate the
    /// report's `comm_cost` against it, the way the paper's Figure 4C
    /// scores every strategy on the real machine. Implies the partition
    /// count when [`PartitionJob::partitions`] is not called.
    pub fn cost(mut self, cost: CostMatrix) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets the RNG seed of every driver configuration.
    pub fn seed(mut self, seed: u64) -> Self {
        self.hyperpraw.seed = seed;
        self.lowmem.seed = seed;
        self.multilevel.seed = seed;
        self
    }

    /// Sets the imbalance tolerance of the restreaming and multilevel
    /// drivers.
    pub fn imbalance_tolerance(mut self, tol: f64) -> Self {
        self.hyperpraw.imbalance_tolerance = tol;
        self.multilevel.imbalance_tolerance = tol;
        self
    }

    /// Sets the in-memory connectivity provider (HyperPRAW drivers).
    pub fn connectivity(mut self, connectivity: Connectivity) -> Self {
        self.hyperpraw.connectivity = connectivity;
        self
    }

    /// Sets the refinement policy (HyperPRAW drivers).
    pub fn refinement(mut self, refinement: RefinementPolicy) -> Self {
        self.hyperpraw.refinement = refinement;
        self
    }

    /// Sets the maximum number of streams/passes.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.hyperpraw.max_iterations = n;
        self.lowmem.passes = n;
        self
    }

    /// Sets the vertex visit order (in-memory HyperPRAW drivers).
    pub fn stream_order(mut self, order: StreamOrder) -> Self {
        self.hyperpraw.stream_order = order;
        self
    }

    /// Pins the initial `α` instead of the FENNEL-derived default.
    pub fn initial_alpha(mut self, alpha: f64) -> Self {
        self.hyperpraw.initial_alpha = Some(alpha);
        self.lowmem.alpha = Some(alpha);
        self
    }

    /// Enables or disables per-stream history tracking.
    pub fn track_history(mut self, track: bool) -> Self {
        self.hyperpraw.track_history = track;
        self
    }

    /// Sets the worker-thread count of the parallel drivers. `0`
    /// auto-detects the machine's available parallelism
    /// ([`std::thread::available_parallelism`], falling back to 1 when the
    /// platform cannot report one); the resolved count is what the
    /// report's [`EffectiveConfig::threads`] records.
    pub fn threads(mut self, threads: usize) -> Self {
        self.parallel.num_threads = threads;
        self.lowmem.threads = threads;
        self
    }

    /// Sets the synchronisation window of the bulk-synchronous drivers.
    pub fn sync_interval(mut self, interval: usize) -> Self {
        self.parallel.sync_interval = interval;
        self.lowmem.sync_interval = interval;
        self
    }

    /// Selects how the parallel drivers' worker threads divide the
    /// stream: deterministic bulk-synchronous windows
    /// ([`ParallelMode::Bsp`], the default) or lock-free work stealing
    /// against live shared state ([`ParallelMode::WorkStealing`], faster
    /// but not bit-reproducible above one thread).
    pub fn parallel_mode(mut self, mode: ParallelMode) -> Self {
        self.parallel.mode = mode;
        self.lowmem.mode = mode;
        self
    }

    /// Sets the memory budget of the lowmem drivers.
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.lowmem.budget = budget;
        self
    }

    /// Sets the number of streaming passes of the lowmem drivers.
    pub fn passes(mut self, passes: usize) -> Self {
        self.lowmem.passes = passes;
        self
    }

    /// Rebuild sketches between lowmem passes to shed staleness.
    pub fn rebuild_sketches(mut self, rebuild: bool) -> Self {
        self.lowmem.rebuild_sketches = rebuild;
        self
    }

    /// Sets the lowmem low-confidence revisit capacity (`None` derives it
    /// from the budget).
    pub fn restream_capacity(mut self, capacity: Option<usize>) -> Self {
        self.lowmem.restream_capacity = capacity;
        self
    }

    /// Replaces the full HyperPRAW configuration (in-memory drivers).
    pub fn hyperpraw_config(mut self, config: HyperPrawConfig) -> Self {
        self.hyperpraw = config;
        self
    }

    /// Replaces the full parallel-driver configuration.
    pub fn parallel_config(mut self, config: ParallelConfig) -> Self {
        self.parallel = config;
        self
    }

    /// Replaces the full lowmem configuration (the job still overrides
    /// `index` from the [`Algorithm`] variant at dispatch).
    pub fn lowmem_config(mut self, config: LowMemConfig) -> Self {
        self.lowmem = config;
        self
    }

    /// Replaces the full multilevel configuration.
    pub fn multilevel_config(mut self, config: MultilevelConfig) -> Self {
        self.multilevel = config;
        self
    }

    /// Binds the job's instrumentation to `registry`
    /// ([`hyperpraw_telemetry::Registry`]): the engine's per-pass
    /// metrics (`engine.*`), compressed-storage counters (`storage.*`)
    /// on [`run_compressed_file`](PartitionJob::run_compressed_file),
    /// and — through [`PartitionJob::run_dynamic`] — the dynamic
    /// partitioner's batch metrics (`dynamic.*`). Recording is
    /// observation-only: partitions are bit-identical with or without a
    /// live registry (the default,
    /// [`hyperpraw_telemetry::Registry::disabled`], keeps every hot
    /// path free of work).
    pub fn registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Enables or disables background block prefetch when the job runs
    /// over a compressed file
    /// ([`run_compressed_file`](PartitionJob::run_compressed_file)).
    /// On by default: a worker thread decodes block N+1 while the engine
    /// consumes block N. Disable to decode synchronously on the engine
    /// thread (same results bit for bit — useful for debugging and for
    /// measuring the overlap win).
    pub fn prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// The job with `threads(0)` auto-detection applied: every run and
    /// validation path goes through this first, so the drivers and the
    /// report's [`EffectiveConfig`] always see the real thread count.
    fn resolved_job(&self) -> Cow<'_, Self> {
        if self.parallel.num_threads > 0 && self.lowmem.threads > 0 {
            return Cow::Borrowed(self);
        }
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut job = self.clone();
        if job.parallel.num_threads == 0 {
            job.parallel.num_threads = auto;
        }
        if job.lowmem.threads == 0 {
            job.lowmem.threads = auto;
        }
        Cow::Owned(job)
    }

    /// Validates the job without running it: partition count resolvable
    /// and consistent with the cost matrix, cost matrix present for the
    /// aware algorithms, and the dispatched driver's configuration within
    /// range. A thread count of `0` is not an error — it resolves to the
    /// machine's available parallelism (see [`PartitionJob::threads`]).
    pub fn validate(&self) -> Result<(), PartitionError> {
        self.resolved_job().validate_resolved()
    }

    fn validate_resolved(&self) -> Result<(), PartitionError> {
        self.resolved_partitions()?;
        if self.algorithm.requires_cost_matrix() && self.cost.is_none() {
            return Err(PartitionError::InvalidConfig(format!(
                "{} requires a profiled cost matrix; call .cost(..) or use the basic variant",
                self.algorithm
            )));
        }
        let invalid = PartitionError::InvalidConfig;
        match self.algorithm {
            Algorithm::HyperPrawBasic | Algorithm::HyperPrawAware => {
                self.hyperpraw.validate().map_err(invalid)?;
            }
            Algorithm::ParallelBasic | Algorithm::ParallelAware => {
                self.hyperpraw.validate().map_err(invalid)?;
                self.parallel.validate().map_err(invalid)?;
            }
            Algorithm::LowMemExact | Algorithm::LowMemSketched => {
                self.lowmem_with_index().validate().map_err(invalid)?;
            }
            Algorithm::MultilevelBaseline => {
                self.multilevel.validate().map_err(invalid)?;
            }
            Algorithm::RoundRobin => {}
        }
        Ok(())
    }

    /// Runs the job on an in-memory hypergraph.
    pub fn run(&self, hg: &Hypergraph) -> Result<PartitionReport, PartitionError> {
        self.resolved_job().run_resolved(hg)
    }

    fn run_resolved(&self, hg: &Hypergraph) -> Result<PartitionReport, PartitionError> {
        self.validate_resolved()?;
        let p = self.resolved_partitions()?;
        self.check_vertex_count(hg.num_vertices(), p)?;

        let started = Instant::now();
        let (partition, history, stop_reason, iterations, final_alpha, lowmem) = match self
            .algorithm
        {
            Algorithm::HyperPrawBasic | Algorithm::HyperPrawAware => {
                let result = HyperPraw::new(self.hyperpraw, self.driver_cost(p))
                    .with_registry(&self.registry)
                    .partition(hg);
                (
                    result.partition,
                    result.history,
                    Some(result.stop_reason),
                    result.iterations,
                    Some(result.final_alpha),
                    None,
                )
            }
            Algorithm::ParallelBasic | Algorithm::ParallelAware => {
                let result =
                    ParallelHyperPraw::new(self.hyperpraw, self.parallel, self.driver_cost(p))
                        .with_registry(&self.registry)
                        .partition(hg);
                (
                    result.partition,
                    result.history,
                    Some(result.stop_reason),
                    result.iterations,
                    Some(result.final_alpha),
                    None,
                )
            }
            Algorithm::LowMemExact | Algorithm::LowMemSketched => {
                let result = LowMemPartitioner::new(self.lowmem_with_index(), self.driver_cost(p))
                    .partition_hypergraph(hg);
                let stats = LowMemStats {
                    alpha: result.alpha,
                    passes: result.passes,
                    restreamed: result.restreamed,
                    moved_in_restream: result.moved_in_restream,
                    index_memory_bytes: result.index_memory_bytes,
                };
                (
                    result.partition,
                    PartitionHistory::new(),
                    None,
                    result.passes,
                    Some(result.alpha),
                    Some(stats),
                )
            }
            Algorithm::MultilevelBaseline => (
                MultilevelPartitioner::new(self.multilevel).partition(hg, p),
                PartitionHistory::new(),
                None,
                1,
                None,
                None,
            ),
            Algorithm::RoundRobin => (
                baselines::round_robin(hg, p),
                PartitionHistory::new(),
                None,
                1,
                None,
                None,
            ),
        };
        let partition_secs = started.elapsed().as_secs_f64();

        let evaluating = Instant::now();
        let quality = QualityReport::compute(hg, &partition, &self.eval_cost(p));
        let evaluate_secs = evaluating.elapsed().as_secs_f64();

        Ok(PartitionReport {
            algorithm: self.algorithm,
            partition,
            history,
            stop_reason,
            iterations,
            final_alpha,
            imbalance: quality.imbalance,
            comm_cost: Some(quality.comm_cost),
            hyperedge_cut: Some(quality.hyperedge_cut),
            soed: Some(quality.soed),
            quality: QualityStatus::Evaluated,
            timings: PhaseTimings {
                partition_secs,
                evaluate_secs,
            },
            telemetry: self.registry.clone(),
            config: self.effective_config(p),
            lowmem,
        })
    }

    /// Runs the job over a vertex stream without materialising the
    /// hypergraph — only the lowmem algorithms support this; everything
    /// else returns [`PartitionError::Unsupported`].
    ///
    /// The report's cut metrics are `None` (a pure stream run cannot
    /// afford them) and its imbalance is unweighted; callers that re-read
    /// the input file edge-major can fill both in through
    /// [`PartitionReport::attach_streamed_quality`].
    pub fn run_stream<S: VertexStream>(
        &self,
        stream: &mut S,
    ) -> Result<PartitionReport, PartitionError> {
        self.resolved_job().run_stream_resolved(stream)
    }

    fn run_stream_resolved<S: VertexStream>(
        &self,
        stream: &mut S,
    ) -> Result<PartitionReport, PartitionError> {
        if !self.algorithm.supports_streams() {
            return Err(PartitionError::Unsupported(format!(
                "{} cannot run from a vertex stream; load the hypergraph in memory instead",
                self.algorithm
            )));
        }
        self.validate_resolved()?;
        let p = self.resolved_partitions()?;
        self.check_vertex_count(stream.num_vertices(), p)?;

        let started = Instant::now();
        let result = LowMemPartitioner::new(self.lowmem_with_index(), self.driver_cost(p))
            .partition(stream)
            .map_err(PartitionError::from)?;
        let partition_secs = started.elapsed().as_secs_f64();

        let stats = LowMemStats {
            alpha: result.alpha,
            passes: result.passes,
            restreamed: result.restreamed,
            moved_in_restream: result.moved_in_restream,
            index_memory_bytes: result.index_memory_bytes,
        };
        Ok(PartitionReport {
            algorithm: self.algorithm,
            imbalance: unweighted_imbalance(&result.partition),
            partition: result.partition,
            history: PartitionHistory::new(),
            stop_reason: None,
            iterations: result.passes,
            final_alpha: Some(result.alpha),
            comm_cost: None,
            hyperedge_cut: None,
            soed: None,
            quality: QualityStatus::Deferred,
            timings: PhaseTimings {
                partition_secs,
                evaluate_secs: 0.0,
            },
            telemetry: self.registry.clone(),
            config: self.effective_config(p),
            lowmem: Some(stats),
        })
    }

    /// Runs the job over a block-compressed CSR file (the `.hpz` format
    /// of `hyperpraw-storage`, produced by `hyperpraw convert`) without
    /// materialising the hypergraph. Only the lowmem algorithms support
    /// streaming; see [`run_stream`](PartitionJob::run_stream) for the
    /// quality-reporting contract. Honours the
    /// [`prefetch`](PartitionJob::prefetch) knob: by default a background
    /// thread decodes the next block while the engine consumes the
    /// current one.
    pub fn run_compressed_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<PartitionReport, PartitionError> {
        // A small read-through chunk cache fronts the file: restreaming
        // passes re-read the same blocks, and the cache's hit/miss
        // counters land in the registry as `storage.cache.*`.
        let source = hyperpraw_storage::FileSource::open(path)
            .map_err(|e| PartitionError::Io(e.to_string()))?;
        let cached = hyperpraw_storage::CachingSource::new(
            source,
            u64::from(hyperpraw_storage::DEFAULT_BLOCK_TARGET_BYTES),
            16,
        )
        .with_registry(&self.registry);
        let reader = hyperpraw_storage::CompressedReader::open(cached)
            .map_err(|e| PartitionError::Io(e.to_string()))?
            .with_registry(&self.registry);
        let mode = if self.prefetch {
            hyperpraw_storage::ReadMode::Prefetch
        } else {
            hyperpraw_storage::ReadMode::Sync
        };
        let mut stream = reader.stream(mode);
        self.run_stream(&mut stream)
    }

    /// Runs the job once on `hg`, then keeps the result live as a
    /// [`DynamicSession`] that absorbs [`GraphUpdate`] batches by
    /// restreaming only the dirty region (the `hyperpraw-dynamic` crate).
    /// Only the sequential restreaming algorithms can warm-start the
    /// engine, so every other [`Algorithm`] returns
    /// [`PartitionError::Unsupported`].
    pub fn run_dynamic(&self, hg: &Hypergraph) -> Result<DynamicSession, PartitionError> {
        if !matches!(
            self.algorithm,
            Algorithm::HyperPrawBasic | Algorithm::HyperPrawAware
        ) {
            return Err(PartitionError::Unsupported(format!(
                "{} cannot drive a dynamic session; use hyperpraw-basic or hyperpraw-aware",
                self.algorithm
            )));
        }
        let initial = self.run(hg)?;
        let p = self.resolved_partitions()?;
        let cfg = DynamicConfig {
            config: self.hyperpraw,
            ..DynamicConfig::default()
        };
        let mut partitioner =
            DynamicPartitioner::new(hg, initial.partition.clone(), self.driver_cost(p), cfg)
                .map_err(|e| PartitionError::InvalidConfig(e.to_string()))?;
        partitioner.set_registry(&self.registry);
        Ok(DynamicSession {
            partitioner,
            job: self.clone(),
            initial,
            recovery: None,
        })
    }

    /// The partition count this job resolves to: the explicit count, the
    /// cost matrix's unit count, or an error when neither is available or
    /// the two disagree.
    pub fn resolved_partitions(&self) -> Result<u32, PartitionError> {
        match (self.partitions, &self.cost) {
            (Some(p), Some(c)) if p as usize != c.num_units() => {
                Err(PartitionError::InvalidConfig(format!(
                    "partitions({p}) disagrees with the {}-unit cost matrix",
                    c.num_units()
                )))
            }
            (Some(0), _) => Err(PartitionError::InvalidConfig(
                "need at least one partition".into(),
            )),
            (Some(p), _) => Ok(p),
            (None, Some(c)) if c.num_units() > 0 => Ok(c.num_units() as u32),
            (None, Some(_)) => Err(PartitionError::InvalidConfig(
                "the cost matrix covers zero units".into(),
            )),
            (None, None) => Err(PartitionError::InvalidConfig(
                "number of partitions not set; call .partitions(p) or .cost(matrix)".into(),
            )),
        }
    }

    fn check_vertex_count(&self, num_vertices: usize, p: u32) -> Result<(), PartitionError> {
        if (p as usize) > num_vertices {
            return Err(PartitionError::InvalidConfig(format!(
                "cannot split {num_vertices} vertices into {p} parts"
            )));
        }
        Ok(())
    }

    /// The lowmem configuration with the index kind the [`Algorithm`]
    /// variant selects.
    fn lowmem_with_index(&self) -> LowMemConfig {
        let mut config = self.lowmem.clone();
        config.index = match self.algorithm {
            Algorithm::LowMemExact => IndexKind::Exact,
            _ => IndexKind::Sketched,
        };
        config
    }

    /// The cost matrix handed to the dispatched driver: the profiled
    /// matrix for the aware algorithms (and the lowmem drivers, which are
    /// architecture-aware whenever a matrix is supplied), uniform
    /// otherwise.
    fn driver_cost(&self, p: u32) -> CostMatrix {
        match self.algorithm {
            Algorithm::HyperPrawBasic | Algorithm::ParallelBasic => CostMatrix::uniform(p as usize),
            _ => self
                .cost
                .clone()
                .unwrap_or_else(|| CostMatrix::uniform(p as usize)),
        }
    }

    /// The cost matrix the report's `comm_cost` is evaluated against: the
    /// supplied (architecture) matrix when there is one — every algorithm
    /// is scored on the same machine, as in the paper's Figure 4C —
    /// uniform otherwise.
    fn eval_cost(&self, p: u32) -> CostMatrix {
        self.cost
            .clone()
            .unwrap_or_else(|| CostMatrix::uniform(p as usize))
    }

    fn effective_config(&self, p: u32) -> EffectiveConfig {
        let restreaming = matches!(
            self.algorithm,
            Algorithm::HyperPrawBasic
                | Algorithm::HyperPrawAware
                | Algorithm::ParallelBasic
                | Algorithm::ParallelAware
        );
        let bsp = matches!(
            self.algorithm,
            Algorithm::ParallelBasic | Algorithm::ParallelAware
        );
        let lowmem = self.algorithm.supports_streams();
        let architecture_aware = match self.algorithm {
            Algorithm::HyperPrawBasic
            | Algorithm::ParallelBasic
            | Algorithm::MultilevelBaseline
            | Algorithm::RoundRobin => false,
            Algorithm::HyperPrawAware | Algorithm::ParallelAware => true,
            Algorithm::LowMemExact | Algorithm::LowMemSketched => {
                self.cost.as_ref().is_some_and(|c| !c.is_uniform())
            }
        };
        EffectiveConfig {
            partitions: p,
            seed: if lowmem {
                self.lowmem.seed
            } else if self.algorithm == Algorithm::MultilevelBaseline {
                self.multilevel.seed
            } else {
                self.hyperpraw.seed
            },
            architecture_aware,
            imbalance_tolerance: if restreaming {
                Some(self.hyperpraw.imbalance_tolerance)
            } else if self.algorithm == Algorithm::MultilevelBaseline {
                Some(self.multilevel.imbalance_tolerance)
            } else {
                None
            },
            max_iterations: if restreaming {
                Some(self.hyperpraw.max_iterations)
            } else if lowmem {
                Some(self.lowmem.passes)
            } else {
                None
            },
            tempering_factor: restreaming.then_some(self.hyperpraw.tempering_factor),
            refinement_factor: if restreaming {
                match self.hyperpraw.refinement {
                    RefinementPolicy::Factor(f) => Some(f),
                    RefinementPolicy::None => None,
                }
            } else {
                None
            },
            initial_alpha: if restreaming {
                self.hyperpraw.initial_alpha
            } else if lowmem {
                self.lowmem.alpha
            } else {
                None
            },
            connectivity: restreaming.then(|| self.hyperpraw.connectivity.name()),
            stream_order: restreaming.then(|| self.hyperpraw.stream_order.name()),
            threads: if bsp {
                self.parallel.num_threads
            } else if lowmem {
                self.lowmem.threads
            } else {
                1
            },
            parallel_mode: if bsp {
                Some(self.parallel.mode.name())
            } else if lowmem && self.lowmem.threads > 1 {
                Some(self.lowmem.mode.name())
            } else {
                None
            },
            sync_interval: if bsp && self.parallel.mode == ParallelMode::Bsp {
                Some(self.parallel.sync_interval)
            } else if lowmem && self.lowmem.threads > 1 && self.lowmem.mode == ParallelMode::Bsp {
                Some(self.lowmem.sync_interval)
            } else {
                None
            },
            index: lowmem.then(|| self.lowmem_with_index().index.name()),
            budget_bytes: lowmem.then_some(self.lowmem.budget.bytes),
            rebuild_sketches: lowmem.then_some(self.lowmem.rebuild_sketches),
        }
    }
}

/// A resident partitioning session: the live state behind
/// [`PartitionJob::run_dynamic`] and the `hyperpraw serve` daemon.
///
/// The session owns a [`DynamicPartitioner`] (mutable hypergraph,
/// neighbour adjacency, assignment and load counters) plus the job that
/// spawned it, so every [`update`](DynamicSession::update) re-evaluates
/// quality under the same cost matrix and reports through the same
/// [`UpdateReport`] JSON machinery as a one-shot run.
#[derive(Clone, Debug)]
pub struct DynamicSession {
    partitioner: DynamicPartitioner,
    job: PartitionJob,
    initial: PartitionReport,
    recovery: Option<RecoveryReport>,
}

/// Version byte opening a [`DynamicSession::session_meta`] blob.
const SESSION_META_VERSION: u8 = 1;

impl DynamicSession {
    /// The report from the initial (cold) run that seeded this session.
    pub fn initial_report(&self) -> &PartitionReport {
        &self.initial
    }

    /// How this session was recovered from disk, when it was (`None` for
    /// sessions started fresh by [`PartitionJob::run_dynamic`]).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The underlying partitioner — what the serve daemon hands to
    /// [`hyperpraw_dynamic::StateDir::write_snapshot`].
    pub fn partitioner(&self) -> &DynamicPartitioner {
        &self.partitioner
    }

    /// Binds the session's instrumentation to `registry`: the dynamic
    /// partitioner's batch metrics (`dynamic.*`) plus the `engine.*`
    /// metrics of every dirty-set restream it runs. The serve daemon
    /// calls this on sessions recovered from disk (fresh sessions inherit
    /// the registry from [`PartitionJob::registry`]).
    pub fn set_registry(&mut self, registry: &hyperpraw_telemetry::Registry) {
        self.partitioner.set_registry(registry);
        self.job.registry = registry.clone();
    }

    /// Serialises the job-level configuration a snapshot cannot derive
    /// from the partitioner — the algorithm variant and the evaluation
    /// cost matrix — as the opaque meta blob stored alongside it.
    /// [`DynamicSession::resume`] inverts this.
    pub fn session_meta(&self) -> Vec<u8> {
        let mut out = vec![SESSION_META_VERSION];
        // run_dynamic admits only the two sequential restreaming
        // variants; anything else cannot have built a session.
        out.push(match self.job.algorithm {
            Algorithm::HyperPrawAware => 1,
            _ => 0,
        });
        match &self.job.cost {
            None => out.push(0),
            Some(cost) => {
                out.push(1);
                let units = cost.num_units();
                encode_u64(units as u64, &mut out);
                for i in 0..units {
                    for j in 0..units {
                        out.extend_from_slice(&cost.get(i, j).to_bits().to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Rebuilds a session from a recovered partitioner plus the meta
    /// blob written by [`DynamicSession::session_meta`]. The initial
    /// report is re-evaluated from the recovered state; `recovery`
    /// carries the journal-replay stats into
    /// [`DynamicSession::report`] consumers.
    pub fn resume(
        meta: &[u8],
        partitioner: DynamicPartitioner,
        recovery: Option<RecoveryReport>,
    ) -> Result<Self, PartitionError> {
        let bad = |msg: &str| PartitionError::InvalidConfig(format!("session meta: {msg}"));
        let mut pos = 0usize;
        let byte = |pos: &mut usize| -> Result<u8, PartitionError> {
            let b = *meta.get(*pos).ok_or_else(|| bad("truncated"))?;
            *pos += 1;
            Ok(b)
        };
        if byte(&mut pos)? != SESSION_META_VERSION {
            return Err(bad("unsupported version"));
        }
        let algorithm = match byte(&mut pos)? {
            0 => Algorithm::HyperPrawBasic,
            1 => Algorithm::HyperPrawAware,
            _ => return Err(bad("unknown algorithm tag")),
        };
        let p = partitioner.partition().num_parts();
        let cost = match byte(&mut pos)? {
            0 => None,
            1 => {
                let units = decode_u64(meta, &mut pos).ok_or_else(|| bad("truncated"))? as usize;
                if units != p as usize {
                    return Err(bad(&format!(
                        "cost matrix covers {units} units but the partition has {p} parts"
                    )));
                }
                let mut data = Vec::with_capacity(units * units);
                for _ in 0..units * units {
                    let end = pos + 8;
                    let bytes = meta.get(pos..end).ok_or_else(|| bad("truncated"))?;
                    pos = end;
                    let c = f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap()));
                    if !c.is_finite() || c < 0.0 {
                        return Err(bad("non-finite or negative comm cost"));
                    }
                    data.push(c);
                }
                Some(CostMatrix::from_raw(units, data))
            }
            _ => return Err(bad("unknown cost tag")),
        };
        if pos != meta.len() {
            return Err(bad("trailing bytes"));
        }
        if algorithm.requires_cost_matrix() && cost.is_none() {
            return Err(bad("architecture-aware session without a cost matrix"));
        }

        let mut job = PartitionJob::new(algorithm)
            .partitions(p)
            .hyperpraw_config(partitioner.config().config);
        if let Some(cost) = cost {
            job = job.cost(cost);
        }
        let quality = QualityReport::compute(
            partitioner.hypergraph(),
            partitioner.partition(),
            &job.eval_cost(p),
        );
        let initial = PartitionReport {
            algorithm,
            partition: partitioner.partition().clone(),
            history: PartitionHistory::default(),
            stop_reason: None,
            iterations: 0,
            final_alpha: None,
            imbalance: quality.imbalance,
            comm_cost: Some(quality.comm_cost),
            hyperedge_cut: Some(quality.hyperedge_cut),
            soed: Some(quality.soed),
            quality: QualityStatus::Evaluated,
            timings: PhaseTimings {
                partition_secs: 0.0,
                evaluate_secs: 0.0,
            },
            telemetry: job.registry.clone(),
            config: job.effective_config(p),
            lowmem: None,
        };
        Ok(Self {
            partitioner,
            job,
            initial,
            recovery,
        })
    }

    /// The current assignment.
    pub fn partition(&self) -> &Partition {
        self.partitioner.partition()
    }

    /// The current hypergraph snapshot (tombstoned ids appear as isolated
    /// zero-weight vertices / empty hyperedges).
    pub fn hypergraph(&self) -> &Hypergraph {
        self.partitioner.hypergraph()
    }

    /// The partition currently holding `vertex`, or `None` when the id is
    /// out of range or tombstoned.
    pub fn lookup(&self, vertex: VertexId) -> Option<u32> {
        self.partitioner.lookup(vertex)
    }

    /// Applies one batch of updates atomically and restreams the dirty
    /// set; on error the session is unchanged.
    pub fn update(&mut self, updates: &[GraphUpdate]) -> Result<UpdateReport, PartitionError> {
        let started = Instant::now();
        let outcome = self.partitioner.apply(updates).map_err(|e| match e {
            DynamicError::Invalid(msg) => PartitionError::InvalidConfig(msg),
            DynamicError::Mutation(m) => PartitionError::InvalidConfig(m.to_string()),
        })?;
        let partition_secs = started.elapsed().as_secs_f64();
        let report = self.report_with(
            outcome.history,
            outcome.stop_reason,
            outcome.iterations,
            outcome.final_alpha,
            partition_secs,
        );
        Ok(UpdateReport {
            report,
            new_vertices: outcome.new_vertices,
            dirty_vertices: outcome.dirty_vertices,
            rebuilt_adjacency: outcome.rebuilt_adjacency,
            migration: MigrationReport {
                vertices_moved: outcome.migration.vertices_moved,
                moved_fraction: outcome.migration.moved_fraction,
                bytes_moved: outcome.migration.bytes_moved,
            },
        })
    }

    /// A fresh [`PartitionReport`] for the session's current state,
    /// quality re-evaluated in memory (the serve daemon's `report` op).
    pub fn report(&self) -> PartitionReport {
        self.report_with(PartitionHistory::default(), None, 0, None, 0.0)
    }

    fn report_with(
        &self,
        history: PartitionHistory,
        stop_reason: Option<hyperpraw_core::StopReason>,
        iterations: usize,
        final_alpha: Option<f64>,
        partition_secs: f64,
    ) -> PartitionReport {
        let p = self.partitioner.partition().num_parts();
        let evaluating = Instant::now();
        let quality = QualityReport::compute(
            self.partitioner.hypergraph(),
            self.partitioner.partition(),
            &self.job.eval_cost(p),
        );
        PartitionReport {
            algorithm: self.job.algorithm,
            partition: self.partitioner.partition().clone(),
            history,
            stop_reason,
            iterations,
            final_alpha,
            imbalance: quality.imbalance,
            comm_cost: Some(quality.comm_cost),
            hyperedge_cut: Some(quality.hyperedge_cut),
            soed: Some(quality.soed),
            quality: QualityStatus::Evaluated,
            timings: PhaseTimings {
                partition_secs,
                evaluate_secs: evaluating.elapsed().as_secs_f64(),
            },
            telemetry: self.job.registry.clone(),
            config: self.job.effective_config(p),
            lowmem: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

    #[test]
    fn names_round_trip_through_parse() {
        for algorithm in Algorithm::all() {
            assert_eq!(Algorithm::parse(algorithm.name()).unwrap(), algorithm);
        }
        assert_eq!(
            Algorithm::parse("zoltan").unwrap(),
            Algorithm::MultilevelBaseline
        );
        assert_eq!(Algorithm::parse("rr").unwrap(), Algorithm::RoundRobin);
        assert!(Algorithm::parse("quantum").is_err());
    }

    #[test]
    fn missing_partition_count_is_rejected_up_front() {
        let err = PartitionJob::new(Algorithm::HyperPrawBasic)
            .validate()
            .unwrap_err();
        assert!(matches!(err, PartitionError::InvalidConfig(_)));
    }

    #[test]
    fn cost_matrix_mismatch_is_rejected() {
        let err = PartitionJob::new(Algorithm::HyperPrawAware)
            .partitions(8)
            .cost(CostMatrix::uniform(4))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("disagrees"));
    }

    #[test]
    fn aware_without_cost_matrix_is_rejected() {
        let err = PartitionJob::new(Algorithm::HyperPrawAware)
            .partitions(8)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("cost matrix"));
    }

    #[test]
    fn invalid_driver_configs_error_instead_of_panicking() {
        let hg = mesh_hypergraph(&MeshConfig::new(50, 4));
        // tempering_factor <= 1.0
        let bad = HyperPrawConfig {
            tempering_factor: 0.9,
            ..HyperPrawConfig::default()
        };
        assert!(matches!(
            PartitionJob::new(Algorithm::HyperPrawBasic)
                .partitions(4)
                .hyperpraw_config(bad)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // imbalance tolerance < 1.0
        assert!(matches!(
            PartitionJob::new(Algorithm::HyperPrawBasic)
                .partitions(4)
                .imbalance_tolerance(0.5)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // max_iterations = 0
        assert!(matches!(
            PartitionJob::new(Algorithm::HyperPrawBasic)
                .partitions(4)
                .max_iterations(0)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // zero-vertex synchronisation window
        assert!(matches!(
            PartitionJob::new(Algorithm::ParallelBasic)
                .partitions(4)
                .sync_interval(0)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // zero lowmem passes
        assert!(matches!(
            PartitionJob::new(Algorithm::LowMemSketched)
                .partitions(4)
                .passes(0)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // p = 0
        assert!(matches!(
            PartitionJob::new(Algorithm::RoundRobin)
                .partitions(0)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
        // more parts than vertices
        assert!(matches!(
            PartitionJob::new(Algorithm::RoundRobin)
                .partitions(100)
                .run(&hg),
            Err(PartitionError::InvalidConfig(_))
        ));
    }

    #[test]
    fn streaming_an_in_memory_algorithm_is_unsupported() {
        let hg = mesh_hypergraph(&MeshConfig::new(50, 4));
        let mut stream = hyperpraw_hypergraph::io::stream::InMemoryVertexStream::new(&hg);
        let err = PartitionJob::new(Algorithm::MultilevelBaseline)
            .partitions(4)
            .run_stream(&mut stream)
            .unwrap_err();
        assert!(matches!(err, PartitionError::Unsupported(_)));
    }

    #[test]
    fn every_algorithm_runs_in_memory_and_reports_metrics() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        let cost = CostMatrix::uniform(4);
        for algorithm in Algorithm::all() {
            let report = PartitionJob::new(algorithm)
                .cost(cost.clone())
                .seed(1)
                .run(&hg)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            assert_eq!(report.partition.num_parts(), 4, "{algorithm}");
            assert_eq!(report.partition.num_vertices(), 200, "{algorithm}");
            assert!(report.imbalance.is_finite(), "{algorithm}");
            assert!(report.comm_cost.is_some(), "{algorithm}");
            assert!(report.hyperedge_cut.is_some(), "{algorithm}");
            assert!(report.iterations >= 1, "{algorithm}");
            assert_eq!(report.config.partitions, 4, "{algorithm}");
        }
    }

    #[test]
    fn zero_threads_auto_detects_the_machine_parallelism() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        for algorithm in [Algorithm::ParallelBasic, Algorithm::LowMemSketched] {
            let job = PartitionJob::new(algorithm).partitions(4).threads(0);
            job.validate().unwrap();
            let report = job.run(&hg).unwrap();
            assert_eq!(report.config.threads, auto, "{algorithm}");
            assert_eq!(report.partition.num_parts(), 4, "{algorithm}");
        }
    }

    #[test]
    fn parallel_mode_lands_in_the_effective_config_and_json() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        let bsp = PartitionJob::new(Algorithm::ParallelBasic)
            .partitions(4)
            .threads(2)
            .run(&hg)
            .unwrap();
        assert_eq!(bsp.config.parallel_mode, Some("bsp"));
        assert!(bsp.config.sync_interval.is_some());

        let steal = PartitionJob::new(Algorithm::ParallelBasic)
            .partitions(4)
            .threads(2)
            .parallel_mode(ParallelMode::WorkStealing)
            .run(&hg)
            .unwrap();
        assert_eq!(steal.config.parallel_mode, Some("steal"));
        assert_eq!(
            steal.config.sync_interval, None,
            "work stealing has no synchronisation windows"
        );
        assert!(steal.to_json().contains("\"parallel_mode\": \"steal\""));
        assert_eq!(steal.partition.num_parts(), 4);

        let sequential = PartitionJob::new(Algorithm::HyperPrawBasic)
            .partitions(4)
            .run(&hg)
            .unwrap();
        assert_eq!(sequential.config.parallel_mode, None);
    }

    #[test]
    fn partition_count_resolves_from_the_cost_matrix() {
        let job = PartitionJob::new(Algorithm::HyperPrawBasic).cost(CostMatrix::uniform(6));
        assert_eq!(job.resolved_partitions().unwrap(), 6);
    }

    #[test]
    fn dynamic_sessions_partition_update_and_lookup() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let mut session = PartitionJob::new(Algorithm::HyperPrawBasic)
            .partitions(4)
            .seed(11)
            .run_dynamic(&hg)
            .unwrap();
        assert_eq!(session.initial_report().partition.num_vertices(), 300);
        assert_eq!(session.lookup(0), Some(session.partition().part_of(0)));

        let update = session
            .update(&[
                GraphUpdate::AddVertex { weight: 1.0 },
                GraphUpdate::AddHyperedge {
                    pins: vec![300, 0, 1],
                    weight: 1.0,
                },
            ])
            .unwrap();
        assert_eq!(update.new_vertices, vec![300]);
        assert!(update.dirty_vertices >= 3);
        assert_eq!(update.report.quality, QualityStatus::Evaluated);
        assert!(update.report.comm_cost.is_some());
        assert!(session.lookup(300).is_some());
        let json = update.to_json();
        assert!(json.contains("\"update\""), "{json}");
        assert!(json.contains("\"migration\""), "{json}");

        // Tombstoned vertices disappear from lookups; the session report
        // re-evaluates the mutated state.
        session
            .update(&[GraphUpdate::RemoveVertex { vertex: 5 }])
            .unwrap();
        assert_eq!(session.lookup(5), None);
        assert_eq!(session.report().quality, QualityStatus::Evaluated);
    }

    #[test]
    fn dynamic_sessions_round_trip_through_meta_and_resume() {
        let hg = mesh_hypergraph(&MeshConfig::new(120, 6));
        let mut live = PartitionJob::new(Algorithm::HyperPrawAware)
            .cost(CostMatrix::from_raw(
                3,
                vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.5, 2.0, 1.5, 0.0],
            ))
            .seed(7)
            .run_dynamic(&hg)
            .unwrap();
        live.update(&[GraphUpdate::AddVertex { weight: 2.0 }])
            .unwrap();

        // Serialise through the journal's snapshot machinery and resume.
        let meta = live.session_meta();
        let bytes = hyperpraw_dynamic::journal::encode_snapshot(1, &meta, live.partitioner());
        let snap =
            hyperpraw_dynamic::journal::read_snapshot(&hyperpraw_storage::MemorySource::new(bytes))
                .unwrap();
        let stats = RecoveryReport {
            snapshot_bytes: 0,
            batches_replayed: 0,
            truncated_bytes: 0,
            torn_tail: false,
        };
        let mut resumed =
            DynamicSession::resume(&snap.meta, snap.partitioner, Some(stats)).unwrap();
        assert_eq!(resumed.recovery(), Some(&stats));
        assert_eq!(
            resumed.partition().assignment(),
            live.partition().assignment()
        );
        // The rebuilt job evaluates against the same cost matrix...
        assert_eq!(
            resumed.report().comm_cost.unwrap(),
            live.report().comm_cost.unwrap()
        );
        // ...and both absorb the next batch bit-identically.
        let batch = [GraphUpdate::AddHyperedge {
            pins: vec![0, 60, 120],
            weight: 1.0,
        }];
        let a = live.update(&batch).unwrap();
        let b = resumed.update(&batch).unwrap();
        assert_eq!(
            a.report.partition.assignment(),
            b.report.partition.assignment()
        );

        // Damaged meta is rejected, not misread.
        assert!(DynamicSession::resume(&meta[..1], snap_partitioner_clone_err(), None).is_err());
    }

    // resume() consumes a partitioner; tests that only probe meta
    // validation still need one to hand over.
    fn snap_partitioner_clone_err() -> DynamicPartitioner {
        let hg = mesh_hypergraph(&MeshConfig::new(10, 3));
        let p = Partition::round_robin(10, 2);
        DynamicPartitioner::new(&hg, p, CostMatrix::uniform(2), DynamicConfig::default()).unwrap()
    }

    #[test]
    fn dynamic_sessions_require_a_restreaming_algorithm() {
        let hg = mesh_hypergraph(&MeshConfig::new(50, 4));
        let err = PartitionJob::new(Algorithm::RoundRobin)
            .partitions(4)
            .run_dynamic(&hg)
            .unwrap_err();
        assert!(matches!(err, PartitionError::Unsupported(_)));
    }
}
