//! # hyperpraw
//!
//! A from-scratch Rust reproduction of **HyperPRAW** — the
//! architecture-aware hypergraph restreaming partitioner of Fernandez
//! Musoles, Coca and Richmond (ICPP 2019) — together with every substrate
//! the paper's evaluation needs: hypergraph data structures and dataset
//! generators, a hierarchical HPC machine model with bandwidth profiling, a
//! discrete-event message-passing simulator standing in for MPI-on-ARCHER,
//! and a multilevel recursive-bisection baseline standing in for Zoltan.
//!
//! This crate is the **one front door** to the workspace: the [`api`]
//! module dispatches every partitioning driver through a single
//! builder-first [`api::PartitionJob`] selected by an [`api::Algorithm`],
//! and every run returns the common [`report::PartitionReport`] (with a
//! dependency-free JSON serialisation). The member crates remain available
//! under stable module names for direct, low-level use.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`api`] / [`report`] | (this crate) | the unified `PartitionJob` front door, `Algorithm` dispatch, `PartitionError`, `PartitionReport` + JSON |
//! | [`hypergraph`] | `hyperpraw-hypergraph` | CSR hypergraphs, builders, generators, IO (including streaming vertex readers), cut metrics |
//! | [`topology`] | `hyperpraw-topology` | machine models, bandwidth matrices, cost matrices |
//! | [`netsim`] | `hyperpraw-netsim` | event-driven network simulator, ring profiler, synthetic benchmark |
//! | [`multilevel`] | `hyperpraw-multilevel` | Zoltan-like multilevel recursive bisection baseline |
//! | [`core`] | `hyperpraw-core` | the HyperPRAW restreaming engine and its thin drivers |
//! | [`lowmem`] | `hyperpraw-lowmem` | memory-bounded one-pass streaming partitioner over on-disk vertex streams, with Bloom/MinHash connectivity sketches |
//! | [`dynamic`] | `hyperpraw-dynamic` | incremental repartitioning: batched graph updates, dirty-set restreaming, migration accounting |
//! | [`storage`] | `hyperpraw-storage` | block-compressed out-of-core CSR (`.hpz`): delta-varint pin blocks, pluggable `ByteSource`s, prefetching chunk reader |
//! | [`telemetry`] | `hyperpraw-telemetry` | zero-dependency metrics: atomic counters/gauges, mergeable log-scaled histograms, span timers, registry with Prometheus/JSON exposition |
//! | [`json`] | (this crate) | dependency-free JSON parser for the `hyperpraw serve` newline-delimited protocol |
//!
//! ## End-to-end flow
//!
//! ```
//! use hyperpraw::prelude::*;
//!
//! // 1. A communication-bound application modelled as a hypergraph.
//! let hg = hyperpraw::hypergraph::generators::mesh_hypergraph(
//!     &hyperpraw::hypergraph::generators::MeshConfig::new(500, 8),
//! );
//!
//! // 2. The machine: 16 cores of an ARCHER-like cluster, profiled.
//! let machine = MachineModel::archer_like(16);
//! let link = LinkModel::from_machine(&machine, 0.05, 7);
//! let bandwidth = RingProfiler::default().profile(&link);
//! let cost = CostMatrix::from_bandwidth(&bandwidth);
//!
//! // 3. Partition with HyperPRAW-aware through the job API.
//! let report = PartitionJob::new(Algorithm::HyperPrawAware)
//!     .cost(cost)
//!     .seed(7)
//!     .run(&hg)
//!     .unwrap();
//! assert_eq!(report.partition.num_parts(), 16);
//!
//! // 4. Run the synthetic benchmark under that placement.
//! let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());
//! let outcome = bench.run(&hg, &report.partition);
//! assert!(outcome.total_time_us >= 0.0);
//!
//! // 5. Machine-readable results for sweeps.
//! assert!(report.to_json().contains("\"algorithm\": \"hyperpraw-aware\""));
//! ```
//!
//! Swapping the algorithm — `Algorithm::{HyperPrawBasic, ParallelAware,
//! LowMemSketched, MultilevelBaseline, ...}` — changes nothing else about
//! the flow; the lowmem variants additionally accept an on-disk
//! [`hypergraph::io::stream::VertexStream`] through
//! [`api::PartitionJob::run_stream`].
//!
//! For workloads that evolve after the initial placement,
//! [`api::PartitionJob::run_dynamic`] keeps the result resident as an
//! [`api::DynamicSession`]: batched [`dynamic::GraphUpdate`]s mutate the
//! hypergraph in place and restream only the dirty neighbourhood,
//! reporting migration cost through [`report::UpdateReport`]. The same
//! session backs the long-lived `hyperpraw serve` daemon, which speaks
//! newline-delimited JSON (`partition` / `update` / `lookup` / `report` /
//! `shutdown`) over TCP or stdio.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod json;
pub mod report;

pub use hyperpraw_core as core;
pub use hyperpraw_dynamic as dynamic;
pub use hyperpraw_hypergraph as hypergraph;
pub use hyperpraw_lowmem as lowmem;
pub use hyperpraw_multilevel as multilevel;
pub use hyperpraw_netsim as netsim;
pub use hyperpraw_storage as storage;
pub use hyperpraw_telemetry as telemetry;
pub use hyperpraw_topology as topology;

pub use api::{Algorithm, PartitionError, PartitionJob};
pub use report::PartitionReport;

/// The most commonly used types from every layer, re-exported flat.
pub mod prelude {
    pub use crate::api::{Algorithm, DynamicSession, PartitionError, PartitionJob};
    pub use crate::report::{
        EffectiveConfig, LowMemStats, MigrationReport, PartitionReport, PhaseTimings,
        QualityStatus, RecoveryReport, UpdateReport,
    };
    pub use hyperpraw_core::{
        baselines, metrics::partitioning_communication_cost, metrics::QualityReport, CostMatrix,
        HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw, ParallelMode,
        PartitionResult, RefinementPolicy, StopReason, StreamOrder,
    };
    pub use hyperpraw_dynamic::{
        DynamicConfig, DynamicError, DynamicPartitioner, GraphUpdate, RecoveryStats, StateDir,
        UpdateOutcome,
    };
    pub use hyperpraw_hypergraph::prelude::*;
    pub use hyperpraw_lowmem::{
        IndexKind, LowMemConfig, LowMemPartitioner, LowMemResult, MemoryBudget,
    };
    pub use hyperpraw_multilevel::{recursive_bisection, MultilevelConfig, MultilevelPartitioner};
    pub use hyperpraw_netsim::{
        BenchmarkConfig, BenchmarkResult, LinkModel, RingProfiler, SyntheticBenchmark,
        TrafficMatrix,
    };
    pub use hyperpraw_topology::{BandwidthMatrix, MachineModel};
}
