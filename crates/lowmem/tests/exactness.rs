//! The exact-index streaming partitioner must reproduce `hyperpraw-core`'s
//! single-stream assignment.
//!
//! The two partitioners share the value function and differ only in how
//! they obtain the neighbour counts: core counts *distinct neighbour
//! vertices* per partition from CSR, lowmem counts *connected nets* per
//! partition from its index. On 2-uniform hypergraphs where every vertex
//! pair shares at most one net the two quantities coincide (each incident
//! net contributes exactly its one other pin), so with the same α, the
//! same natural order and lowmem's round-robin prior the assignments must
//! be bit-identical.

use hyperpraw_core::{CostMatrix, HyperPraw, HyperPrawConfig, RefinementPolicy, StreamOrder};
use hyperpraw_hypergraph::{Hypergraph, HypergraphBuilder};
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner};
use hyperpraw_topology::{BandwidthMatrix, MachineModel};

/// A cycle: every pair `{v, v+1 mod n}` is one net; all pairs distinct.
fn cycle(n: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_hyperedge([v, (v + 1) % n as u32]);
    }
    b.build()
}

/// A circulant graph with chords: nets `{v, v+1}` and `{v, v+5}` (mod n).
/// Still 2-uniform with all pairs distinct for n > 10.
fn circulant(n: usize) -> Hypergraph {
    let m = n as u32;
    let mut b = HypergraphBuilder::new(n);
    for v in 0..m {
        b.add_hyperedge([v, (v + 1) % m]);
        b.add_hyperedge([v, (v + 5) % m]);
    }
    b.build()
}

/// Runs exactly one core stream from the round-robin start with a frozen α
/// and returns the resulting assignment.
fn core_single_stream(hg: &Hypergraph, cost: CostMatrix, alpha: f64) -> Vec<u32> {
    let config = HyperPrawConfig {
        initial_alpha: Some(alpha),
        max_iterations: 1,
        refinement: RefinementPolicy::None,
        // Any imbalance is "feasible", so the run stops after one stream
        // and returns that stream's partition untouched.
        imbalance_tolerance: f64::from(u32::MAX),
        stream_order: StreamOrder::Natural,
        ..HyperPrawConfig::default()
    };
    HyperPraw::new(config, cost)
        .partition(hg)
        .partition
        .assignment()
        .to_vec()
}

/// Runs the lowmem exact-index partitioner in restreaming-prior mode with
/// the same α and no re-stream buffer.
fn lowmem_exact_stream(hg: &Hypergraph, cost: CostMatrix, alpha: f64) -> Vec<u32> {
    let config = LowMemConfig {
        index: IndexKind::Exact,
        alpha: Some(alpha),
        restream_capacity: Some(0),
        round_robin_prior: true,
        ..LowMemConfig::default()
    };
    LowMemPartitioner::new(config, cost)
        .partition_hypergraph(hg)
        .partition
        .assignment()
        .to_vec()
}

#[test]
fn exact_index_matches_core_single_stream_on_a_cycle() {
    let hg = cycle(48);
    let p = 4u32;
    let alpha = HyperPrawConfig::fennel_alpha(p, hg.num_vertices(), hg.num_hyperedges());
    let cost = CostMatrix::uniform(p as usize);
    assert_eq!(
        lowmem_exact_stream(&hg, cost.clone(), alpha),
        core_single_stream(&hg, cost, alpha),
    );
}

#[test]
fn exact_index_matches_core_single_stream_with_an_aware_cost_matrix() {
    let hg = circulant(60);
    let p = 6usize;
    let machine = MachineModel::archer_like(p);
    let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 3));
    let alpha = HyperPrawConfig::fennel_alpha(p as u32, hg.num_vertices(), hg.num_hyperedges());
    assert_eq!(
        lowmem_exact_stream(&hg, cost.clone(), alpha),
        core_single_stream(&hg, cost, alpha),
    );
}

#[test]
fn exact_index_matches_core_across_alphas() {
    let hg = cycle(36);
    let cost = CostMatrix::uniform(3);
    for alpha in [0.1, 1.0, 10.0, 100.0] {
        assert_eq!(
            lowmem_exact_stream(&hg, cost.clone(), alpha),
            core_single_stream(&hg, cost.clone(), alpha),
            "divergence at alpha {alpha}"
        );
    }
}
