//! Property-based tests for the connectivity sketches.

use proptest::prelude::*;

use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::Hypergraph;
use hyperpraw_lowmem::index::{ConnectivityIndex, ExactIndex, SketchIndex};
use hyperpraw_lowmem::sketch::BloomFilter;
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (20usize..80, 10usize..60, 0u64..500).prop_map(|(n, e, seed)| {
        random_hypergraph(&RandomConfig {
            num_vertices: n,
            num_hyperedges: e,
            cardinality: CardinalityDist::Uniform { min: 2, max: 5 },
            seed,
            name: "lowmem-prop".into(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bloom_filters_have_no_false_negatives(
        bits_exp in 6usize..14,
        hashes in 1usize..6,
        items in prop::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let mut bloom = BloomFilter::new(1 << bits_exp, hashes);
        for &x in &items {
            bloom.insert(x);
        }
        for &x in &items {
            prop_assert!(bloom.contains(x), "inserted item {x} reported absent");
        }
    }

    #[test]
    fn sketched_connectivity_never_undercounts_and_stays_within_the_fpr(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..50,
    ) {
        // Record every vertex's nets under a round-robin assignment in both
        // indexes, then compare connectivity answers for every vertex.
        let parts = p as usize;
        let budget = MemoryBudget::mebibytes(1);
        let plan = budget.plan(parts, hg.num_hyperedges());
        let mut exact = ExactIndex::new(parts);
        let mut sketch = SketchIndex::new(parts, &plan, seed);
        for v in hg.vertices() {
            let nets = hg.incident_edges(v);
            exact.record(nets, v % p);
            sketch.record(nets, v % p);
        }
        let mut exact_counts = Vec::new();
        let mut sketch_counts = Vec::new();
        let mut queried = 0u64;
        let mut overcounted = 0u64;
        for v in hg.vertices() {
            let nets = hg.incident_edges(v);
            exact.connectivity(nets, &mut exact_counts);
            sketch.connectivity(nets, &mut sketch_counts);
            for (s, e) in sketch_counts.iter().zip(&exact_counts) {
                prop_assert!(s >= e, "sketch undercounts: {s} < {e}");
                queried += u64::from(nets.len() as u32);
                overcounted += u64::from(s - e);
            }
        }
        // Every overcount is a Bloom false positive. The filter holds at
        // most |E| distinct nets per partition; allow generous slack over
        // the plan's expected rate to keep the test deterministic-robust.
        let allowed = plan.expected_fpr(hg.num_hyperedges()) * queried as f64 * 4.0 + 1.0;
        prop_assert!(
            (overcounted as f64) <= allowed,
            "overcounts {overcounted} exceed FPR allowance {allowed:.2}"
        );
    }

    #[test]
    fn exact_and_sketched_partitioners_agree_under_a_generous_budget(
        hg in arb_hypergraph(),
        p in 2u32..5,
    ) {
        // With a 1 MiB budget and well under a thousand nets the expected
        // false-positive rate is ~0, so both index kinds must drive the
        // greedy stream to identical decisions.
        let make = |index: IndexKind| {
            LowMemPartitioner::basic(
                LowMemConfig {
                    budget: MemoryBudget::mebibytes(1),
                    index,
                    restream_capacity: Some(0),
                    ..LowMemConfig::default()
                },
                p,
            )
            .partition_hypergraph(&hg)
        };
        let exact = make(IndexKind::Exact);
        let sketched = make(IndexKind::Sketched);
        prop_assert_eq!(
            exact.partition.assignment(),
            sketched.partition.assignment()
        );
    }

    #[test]
    fn streaming_partitions_are_always_complete_and_in_range(
        hg in arb_hypergraph(),
        p in 2u32..7,
        prior in 0u32..2,
    ) {
        // The round-robin prior requires a forgettable index, so pair it
        // with the exact implementation.
        let result = LowMemPartitioner::basic(
            LowMemConfig {
                round_robin_prior: prior == 1,
                index: if prior == 1 {
                    IndexKind::Exact
                } else {
                    IndexKind::Sketched
                },
                ..LowMemConfig::default()
            },
            p,
        )
        .partition_hypergraph(&hg);
        prop_assert_eq!(result.partition.num_vertices(), hg.num_vertices());
        prop_assert_eq!(result.partition.num_parts(), p);
        prop_assert!(result.partition.assignment().iter().all(|&x| x < p));
        let total: usize = result.partition.part_sizes().iter().sum();
        prop_assert_eq!(total, hg.num_vertices());
    }
}
