//! Streaming partition-quality evaluation.
//!
//! The cut metrics in [`hyperpraw_hypergraph::metrics`] walk an in-memory
//! CSR hypergraph. For out-of-core workloads this module recomputes the
//! same quantities with one **edge-major** pass over the original file:
//! only one net's pins and the assignment vector are resident at a time.

use std::path::Path;

use hyperpraw_hypergraph::io::stream::{visit_edgelist_nets, visit_hgr_nets};
use hyperpraw_hypergraph::io::{IoError, IoResult};
use hyperpraw_hypergraph::Partition;

/// Partition quality computed by streaming the input file edge-major.
///
/// Matches [`hyperpraw_hypergraph::metrics`] on unweighted hypergraphs:
/// `hyperedge_cut`, `soed` and `connectivity_minus_one` use unit net
/// weights (the streaming readers treat nets uniformly). `imbalance` uses
/// the file's vertex weights when it carries them (hMETIS fmt 10/11 — the
/// quantity the partitioner actually balanced), unit weights otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamedQuality {
    /// Number of nets spanning more than one partition.
    pub hyperedge_cut: u64,
    /// Sum of `λ(e)` over cut nets.
    pub soed: u64,
    /// `Σ_e (λ(e) − 1)`.
    pub connectivity_minus_one: f64,
    /// `max_k |V_k| / avg_k |V_k|`.
    pub imbalance: f64,
}

fn evaluate_with<V>(partition: &Partition, visit: V) -> IoResult<StreamedQuality>
where
    V: FnOnce(&mut dyn FnMut(u32, &[u32]) -> IoResult<()>) -> IoResult<()>,
{
    let mut cut = 0u64;
    let mut soed = 0u64;
    let mut conn = 0f64;
    let mut parts_scratch: Vec<u32> = Vec::new();
    visit(&mut |_net, pins| {
        parts_scratch.clear();
        for &v in pins {
            if (v as usize) >= partition.num_vertices() {
                return Err(IoError::parse(
                    0,
                    format!(
                        "pin {v} outside the partition's {} vertices",
                        partition.num_vertices()
                    ),
                ));
            }
            parts_scratch.push(partition.part_of(v));
        }
        parts_scratch.sort_unstable();
        parts_scratch.dedup();
        let lambda = parts_scratch.len() as u64;
        if lambda > 1 {
            cut += 1;
            soed += lambda;
        }
        conn += lambda.saturating_sub(1) as f64;
        Ok(())
    })?;
    Ok(StreamedQuality {
        hyperedge_cut: cut,
        soed,
        connectivity_minus_one: conn,
        imbalance: unweighted_imbalance(partition),
    })
}

/// `max_k |V_k| / avg_k |V_k|` from the partition's part sizes — the only
/// imbalance a pure stream consumer can compute after the fact, without
/// per-vertex weights (1.0 for an empty partition).
pub fn unweighted_imbalance(partition: &Partition) -> f64 {
    let sizes = partition.part_sizes();
    let total: usize = sizes.iter().sum();
    if total == 0 || sizes.is_empty() {
        return 1.0;
    }
    let avg = total as f64 / sizes.len() as f64;
    sizes.iter().copied().max().unwrap_or(0) as f64 / avg
}

fn weighted_imbalance(partition: &Partition, weights: &[f64]) -> f64 {
    if weights.len() != partition.num_vertices() {
        return unweighted_imbalance(partition);
    }
    let mut loads = vec![0.0f64; partition.num_parts() as usize];
    for v in 0..partition.num_vertices() as u32 {
        loads[partition.part_of(v) as usize] += weights[v as usize];
    }
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let avg = total / loads.len() as f64;
    loads.iter().cloned().fold(0.0, f64::max) / avg
}

/// Evaluates `partition` against the hMETIS file at `path` in one
/// edge-major pass.
pub fn evaluate_hgr_file(
    path: impl AsRef<Path>,
    partition: &Partition,
) -> IoResult<StreamedQuality> {
    let reader = std::io::BufReader::new(std::fs::File::open(path.as_ref())?);
    let mut vertex_weights: Option<Vec<f64>> = None;
    let mut quality = evaluate_with(partition, |sink| {
        let summary = visit_hgr_nets(reader, sink)?;
        vertex_weights = summary.vertex_weights;
        Ok(())
    })?;
    if let Some(weights) = vertex_weights {
        quality.imbalance = weighted_imbalance(partition, &weights);
    }
    Ok(quality)
}

/// Evaluates `partition` against the edge-list file at `path` in one
/// edge-major pass.
pub fn evaluate_edgelist_file(
    path: impl AsRef<Path>,
    partition: &Partition,
) -> IoResult<StreamedQuality> {
    let reader = std::io::BufReader::new(std::fs::File::open(path.as_ref())?);
    evaluate_with(partition, |sink| {
        visit_edgelist_nets(reader, sink).map(|_| ())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::io::hmetis;
    use hyperpraw_hypergraph::{metrics, HypergraphBuilder};

    #[test]
    fn streamed_quality_matches_in_memory_metrics() {
        let mut b = HypergraphBuilder::new(8);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5, 6, 7]);
        b.add_hyperedge([0u32, 7]);
        let hg = b.build();
        let part = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2, 0, 1], 3).unwrap();

        let path = std::env::temp_dir().join(format!(
            "hyperpraw_lowmem_quality_{}.hgr",
            std::process::id()
        ));
        hmetis::write_hgr_file(&hg, &path).unwrap();
        let quality = evaluate_hgr_file(&path, &part).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(quality.hyperedge_cut, metrics::hyperedge_cut(&hg, &part));
        assert_eq!(quality.soed, metrics::soed(&hg, &part));
        assert!(
            (quality.connectivity_minus_one - metrics::connectivity_minus_one(&hg, &part)).abs()
                < 1e-12
        );
        assert!((quality.imbalance - part.imbalance(&hg).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn weighted_files_report_weighted_imbalance() {
        // fmt=10: 2 nets, 4 vertices with weights 9, 1, 1, 9. Partition
        // [0, 1, 1, 1]: weighted loads are (9, 11) → imbalance 1.1, while
        // unit-weight counts (1, 3) would report 1.5.
        let path = std::env::temp_dir().join(format!(
            "hyperpraw_lowmem_quality_weighted_{}.hgr",
            std::process::id()
        ));
        std::fs::write(&path, "2 4 10\n1 2\n3 4\n9\n1\n1\n9\n").unwrap();
        let part = Partition::from_assignment(vec![0, 1, 1, 1], 2).unwrap();
        let quality = evaluate_hgr_file(&path, &part).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            (quality.imbalance - 1.1).abs() < 1e-12,
            "expected weighted imbalance 1.1, got {}",
            quality.imbalance
        );
    }

    #[test]
    fn out_of_range_pins_are_reported() {
        let path = std::env::temp_dir().join(format!(
            "hyperpraw_lowmem_quality_bad_{}.hgr",
            std::process::id()
        ));
        std::fs::write(&path, "1 9\n8 9\n").unwrap();
        let small = Partition::round_robin(3, 2);
        let err = evaluate_hgr_file(&path, &small).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(format!("{err}").contains("outside the partition"));
    }
}
