//! Partition-connectivity state behind the [`ConnectivityIndex`] trait.
//!
//! The streaming partitioner's only question about global state is: *of the
//! nets incident to this vertex, how many already touch partition `j`?*
//! The answer vector plays the role of the neighbour-partition counts
//! `X_j(v)` in HyperPRAW's value function.
//!
//! Two implementations are provided:
//!
//! * [`ExactIndex`] — per-partition hash maps from net id to pin count.
//!   Exact and reversible (assignments can be forgotten), with memory that
//!   grows with the number of distinct (net, partition) incidences. The
//!   reference against which the sketched index is validated.
//! * [`SketchIndex`] — per-partition [`BloomFilter`]s (membership) plus
//!   [`MinHashSketch`]es (similarity), sized by a [`SketchPlan`]. Fixed
//!   memory, no false negatives; false positives over-count connectivity
//!   at the plan's expected rate, and assignments cannot be forgotten
//!   (stale connectivity persists until the filter is rebuilt).

use std::collections::HashMap;

use hyperpraw_hypergraph::HyperedgeId;

use crate::budget::SketchPlan;
use crate::sketch::{BloomFilter, MinHashSketch};

/// The connectivity state consulted and updated by the streaming
/// partitioner.
pub trait ConnectivityIndex {
    /// Number of partitions tracked.
    fn num_parts(&self) -> usize;

    /// Writes, for every partition `j`, the number of `nets` currently
    /// connected to `j` into `counts` (resized and cleared).
    fn connectivity(&self, nets: &[HyperedgeId], counts: &mut Vec<u32>);

    /// Records that every net in `nets` now has a pin in `part`.
    fn record(&mut self, nets: &[HyperedgeId], part: u32);

    /// Reverses one prior [`ConnectivityIndex::record`] of `nets` in
    /// `part`, when supported (see [`ConnectivityIndex::supports_forget`]).
    fn forget(&mut self, nets: &[HyperedgeId], part: u32);

    /// Whether [`ConnectivityIndex::forget`] actually removes state.
    /// Sketched implementations return `false`: their connectivity can
    /// only grow, which the re-streaming pass tolerates as staleness.
    fn supports_forget(&self) -> bool;

    /// Drops every recorded incidence, returning the index to its
    /// freshly-constructed state (same size, same hash families). The
    /// restreaming engine calls this between passes when asked to rebuild
    /// sketches: indexes that cannot forget shed their accumulated
    /// staleness wholesale and are repopulated by the pass itself.
    fn reset(&mut self);

    /// An empty index of the same shape (partition count, sizes, hash
    /// families) — the second half of the double-buffered rebuild: during
    /// a rebuild pass the stale index keeps answering queries while the
    /// empty copy records the pass's placements, and the pair is swapped
    /// at the next pass boundary.
    fn empty_clone(&self) -> Box<dyn ConnectivityIndex + Send + Sync>;

    /// Estimated Jaccard similarity between `nets` and partition `part`'s
    /// net set, when the index can estimate it cheaply. Used as a
    /// confidence signal only — never to pick the partition.
    fn similarity(&self, nets: &[HyperedgeId], part: u32) -> Option<f64> {
        let _ = (nets, part);
        None
    }

    /// Approximate heap bytes currently held by the index.
    fn memory_bytes(&self) -> usize;
}

/// Exact reference implementation: per-partition `net → pin count` maps.
#[derive(Clone, Debug)]
pub struct ExactIndex {
    per_part: Vec<HashMap<HyperedgeId, u32>>,
}

impl ExactIndex {
    /// Creates an empty exact index over `num_parts` partitions.
    pub fn new(num_parts: usize) -> Self {
        Self {
            per_part: vec![HashMap::new(); num_parts.max(1)],
        }
    }
}

impl ConnectivityIndex for ExactIndex {
    fn num_parts(&self) -> usize {
        self.per_part.len()
    }

    fn connectivity(&self, nets: &[HyperedgeId], counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(self.per_part.len(), 0);
        for (j, map) in self.per_part.iter().enumerate() {
            counts[j] = nets.iter().filter(|e| map.contains_key(e)).count() as u32;
        }
    }

    fn record(&mut self, nets: &[HyperedgeId], part: u32) {
        let map = &mut self.per_part[part as usize];
        for &e in nets {
            *map.entry(e).or_insert(0) += 1;
        }
    }

    fn forget(&mut self, nets: &[HyperedgeId], part: u32) {
        let map = &mut self.per_part[part as usize];
        for &e in nets {
            if let Some(count) = map.get_mut(&e) {
                *count -= 1;
                if *count == 0 {
                    map.remove(&e);
                }
            }
        }
    }

    fn supports_forget(&self) -> bool {
        true
    }

    fn reset(&mut self) {
        self.per_part.iter_mut().for_each(HashMap::clear);
    }

    fn empty_clone(&self) -> Box<dyn ConnectivityIndex + Send + Sync> {
        Box::new(ExactIndex::new(self.per_part.len()))
    }

    fn memory_bytes(&self) -> usize {
        // Entry estimate: key + value + hash-table overhead.
        self.per_part.iter().map(|m| 48 + m.len() * 16).sum()
    }
}

/// Sketched implementation: Bloom membership + MinHash similarity per
/// partition, with memory fixed by the [`SketchPlan`].
#[derive(Clone, Debug)]
pub struct SketchIndex {
    blooms: Vec<BloomFilter>,
    minhashes: Vec<MinHashSketch>,
}

impl SketchIndex {
    /// Creates an empty sketched index over `num_parts` partitions, sized
    /// by `plan`, with the MinHash family derived from `seed`.
    pub fn new(num_parts: usize, plan: &SketchPlan, seed: u64) -> Self {
        let parts = num_parts.max(1);
        Self {
            blooms: (0..parts)
                .map(|_| BloomFilter::new(plan.bloom_bits_per_partition, plan.bloom_hashes))
                .collect(),
            minhashes: (0..parts)
                .map(|_| MinHashSketch::new(plan.minhash_permutations, seed))
                .collect(),
        }
    }

    /// The partition Bloom filters (read-only, for diagnostics).
    pub fn blooms(&self) -> &[BloomFilter] {
        &self.blooms
    }
}

impl ConnectivityIndex for SketchIndex {
    fn num_parts(&self) -> usize {
        self.blooms.len()
    }

    fn connectivity(&self, nets: &[HyperedgeId], counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(self.blooms.len(), 0);
        for (j, bloom) in self.blooms.iter().enumerate() {
            counts[j] = nets
                .iter()
                .filter(|&&e| bloom.contains(u64::from(e)))
                .count() as u32;
        }
    }

    fn record(&mut self, nets: &[HyperedgeId], part: u32) {
        let bloom = &mut self.blooms[part as usize];
        let minhash = &mut self.minhashes[part as usize];
        for &e in nets {
            bloom.insert(u64::from(e));
            minhash.insert(u64::from(e));
        }
    }

    fn forget(&mut self, _nets: &[HyperedgeId], _part: u32) {
        // Bloom filters cannot delete; staleness is accepted and bounded
        // by the re-streaming pass.
    }

    fn supports_forget(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.blooms.iter_mut().for_each(BloomFilter::clear);
        self.minhashes.iter_mut().for_each(MinHashSketch::clear);
    }

    fn empty_clone(&self) -> Box<dyn ConnectivityIndex + Send + Sync> {
        let mut copy = self.clone();
        copy.reset();
        Box::new(copy)
    }

    fn similarity(&self, nets: &[HyperedgeId], part: u32) -> Option<f64> {
        let reference = &self.minhashes[part as usize];
        Some(reference.jaccard_of_items(nets.iter().map(|&e| u64::from(e))))
    }

    fn memory_bytes(&self) -> usize {
        self.blooms
            .iter()
            .map(BloomFilter::memory_bytes)
            .sum::<usize>()
            + self
                .minhashes
                .iter()
                .map(MinHashSketch::memory_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::MemoryBudget;

    fn plan() -> SketchPlan {
        MemoryBudget::mebibytes(1).plan(4, 1_000)
    }

    #[test]
    fn exact_index_counts_and_forgets_precisely() {
        let mut index = ExactIndex::new(3);
        index.record(&[0, 1, 2], 0);
        index.record(&[2, 3], 1);
        let mut counts = Vec::new();
        index.connectivity(&[0, 2, 3], &mut counts);
        assert_eq!(counts, vec![2, 2, 0]);
        // Net 2 was recorded twice in different parts; forgetting it from
        // part 0 must not affect part 1.
        index.forget(&[0, 1, 2], 0);
        index.connectivity(&[0, 2, 3], &mut counts);
        assert_eq!(counts, vec![0, 2, 0]);
        assert!(index.supports_forget());
    }

    #[test]
    fn exact_index_tracks_multiplicity() {
        let mut index = ExactIndex::new(2);
        index.record(&[5], 0);
        index.record(&[5], 0);
        index.forget(&[5], 0);
        let mut counts = Vec::new();
        index.connectivity(&[5], &mut counts);
        assert_eq!(counts, vec![1, 0], "one of two pins remains");
    }

    #[test]
    fn sketch_index_never_undercounts() {
        let plan = plan();
        let mut sketch = SketchIndex::new(4, &plan, 7);
        let mut exact = ExactIndex::new(4);
        for (nets, part) in [(vec![0u32, 1, 2], 0u32), (vec![2, 3], 1), (vec![4], 3)] {
            sketch.record(&nets, part);
            exact.record(&nets, part);
        }
        let query = [0u32, 2, 3, 4];
        let (mut sketched, mut exactly) = (Vec::new(), Vec::new());
        sketch.connectivity(&query, &mut sketched);
        exact.connectivity(&query, &mut exactly);
        for (s, e) in sketched.iter().zip(&exactly) {
            assert!(s >= e, "sketch {s} undercounts exact {e}");
        }
        assert!(!sketch.supports_forget());
    }

    #[test]
    fn sketch_similarity_ranks_the_home_partition_highest() {
        let plan = plan();
        let mut sketch = SketchIndex::new(2, &plan, 1);
        sketch.record(&[0, 1, 2, 3], 0);
        sketch.record(&[100, 101], 1);
        let sim_home = sketch.similarity(&[0, 1, 2], 0).unwrap();
        let sim_away = sketch.similarity(&[0, 1, 2], 1).unwrap();
        assert!(sim_home > sim_away);
    }

    #[test]
    fn reset_returns_both_indexes_to_the_empty_state() {
        let plan = plan();
        let mut exact = ExactIndex::new(3);
        let mut sketch = SketchIndex::new(3, &plan, 9);
        for index in [&mut exact as &mut dyn ConnectivityIndex, &mut sketch] {
            index.record(&[1, 2, 3], 0);
            index.record(&[3, 4], 2);
            index.reset();
            let mut counts = Vec::new();
            index.connectivity(&[1, 2, 3, 4], &mut counts);
            assert_eq!(counts, vec![0, 0, 0], "index must be empty after reset");
        }
        // The sketch keeps its size (and therefore its budget) across resets.
        let before = sketch.memory_bytes();
        sketch.record(&[7], 1);
        sketch.reset();
        assert_eq!(sketch.memory_bytes(), before);
    }

    #[test]
    fn sketch_memory_is_fixed_by_the_plan() {
        let plan = plan();
        let mut sketch = SketchIndex::new(4, &plan, 0);
        let before = sketch.memory_bytes();
        for e in 0..10_000u32 {
            sketch.record(&[e], e % 4);
        }
        assert_eq!(sketch.memory_bytes(), before, "sketch memory must not grow");
        let expected = 4 * (plan.bloom_bits_per_partition / 8) + 4 * plan.minhash_permutations * 8;
        assert_eq!(before, expected);
    }
}
