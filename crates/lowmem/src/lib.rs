//! Memory-bounded one-pass streaming hypergraph partitioning.
//!
//! HyperPRAW (ICPP 2019) restreams with the whole hypergraph resident in
//! RAM as CSR, which caps the workload size at available memory. This
//! crate implements the out-of-core regime explored by the streaming
//! hypergraph partitioning literature (Taşyaran et al., arXiv:2103.05394;
//! HYPE, arXiv:1810.11319) on top of the same architecture-aware value
//! function:
//!
//! * the input is consumed through a
//!   [`hyperpraw_hypergraph::io::stream::VertexStream`] — either an
//!   in-memory adapter or the on-disk transpose readers
//!   ([`hyperpraw_hypergraph::io::stream::stream_hgr_file`] /
//!   `stream_edgelist_file`) that read the input file once and never
//!   materialise CSR,
//! * global connectivity lives in budgeted memory behind the
//!   [`ConnectivityIndex`] trait: per-partition Bloom filters answer "does
//!   this net touch partition j?" and MinHash signatures estimate net-set
//!   similarity ([`SketchIndex`]), with an exact hash-map reference
//!   implementation ([`ExactIndex`]) for validation,
//! * the placement loop itself is `hyperpraw-core`'s generic restreaming
//!   engine ([`hyperpraw_core::engine::Engine`]): this crate only
//!   contributes the [`IndexProvider`] connectivity axis, and the engine
//!   supplies the value function, the α handling, the bounded
//!   low-confidence revisit buffer, out-of-core restreaming passes
//!   ([`LowMemConfig::passes`], with optional sketch rebuilding between
//!   passes to shed staleness), and the bulk-synchronous execution
//!   strategy ([`LowMemConfig::threads`] — parallel out-of-core
//!   partitioning over the frozen index),
//! * HyperPRAW-aware vs. -basic is again just a [`CostMatrix`] away.
//!
//! Everything is sized from a single [`MemoryBudget`]; peak sketch memory
//! is independent of the hypergraph.
//!
//! ```
//! use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};
//! use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
//!
//! let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
//! let config = LowMemConfig {
//!     budget: MemoryBudget::mebibytes(4),
//!     index: IndexKind::Sketched,
//!     ..LowMemConfig::default()
//! };
//! let result = LowMemPartitioner::basic(config, 8).partition_hypergraph(&hg);
//! assert_eq!(result.partition.num_parts(), 8);
//! assert!(result.index_memory_bytes <= 4 << 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod partitioner;

pub mod index;
pub mod provider;
pub mod quality;
pub mod sketch;

pub use budget::{MemoryBudget, SketchPlan};
pub use index::{ConnectivityIndex, ExactIndex, SketchIndex};
pub use partitioner::{IndexKind, LowMemConfig, LowMemPartitioner, LowMemResult};
pub use provider::IndexProvider;
pub use quality::{
    evaluate_edgelist_file, evaluate_hgr_file, unweighted_imbalance, StreamedQuality,
};

// Re-export so downstream users do not need to depend on the topology
// crate for the common case, mirroring `hyperpraw-core`.
pub use hyperpraw_core::CostMatrix;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        CostMatrix, IndexKind, LowMemConfig, LowMemPartitioner, LowMemResult, MemoryBudget,
        StreamedQuality,
    };
}
