//! The memory-bounded one-pass greedy streaming partitioner.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hyperpraw_core::value::best_partition_with_margin;
use hyperpraw_core::{CostMatrix, HyperPrawConfig};
use hyperpraw_hypergraph::io::stream::{VertexRecord, VertexStream};
use hyperpraw_hypergraph::io::IoResult;
use hyperpraw_hypergraph::{HyperedgeId, Hypergraph, Partition, VertexId};

use crate::budget::{MemoryBudget, SketchPlan};
use crate::index::{ConnectivityIndex, ExactIndex, SketchIndex};

/// Which [`ConnectivityIndex`] implementation the partitioner uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexKind {
    /// Bloom/MinHash sketches with memory fixed by the budget (the
    /// production configuration).
    #[default]
    Sketched,
    /// Exact per-partition hash maps — unbounded memory, used as the
    /// reference implementation and for small inputs.
    Exact,
}

/// Configuration of the streaming partitioner.
#[derive(Clone, Debug)]
pub struct LowMemConfig {
    /// Memory budget for sketches, the transpose buffer and the
    /// re-streaming buffer.
    pub budget: MemoryBudget,
    /// Connectivity index implementation.
    pub index: IndexKind,
    /// Workload-imbalance weight `α`. `None` uses the FENNEL-derived
    /// starting point `√p · |E| / √|V|`, like `hyperpraw-core`.
    pub alpha: Option<f64>,
    /// Number of lowest-confidence assignments revisited after the pass.
    /// `None` sizes the buffer from the budget
    /// ([`SketchPlan::restream_capacity`]); `Some(0)` disables
    /// re-streaming. Whatever the entry count, the buffer's memory is
    /// additionally capped by [`SketchPlan::restream_bytes`] so
    /// high-degree doubts cannot blow the budget.
    pub restream_capacity: Option<usize>,
    /// When `true`, a preliminary pass seeds the index with a round-robin
    /// assignment of every vertex, reproducing the *restreaming* semantics
    /// of `hyperpraw-core`'s first stream (each decision sees every other
    /// vertex placed somewhere). When `false`, the partitioner is a true
    /// one-pass streamer: unseen vertices contribute no connectivity.
    ///
    /// Requires an index that supports
    /// [`ConnectivityIndex::forget`] ([`IndexKind::Exact`]): a Bloom
    /// sketch cannot remove the prior, which would silently degrade the
    /// counts towards uniform — [`LowMemPartitioner::new`] rejects the
    /// combination.
    pub round_robin_prior: bool,
    /// Seed of the MinHash hash family.
    pub seed: u64,
}

impl Default for LowMemConfig {
    fn default() -> Self {
        Self {
            budget: MemoryBudget::default(),
            index: IndexKind::Sketched,
            alpha: None,
            restream_capacity: None,
            round_robin_prior: false,
            seed: 0,
        }
    }
}

/// The output of a streaming-partitioner run.
#[derive(Clone, Debug)]
pub struct LowMemResult {
    /// The vertex-to-partition assignment.
    pub partition: Partition,
    /// The `α` used by the value function.
    pub alpha: f64,
    /// Number of buffered low-confidence assignments revisited.
    pub restreamed: usize,
    /// How many of the revisited assignments changed partition.
    pub moved_in_restream: usize,
    /// Heap bytes held by the connectivity index at the end of the run.
    pub index_memory_bytes: usize,
    /// The sketch sizing derived from the budget.
    pub plan: SketchPlan,
}

/// A buffered low-confidence assignment awaiting the re-streaming pass.
#[derive(Clone, Debug)]
struct Doubt {
    confidence: f64,
    vertex: VertexId,
    weight: f64,
    nets: Vec<HyperedgeId>,
}

impl PartialEq for Doubt {
    fn eq(&self, other: &Self) -> bool {
        self.confidence == other.confidence && self.vertex == other.vertex
    }
}

impl Eq for Doubt {}

impl PartialOrd for Doubt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Doubt {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by confidence: the most confident buffered entry is
        // evicted first, keeping the k *least* confident. Vertex id breaks
        // ties deterministically.
        self.confidence
            .total_cmp(&other.confidence)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl Doubt {
    /// Approximate heap bytes held by one buffered entry.
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nets.capacity() * std::mem::size_of::<HyperedgeId>()
    }
}

/// The memory-bounded streaming partitioner.
///
/// One greedy pass assigns each incoming `(vertex, nets)` record to the
/// partition maximising HyperPRAW's architecture-aware value function
/// ([`hyperpraw_core::value::best_partition_with_margin`]): the
/// neighbour-partition counts `X_j(v)` are replaced by *net-connectivity*
/// counts answered by a [`ConnectivityIndex`] in budgeted memory, while the
/// cost matrix, `α`-weighted balance term and tie-breaking are exactly
/// `hyperpraw-core`'s. An optional bounded buffer collects the `k`
/// lowest-confidence assignments (smallest value margin, similarity-
/// adjusted when the index sketches one) and revisits them once at the end
/// against the final connectivity state.
#[derive(Clone, Debug)]
pub struct LowMemPartitioner {
    config: LowMemConfig,
    cost: CostMatrix,
}

impl LowMemPartitioner {
    /// Creates a partitioner; the number of partitions equals the size of
    /// the cost matrix, one per compute unit of the target machine.
    ///
    /// # Panics
    ///
    /// Panics when the cost matrix is empty, or when
    /// [`LowMemConfig::round_robin_prior`] is combined with
    /// [`IndexKind::Sketched`] (the sketch cannot forget the prior).
    pub fn new(config: LowMemConfig, cost: CostMatrix) -> Self {
        assert!(
            cost.num_units() > 0,
            "cost matrix must cover at least one unit"
        );
        assert!(
            !(config.round_robin_prior && config.index == IndexKind::Sketched),
            "round_robin_prior requires an index that can forget assignments; use IndexKind::Exact"
        );
        Self { config, cost }
    }

    /// The architecture-oblivious variant (uniform cost matrix).
    pub fn basic(config: LowMemConfig, p: u32) -> Self {
        Self::new(config, CostMatrix::uniform(p as usize))
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// The configuration in use.
    pub fn config(&self) -> &LowMemConfig {
        &self.config
    }

    /// Partitions the hypergraph delivered by `stream`.
    ///
    /// With [`LowMemConfig::round_robin_prior`] the stream is read twice
    /// (prior + decision pass), otherwise once; either way the peak sketch
    /// memory is fixed by the budget's [`SketchPlan`].
    pub fn partition<S: VertexStream>(&self, stream: &mut S) -> IoResult<LowMemResult> {
        let p = self.cost.num_units();
        let n = stream.num_vertices();
        let e = stream.num_nets();
        let plan = self.config.budget.plan(p, e);
        let alpha = self
            .config
            .alpha
            .unwrap_or_else(|| HyperPrawConfig::fennel_alpha(p as u32, n, e));

        let mut index: Box<dyn ConnectivityIndex> = match self.config.index {
            IndexKind::Exact => Box::new(ExactIndex::new(p)),
            IndexKind::Sketched => Box::new(SketchIndex::new(p, &plan, self.config.seed)),
        };

        let mut assignment: Vec<u32> = vec![0; n];
        let mut loads = vec![0.0f64; p];
        // Same balance target as hyperpraw-core: an equal share of the
        // total vertex weight. Streams that cannot report it (none of the
        // bundled ones) fall back to unit weights.
        let total_weight = stream.total_vertex_weight().unwrap_or(n as f64);
        let expected_load = (total_weight / p as f64).max(f64::MIN_POSITIVE);
        let expected = vec![expected_load; p];

        let mut record = VertexRecord::default();

        // Optional prior pass: seed the index with the round-robin start
        // Algorithm 1 uses, so the decision pass sees restreaming-style
        // connectivity for not-yet-visited vertices.
        if self.config.round_robin_prior {
            while stream.next_into(&mut record)? {
                let part = record.vertex % p as u32;
                index.record(&record.nets, part);
                assignment[record.vertex as usize] = part;
                loads[part as usize] += record.weight;
            }
            stream.reset()?;
        }

        let capacity = self
            .config
            .restream_capacity
            .unwrap_or(plan.restream_capacity);
        // The plan's entry count assumes average-degree vertices; the byte
        // bound is what keeps the buffer inside the budget when the
        // low-confidence entries happen to be high-degree hubs.
        let byte_bound = plan.restream_bytes;
        let mut doubt_bytes = 0usize;
        let mut doubts: BinaryHeap<Doubt> = BinaryHeap::new();

        let mut counts: Vec<u32> = Vec::with_capacity(p);
        while stream.next_into(&mut record)? {
            let v = record.vertex;
            let w = record.weight;
            if self.config.round_robin_prior {
                let prior_part = assignment[v as usize];
                loads[prior_part as usize] -= w;
                index.forget(&record.nets, prior_part);
            }
            index.connectivity(&record.nets, &mut counts);
            let scored = best_partition_with_margin(&counts, &self.cost, alpha, &loads, &expected);
            assignment[v as usize] = scored.part;
            loads[scored.part as usize] += w;
            index.record(&record.nets, scored.part);

            if capacity > 0 {
                // Prefilter: the similarity discount keeps confidence in
                // [margin/2, margin], so once the heap is full an entry
                // whose floor already exceeds the heap's maximum would be
                // evicted straight back out — skip the similarity estimate
                // and the net-list clone entirely.
                let hopeless = doubts.len() >= capacity
                    && doubts
                        .peek()
                        .is_some_and(|max| 0.5 * scored.margin > max.confidence);
                if !hopeless {
                    // Confidence: the value margin, discounted when the
                    // index can tell that the chosen partition's net set
                    // has little overlap with the vertex's nets.
                    let confidence = match index.similarity(&record.nets, scored.part) {
                        Some(similarity) => scored.margin * (0.5 + 0.5 * similarity),
                        None => scored.margin,
                    };
                    let doubt = Doubt {
                        confidence,
                        vertex: v,
                        weight: w,
                        nets: record.nets.clone(),
                    };
                    doubt_bytes += doubt.heap_bytes();
                    doubts.push(doubt);
                    while doubts.len() > capacity || (doubt_bytes > byte_bound && doubts.len() > 1)
                    {
                        if let Some(evicted) = doubts.pop() {
                            doubt_bytes -= evicted.heap_bytes();
                        }
                    }
                }
            }
        }

        // Re-streaming pass: revisit the buffered doubts against the final
        // connectivity state, in vertex order for determinism.
        let mut revisit: Vec<Doubt> = doubts.into_vec();
        revisit.sort_unstable_by_key(|d| d.vertex);
        let restreamed = revisit.len();
        let mut moved_in_restream = 0usize;
        for doubt in revisit {
            let v = doubt.vertex;
            let old = assignment[v as usize];
            loads[old as usize] -= doubt.weight;
            index.forget(&doubt.nets, old);
            // For a sketched index `forget` is a no-op, so `counts[old]`
            // still contains this vertex's own recorded nets. That is a
            // deliberate bias towards *staying*: Bloom filters cannot
            // separate the self-hit from genuine neighbours, and
            // subtracting an estimate would erase real connectivity and
            // force spurious moves. A revisited vertex therefore only
            // moves when another partition's connectivity genuinely
            // dominates.
            index.connectivity(&doubt.nets, &mut counts);
            let scored = best_partition_with_margin(&counts, &self.cost, alpha, &loads, &expected);
            assignment[v as usize] = scored.part;
            loads[scored.part as usize] += doubt.weight;
            index.record(&doubt.nets, scored.part);
            if scored.part != old {
                moved_in_restream += 1;
            }
        }

        let partition = Partition::from_assignment(assignment, p as u32)
            .expect("streaming assignment covers every vertex");
        Ok(LowMemResult {
            partition,
            alpha,
            restreamed,
            moved_in_restream,
            index_memory_bytes: index.memory_bytes(),
            plan,
        })
    }

    /// Convenience wrapper partitioning an in-memory hypergraph through
    /// [`hyperpraw_hypergraph::io::stream::InMemoryVertexStream`].
    pub fn partition_hypergraph(&self, hg: &Hypergraph) -> LowMemResult {
        let mut stream = hyperpraw_hypergraph::io::stream::InMemoryVertexStream::new(hg);
        self.partition(&mut stream)
            .expect("in-memory streams cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::metrics;

    fn config(index: IndexKind) -> LowMemConfig {
        LowMemConfig {
            index,
            ..LowMemConfig::default()
        }
    }

    #[test]
    fn produces_complete_valid_partitions() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        for kind in [IndexKind::Exact, IndexKind::Sketched] {
            let result = LowMemPartitioner::basic(config(kind), 8).partition_hypergraph(&hg);
            assert_eq!(result.partition.num_parts(), 8);
            assert_eq!(result.partition.num_vertices(), 500);
            assert!(result.partition.assignment().iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn beats_round_robin_on_cut_quality() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let result =
            LowMemPartitioner::basic(config(IndexKind::Sketched), 4).partition_hypergraph(&hg);
        let rr = Partition::round_robin(hg.num_vertices(), 4);
        assert!(
            metrics::soed(&hg, &result.partition) < metrics::soed(&hg, &rr),
            "streaming partitioner should beat round robin"
        );
    }

    #[test]
    fn is_deterministic() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 6));
        let partitioner = LowMemPartitioner::basic(config(IndexKind::Sketched), 6);
        let a = partitioner.partition_hypergraph(&hg);
        let b = partitioner.partition_hypergraph(&hg);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn restream_buffer_is_bounded_and_improves_or_keeps_quality() {
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let without = LowMemPartitioner::basic(
            LowMemConfig {
                restream_capacity: Some(0),
                ..config(IndexKind::Exact)
            },
            6,
        )
        .partition_hypergraph(&hg);
        let with = LowMemPartitioner::basic(
            LowMemConfig {
                restream_capacity: Some(64),
                ..config(IndexKind::Exact)
            },
            6,
        )
        .partition_hypergraph(&hg);
        assert_eq!(without.restreamed, 0);
        assert!(with.restreamed <= 64);
        let s_without = metrics::soed(&hg, &without.partition);
        let s_with = metrics::soed(&hg, &with.partition);
        assert!(
            s_with as f64 <= s_without as f64 * 1.05,
            "restreaming should not degrade quality materially ({s_with} vs {s_without})"
        );
    }

    #[test]
    fn restream_buffer_is_byte_bounded_on_high_degree_vertices() {
        // 48 vertices each incident to 300 nets: one buffered doubt holds
        // ~1.2 KiB of net ids, so a 64 KiB budget (restream share ~3 KiB)
        // must keep only a couple of doubts even though the entry-count
        // capacity alone would admit dozens.
        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(48);
        for _ in 0..300 {
            b.add_hyperedge(0..48u32);
        }
        let hg = b.build();
        let result = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::bytes(64 << 10),
                ..config(IndexKind::Exact)
            },
            4,
        )
        .partition_hypergraph(&hg);
        let plan = result.plan;
        let per_doubt_bytes = 300 * std::mem::size_of::<u32>();
        assert!(
            result.restreamed <= plan.restream_bytes / per_doubt_bytes + 1,
            "{} doubts of ~{per_doubt_bytes} B exceed the {} B restream share",
            result.restreamed,
            plan.restream_bytes
        );
        assert!(result.restreamed < plan.restream_capacity);
    }

    #[test]
    #[should_panic(expected = "round_robin_prior requires")]
    fn prior_with_sketched_index_is_rejected() {
        LowMemPartitioner::basic(
            LowMemConfig {
                round_robin_prior: true,
                index: IndexKind::Sketched,
                ..LowMemConfig::default()
            },
            4,
        );
    }

    #[test]
    fn sketched_restream_does_not_degrade_quality() {
        // The sketched index cannot forget, so the revisit pass sees the
        // vertex's own self-hit; the stay-bias must keep quality at least
        // as good as disabling the buffer outright.
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let run = |restream: usize| {
            LowMemPartitioner::basic(
                LowMemConfig {
                    restream_capacity: Some(restream),
                    ..config(IndexKind::Sketched)
                },
                6,
            )
            .partition_hypergraph(&hg)
        };
        let without = run(0);
        let with = run(128);
        let s_without = metrics::soed(&hg, &without.partition);
        let s_with = metrics::soed(&hg, &with.partition);
        assert!(
            s_with as f64 <= s_without as f64 * 1.05,
            "sketched restream degraded SOED: {s_with} vs {s_without}"
        );
    }

    #[test]
    fn weighted_streams_balance_by_weight_not_count() {
        // 40 heavy vertices (weight 9) and 40 light ones (weight 1) in two
        // partitions: weight-aware balancing must not put all heavy
        // vertices on one side.
        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(80);
        for v in 0..40u32 {
            b.add_hyperedge([v, v + 40]);
            b.set_vertex_weight(v, 9.0);
        }
        let hg = b.build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Exact), 2).partition_hypergraph(&hg);
        let loads = result.partition.part_loads(&hg).unwrap();
        let total: f64 = loads.iter().sum();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / (total / 2.0) < 1.5,
            "weighted loads unbalanced: {loads:?}"
        );
    }

    #[test]
    fn sketched_index_memory_follows_the_budget() {
        let hg = mesh_hypergraph(&MeshConfig::new(2_000, 8));
        let small = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::bytes(32 << 10),
                ..config(IndexKind::Sketched)
            },
            8,
        )
        .partition_hypergraph(&hg);
        let large = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::mebibytes(8),
                ..config(IndexKind::Sketched)
            },
            8,
        )
        .partition_hypergraph(&hg);
        assert!(small.index_memory_bytes < large.index_memory_bytes);
        assert!(small.index_memory_bytes <= 32 << 10);
    }

    #[test]
    fn zero_vertices_and_isolated_vertices_are_handled() {
        let empty = hyperpraw_hypergraph::HypergraphBuilder::new(0).build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Exact), 2).partition_hypergraph(&empty);
        assert_eq!(result.partition.num_vertices(), 0);

        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1]);
        let sparse = b.build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Sketched), 2).partition_hypergraph(&sparse);
        assert_eq!(result.partition.num_vertices(), 5);
    }
}
