//! The memory-bounded streaming partitioner — a thin instantiation of
//! `hyperpraw-core`'s generic restreaming engine: any
//! [`VertexStream`] as the vertex source × an [`IndexProvider`] over
//! budgeted connectivity state × the sequential or bulk-synchronous
//! execution strategy.

use hyperpraw_core::engine::{
    DoubtConfig, Engine, EngineConfig, InitialAssignment, NoCommCost, StreamSource,
};
use hyperpraw_core::{CostMatrix, HyperPrawConfig, ParallelMode};
use hyperpraw_hypergraph::io::stream::VertexStream;
use hyperpraw_hypergraph::io::IoResult;
use hyperpraw_hypergraph::{Hypergraph, Partition};

use crate::budget::{MemoryBudget, SketchPlan};
use crate::index::{ExactIndex, SketchIndex};
use crate::provider::IndexProvider;

/// Which [`crate::ConnectivityIndex`] implementation the partitioner uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexKind {
    /// Bloom/MinHash sketches with memory fixed by the budget (the
    /// production configuration).
    #[default]
    Sketched,
    /// Exact per-partition hash maps — unbounded memory, used as the
    /// reference implementation and for small inputs.
    Exact,
}

impl IndexKind {
    /// Name as printed in reports and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Sketched => "sketched",
            IndexKind::Exact => "exact",
        }
    }
}

/// Configuration of the streaming partitioner.
#[derive(Clone, Debug)]
pub struct LowMemConfig {
    /// Memory budget for sketches, the transpose buffer and the
    /// re-streaming buffer.
    pub budget: MemoryBudget,
    /// Connectivity index implementation.
    pub index: IndexKind,
    /// Workload-imbalance weight `α`. `None` uses the FENNEL-derived
    /// starting point `√p · |E| / √|V|`, like `hyperpraw-core`.
    pub alpha: Option<f64>,
    /// Number of lowest-confidence assignments revisited after the final
    /// pass. `None` sizes the buffer from the budget
    /// ([`SketchPlan::restream_capacity`]); `Some(0)` disables
    /// re-streaming. Whatever the entry count, the buffer's memory is
    /// additionally capped by [`SketchPlan::restream_bytes`] so
    /// high-degree doubts cannot blow the budget.
    pub restream_capacity: Option<usize>,
    /// When `true`, a preliminary pass seeds the index with a round-robin
    /// assignment of every vertex, reproducing the *restreaming* semantics
    /// of `hyperpraw-core`'s first stream (each decision sees every other
    /// vertex placed somewhere). When `false`, the partitioner is a true
    /// one-pass streamer: unseen vertices contribute no connectivity.
    ///
    /// Requires an index that supports
    /// [`crate::ConnectivityIndex::forget`] ([`IndexKind::Exact`]): a Bloom
    /// sketch cannot remove the prior, which would silently degrade the
    /// counts towards uniform — [`LowMemPartitioner::new`] rejects the
    /// combination.
    pub round_robin_prior: bool,
    /// Number of streaming passes over the input. `1` is the classic
    /// one-pass regime; larger values restream out-of-core (each pass
    /// re-reads the vertex stream and re-places every vertex against the
    /// index), stopping early when a pass moves nothing.
    pub passes: usize,
    /// Rebuild the sketches at the start of every pass after the first,
    /// shedding the staleness a non-forgetting index accumulates when
    /// vertices move (the Taşyaran-style rebuild). Ignored by
    /// [`IndexKind::Exact`], whose state is never stale.
    pub rebuild_sketches: bool,
    /// Worker threads for the parallel execution strategies. `1` streams
    /// sequentially; larger values score vertices in parallel against the
    /// shared index — parallel out-of-core partitioning.
    pub threads: usize,
    /// Vertices per synchronisation window when `threads > 1` and
    /// [`LowMemConfig::mode`] is [`ParallelMode::Bsp`]; ignored by
    /// [`ParallelMode::WorkStealing`].
    pub sync_interval: usize,
    /// How the worker threads divide the stream: deterministic
    /// bulk-synchronous windows over a frozen index snapshot
    /// ([`ParallelMode::Bsp`], the default), or lock-free work stealing
    /// against live shared loads ([`ParallelMode::WorkStealing`], faster
    /// but non-deterministic above one thread).
    pub mode: ParallelMode,
    /// Seed of the MinHash hash family.
    pub seed: u64,
}

impl Default for LowMemConfig {
    fn default() -> Self {
        Self {
            budget: MemoryBudget::default(),
            index: IndexKind::Sketched,
            alpha: None,
            restream_capacity: None,
            round_robin_prior: false,
            passes: 1,
            rebuild_sketches: false,
            threads: 1,
            sync_interval: 4096,
            mode: ParallelMode::Bsp,
            seed: 0,
        }
    }
}

impl LowMemConfig {
    /// Validates parameter ranges, returning a description of the first
    /// problem found — the same conditions [`LowMemPartitioner::new`]
    /// panics on, surfaced as a `Result` for callers (the facade job API)
    /// that report configuration errors instead of aborting.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget.bytes == 0 {
            return Err("memory budget must be at least one byte".into());
        }
        if self.passes == 0 {
            return Err("need at least one streaming pass".into());
        }
        if self.threads == 0 {
            return Err("need at least one worker thread".into());
        }
        if self.sync_interval == 0 {
            return Err("synchronisation interval must be at least 1 vertex".into());
        }
        if self.round_robin_prior && self.index == IndexKind::Sketched {
            return Err(
                "round_robin_prior requires an index that can forget assignments; \
                 use IndexKind::Exact"
                    .into(),
            );
        }
        if let Some(a) = self.alpha {
            if !(a.is_finite() && a > 0.0) {
                return Err("alpha must be positive and finite".into());
            }
        }
        Ok(())
    }
}

/// The output of a streaming-partitioner run.
#[derive(Clone, Debug)]
pub struct LowMemResult {
    /// The vertex-to-partition assignment.
    pub partition: Partition,
    /// The `α` used by the value function.
    pub alpha: f64,
    /// Number of streaming passes executed (≤ [`LowMemConfig::passes`];
    /// fewer when a pass reaches a fixed point).
    pub passes: usize,
    /// Number of buffered low-confidence assignments revisited.
    pub restreamed: usize,
    /// How many of the revisited assignments changed partition.
    pub moved_in_restream: usize,
    /// Heap bytes held by the connectivity index at the end of the run.
    pub index_memory_bytes: usize,
    /// The sketch sizing derived from the budget.
    pub plan: SketchPlan,
}

/// The memory-bounded streaming partitioner.
///
/// Each incoming `(vertex, nets)` record is assigned to the partition
/// maximising HyperPRAW's architecture-aware value function: the
/// neighbour-partition counts `X_j(v)` are replaced by *net-connectivity*
/// counts answered by a [`crate::ConnectivityIndex`] in budgeted memory,
/// while the cost matrix, `α`-weighted balance term and tie-breaking are
/// exactly `hyperpraw-core`'s — the whole loop *is*
/// [`hyperpraw_core::engine::Engine::run`], instantiated with this
/// crate's [`IndexProvider`]. An optional bounded buffer collects the `k`
/// lowest-confidence assignments (smallest value margin, similarity-
/// adjusted when the index sketches one) and revisits them once at the end
/// against the final connectivity state; optional extra passes restream
/// the whole input out-of-core, optionally rebuilding the sketches
/// between passes; optional worker threads score synchronisation windows
/// in parallel (bulk-synchronous out-of-core partitioning).
#[derive(Clone, Debug)]
pub struct LowMemPartitioner {
    config: LowMemConfig,
    cost: CostMatrix,
}

impl LowMemPartitioner {
    /// Creates a partitioner; the number of partitions equals the size of
    /// the cost matrix, one per compute unit of the target machine.
    ///
    /// # Panics
    ///
    /// Panics when the cost matrix is empty, when
    /// [`LowMemConfig::round_robin_prior`] is combined with
    /// [`IndexKind::Sketched`] (the sketch cannot forget the prior), or
    /// when `passes` or `threads` is zero.
    pub fn new(config: LowMemConfig, cost: CostMatrix) -> Self {
        assert!(
            cost.num_units() > 0,
            "cost matrix must cover at least one unit"
        );
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid lowmem configuration: {e}"));
        Self { config, cost }
    }

    /// The architecture-oblivious variant (uniform cost matrix).
    pub fn basic(config: LowMemConfig, p: u32) -> Self {
        Self::new(config, CostMatrix::uniform(p as usize))
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// The configuration in use.
    pub fn config(&self) -> &LowMemConfig {
        &self.config
    }

    /// Partitions the hypergraph delivered by `stream`.
    ///
    /// The stream is read once per pass, plus once more when
    /// [`LowMemConfig::round_robin_prior`] seeds the index; either way the
    /// peak sketch memory is fixed by the budget's [`SketchPlan`].
    pub fn partition<S: VertexStream>(&self, stream: &mut S) -> IoResult<LowMemResult> {
        let p = self.cost.num_units();
        let n = stream.num_vertices();
        let e = stream.num_nets();
        // The double-buffered sketch rebuild holds two index copies during
        // rebuild passes; halve the per-copy sizing so the pair still fits
        // the budget.
        let rebuilding = self.config.rebuild_sketches
            && self.config.passes > 1
            && self.config.index == IndexKind::Sketched;
        let sizing = if rebuilding {
            MemoryBudget::bytes(self.config.budget.bytes / 2)
        } else {
            self.config.budget
        };
        let plan = sizing.plan(p, e);
        let alpha = self
            .config
            .alpha
            .unwrap_or_else(|| HyperPrawConfig::fennel_alpha(p as u32, n, e));

        let mut provider = IndexProvider::new(match self.config.index {
            IndexKind::Exact => Box::new(ExactIndex::new(p)),
            IndexKind::Sketched => Box::new(SketchIndex::new(p, &plan, self.config.seed)),
        });

        let mut engine_config = EngineConfig::streaming(Some(alpha), self.config.passes);
        engine_config.initial = if self.config.round_robin_prior {
            InitialAssignment::RoundRobin
        } else {
            InitialAssignment::Unassigned
        };
        engine_config.rebuild_between_passes = self.config.rebuild_sketches;
        engine_config.doubts = DoubtConfig {
            capacity: self
                .config
                .restream_capacity
                .unwrap_or(plan.restream_capacity),
            // The plan's entry count assumes average-degree vertices; the
            // byte bound is what keeps the buffer inside the budget when
            // the low-confidence entries happen to be high-degree hubs.
            byte_bound: plan.restream_bytes,
        };
        if self.config.threads > 1 {
            engine_config.strategy = self
                .config
                .mode
                .strategy(self.config.threads, self.config.sync_interval);
        }

        let run = Engine::new(engine_config).run(
            &self.cost,
            &mut StreamSource(stream),
            &mut provider,
            &mut NoCommCost,
        )?;
        Ok(LowMemResult {
            partition: run.partition,
            alpha,
            passes: run.iterations,
            restreamed: run.restreamed,
            moved_in_restream: run.moved_in_restream,
            index_memory_bytes: provider.memory_bytes(),
            plan,
        })
    }

    /// Convenience wrapper partitioning an in-memory hypergraph through
    /// [`hyperpraw_hypergraph::io::stream::InMemoryVertexStream`].
    pub fn partition_hypergraph(&self, hg: &Hypergraph) -> LowMemResult {
        let mut stream = hyperpraw_hypergraph::io::stream::InMemoryVertexStream::new(hg);
        self.partition(&mut stream)
            .expect("in-memory streams cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::metrics;

    fn config(index: IndexKind) -> LowMemConfig {
        LowMemConfig {
            index,
            ..LowMemConfig::default()
        }
    }

    #[test]
    fn produces_complete_valid_partitions() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        for kind in [IndexKind::Exact, IndexKind::Sketched] {
            let result = LowMemPartitioner::basic(config(kind), 8).partition_hypergraph(&hg);
            assert_eq!(result.partition.num_parts(), 8);
            assert_eq!(result.partition.num_vertices(), 500);
            assert!(result.partition.assignment().iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn beats_round_robin_on_cut_quality() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let result =
            LowMemPartitioner::basic(config(IndexKind::Sketched), 4).partition_hypergraph(&hg);
        let rr = Partition::round_robin(hg.num_vertices(), 4);
        assert!(
            metrics::soed(&hg, &result.partition) < metrics::soed(&hg, &rr),
            "streaming partitioner should beat round robin"
        );
    }

    #[test]
    fn is_deterministic() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 6));
        let partitioner = LowMemPartitioner::basic(config(IndexKind::Sketched), 6);
        let a = partitioner.partition_hypergraph(&hg);
        let b = partitioner.partition_hypergraph(&hg);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn restream_buffer_is_bounded_and_improves_or_keeps_quality() {
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let without = LowMemPartitioner::basic(
            LowMemConfig {
                restream_capacity: Some(0),
                ..config(IndexKind::Exact)
            },
            6,
        )
        .partition_hypergraph(&hg);
        let with = LowMemPartitioner::basic(
            LowMemConfig {
                restream_capacity: Some(64),
                ..config(IndexKind::Exact)
            },
            6,
        )
        .partition_hypergraph(&hg);
        assert_eq!(without.restreamed, 0);
        assert!(with.restreamed <= 64);
        let s_without = metrics::soed(&hg, &without.partition);
        let s_with = metrics::soed(&hg, &with.partition);
        assert!(
            s_with as f64 <= s_without as f64 * 1.05,
            "restreaming should not degrade quality materially ({s_with} vs {s_without})"
        );
    }

    #[test]
    fn restream_buffer_is_byte_bounded_on_high_degree_vertices() {
        // 48 vertices each incident to 300 nets: one buffered doubt holds
        // ~1.2 KiB of net ids, so a 64 KiB budget (restream share ~3 KiB)
        // must keep only a couple of doubts even though the entry-count
        // capacity alone would admit dozens.
        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(48);
        for _ in 0..300 {
            b.add_hyperedge(0..48u32);
        }
        let hg = b.build();
        let result = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::bytes(64 << 10),
                ..config(IndexKind::Exact)
            },
            4,
        )
        .partition_hypergraph(&hg);
        let plan = result.plan;
        let per_doubt_bytes = 300 * std::mem::size_of::<u32>();
        assert!(
            result.restreamed <= plan.restream_bytes / per_doubt_bytes + 1,
            "{} doubts of ~{per_doubt_bytes} B exceed the {} B restream share",
            result.restreamed,
            plan.restream_bytes
        );
        assert!(result.restreamed < plan.restream_capacity);
    }

    #[test]
    #[should_panic(expected = "round_robin_prior requires")]
    fn prior_with_sketched_index_is_rejected() {
        LowMemPartitioner::basic(
            LowMemConfig {
                round_robin_prior: true,
                index: IndexKind::Sketched,
                ..LowMemConfig::default()
            },
            4,
        );
    }

    #[test]
    fn sketched_restream_does_not_degrade_quality() {
        // The sketched index cannot forget, so the revisit pass sees the
        // vertex's own self-hit; the stay-bias must keep quality at least
        // as good as disabling the buffer outright.
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let run = |restream: usize| {
            LowMemPartitioner::basic(
                LowMemConfig {
                    restream_capacity: Some(restream),
                    ..config(IndexKind::Sketched)
                },
                6,
            )
            .partition_hypergraph(&hg)
        };
        let without = run(0);
        let with = run(128);
        let s_without = metrics::soed(&hg, &without.partition);
        let s_with = metrics::soed(&hg, &with.partition);
        assert!(
            s_with as f64 <= s_without as f64 * 1.05,
            "sketched restream degraded SOED: {s_with} vs {s_without}"
        );
    }

    #[test]
    fn weighted_streams_balance_by_weight_not_count() {
        // 40 heavy vertices (weight 9) and 40 light ones (weight 1) in two
        // partitions: weight-aware balancing must not put all heavy
        // vertices on one side.
        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(80);
        for v in 0..40u32 {
            b.add_hyperedge([v, v + 40]);
            b.set_vertex_weight(v, 9.0);
        }
        let hg = b.build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Exact), 2).partition_hypergraph(&hg);
        let loads = result.partition.part_loads(&hg).unwrap();
        let total: f64 = loads.iter().sum();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / (total / 2.0) < 1.5,
            "weighted loads unbalanced: {loads:?}"
        );
    }

    #[test]
    fn sketched_index_memory_follows_the_budget() {
        let hg = mesh_hypergraph(&MeshConfig::new(2_000, 8));
        let small = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::bytes(32 << 10),
                ..config(IndexKind::Sketched)
            },
            8,
        )
        .partition_hypergraph(&hg);
        let large = LowMemPartitioner::basic(
            LowMemConfig {
                budget: MemoryBudget::mebibytes(8),
                ..config(IndexKind::Sketched)
            },
            8,
        )
        .partition_hypergraph(&hg);
        assert!(small.index_memory_bytes < large.index_memory_bytes);
        assert!(small.index_memory_bytes <= 32 << 10);
    }

    #[test]
    fn zero_vertices_and_isolated_vertices_are_handled() {
        let empty = hyperpraw_hypergraph::HypergraphBuilder::new(0).build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Exact), 2).partition_hypergraph(&empty);
        assert_eq!(result.partition.num_vertices(), 0);

        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1]);
        let sparse = b.build();
        let result =
            LowMemPartitioner::basic(config(IndexKind::Sketched), 2).partition_hypergraph(&sparse);
        assert_eq!(result.partition.num_vertices(), 5);
    }

    #[test]
    fn multi_pass_restreaming_does_not_degrade_quality() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let run = |passes: usize, rebuild: bool| {
            LowMemPartitioner::basic(
                LowMemConfig {
                    passes,
                    rebuild_sketches: rebuild,
                    restream_capacity: Some(0),
                    ..config(IndexKind::Sketched)
                },
                6,
            )
            .partition_hypergraph(&hg)
        };
        let one = run(1, false);
        let rebuilt = run(3, true);
        assert!(rebuilt.passes >= 1 && rebuilt.passes <= 3);
        let s_one = metrics::soed(&hg, &one.partition) as f64;
        let s_rebuilt = metrics::soed(&hg, &rebuilt.partition) as f64;
        assert!(
            s_rebuilt <= s_one * 1.05,
            "rebuilt restreaming degraded SOED: {s_rebuilt} vs {s_one}"
        );
    }

    #[test]
    fn bsp_threads_produce_valid_deterministic_partitions() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        let run = || {
            LowMemPartitioner::basic(
                LowMemConfig {
                    threads: 4,
                    sync_interval: 128,
                    ..config(IndexKind::Sketched)
                },
                6,
            )
            .partition_hypergraph(&hg)
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.partition, b.partition,
            "BSP streaming must be deterministic"
        );
        assert_eq!(a.partition.num_vertices(), 900);
        let rr = Partition::round_robin(hg.num_vertices(), 6);
        assert!(metrics::soed(&hg, &a.partition) < metrics::soed(&hg, &rr));
    }

    #[test]
    fn work_stealing_threads_produce_valid_partitions() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        for threads in [2usize, 8] {
            // Two passes: a racing first pass over a cold sketch index may
            // land anywhere, but the restream scores against a populated
            // index, so quality beats round-robin for every interleaving.
            let result = LowMemPartitioner::basic(
                LowMemConfig {
                    threads,
                    passes: 2,
                    mode: ParallelMode::WorkStealing,
                    ..config(IndexKind::Sketched)
                },
                6,
            )
            .partition_hypergraph(&hg);
            assert_eq!(result.partition.num_vertices(), 900);
            assert_eq!(result.partition.num_parts(), 6);
            assert!(result.partition.assignment().iter().all(|&x| x < 6));
            let rr = Partition::round_robin(hg.num_vertices(), 6);
            assert!(metrics::soed(&hg, &result.partition) < metrics::soed(&hg, &rr));
        }
    }

    #[test]
    fn single_stealing_thread_matches_the_sequential_stream() {
        // `threads: 1` never engages a parallel strategy, so the mode must
        // be irrelevant; pin the work-stealing config to the sequential
        // result bit for bit.
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let sequential =
            LowMemPartitioner::basic(config(IndexKind::Sketched), 6).partition_hypergraph(&hg);
        let stealing = LowMemPartitioner::basic(
            LowMemConfig {
                mode: ParallelMode::WorkStealing,
                ..config(IndexKind::Sketched)
            },
            6,
        )
        .partition_hypergraph(&hg);
        assert_eq!(sequential.partition, stealing.partition);
    }

    #[test]
    #[should_panic(expected = "at least one streaming pass")]
    fn zero_passes_is_rejected() {
        LowMemPartitioner::basic(
            LowMemConfig {
                passes: 0,
                ..LowMemConfig::default()
            },
            4,
        );
    }
}
