//! Probabilistic set sketches: Bloom filters and MinHash signatures.
//!
//! Both sketch the *net set* of a partition — the ids of hyperedges with at
//! least one pin assigned to it. The Bloom filter answers "is net `e`
//! connected to this partition?" with no false negatives and a bounded
//! false-positive rate; the MinHash signature estimates the Jaccard
//! similarity between net sets, which the partitioner uses as a confidence
//! signal for its re-streaming buffer.

/// SplitMix64 finaliser: a cheap, well-mixed 64-bit hash.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size Bloom filter over `u64` items using double hashing.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    words: Vec<u64>,
    num_bits: usize,
    num_hashes: usize,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits (rounded up to whole 64-bit
    /// words, minimum 64) probed by `num_hashes` hash functions.
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        let words = num_bits.max(64).div_ceil(64);
        Self {
            words: vec![0; words],
            num_bits: words * 64,
            num_hashes: num_hashes.clamp(1, 16),
            inserted: 0,
        }
    }

    /// Double-hashing probe sequence: bit index of probe `i`. The stride
    /// is forced odd so all probes stay distinct modulo powers of two and
    /// the second hash is never zero.
    #[inline]
    fn probe_bit(h1: u64, h2: u64, i: u64, bits: u64) -> usize {
        (h1.wrapping_add(i.wrapping_mul(h2)) % bits) as usize
    }

    #[inline]
    fn hashes(item: u64) -> (u64, u64) {
        (mix64(item), mix64(item ^ 0xA076_1D64_78BD_642F) | 1)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        let (h1, h2) = Self::hashes(item);
        let bits = self.num_bits as u64;
        for i in 0..self.num_hashes as u64 {
            let bit = Self::probe_bit(h1, h2, i, bits);
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership: `false` is always correct, `true` may be a false
    /// positive.
    pub fn contains(&self, item: u64) -> bool {
        let (h1, h2) = Self::hashes(item);
        let bits = self.num_bits as u64;
        (0..self.num_hashes as u64).all(|i| {
            let bit = Self::probe_bit(h1, h2, i, bits);
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of `insert` calls so far (not deduplicated).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Empties the filter in place, keeping its size and hash family —
    /// the staleness-shedding rebuild between restreaming passes.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Heap bytes held by the bit array.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Fraction of set bits — a direct saturation measure.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.num_bits as f64
    }
}

/// A MinHash signature estimating Jaccard similarity between sets of `u64`
/// items.
#[derive(Clone, Debug)]
pub struct MinHashSketch {
    signature: Vec<u64>,
    seed: u64,
}

impl MinHashSketch {
    /// Creates an empty sketch with `permutations` hash permutations, all
    /// derived from `seed`.
    pub fn new(permutations: usize, seed: u64) -> Self {
        Self {
            signature: vec![u64::MAX; permutations.max(1)],
            seed,
        }
    }

    #[inline]
    fn hash(&self, slot: usize, item: u64) -> u64 {
        mix64(item ^ mix64(self.seed ^ slot as u64))
    }

    /// Folds an item into the signature.
    pub fn insert(&mut self, item: u64) {
        for slot in 0..self.signature.len() {
            let h = self.hash(slot, item);
            if h < self.signature[slot] {
                self.signature[slot] = h;
            }
        }
    }

    /// Empties the signature in place, keeping its seed and permutation
    /// count — the staleness-shedding rebuild between restreaming passes.
    pub fn clear(&mut self) {
        self.signature.iter_mut().for_each(|s| *s = u64::MAX);
    }

    /// Estimated Jaccard similarity to another sketch built with the same
    /// seed and permutation count.
    pub fn jaccard(&self, other: &MinHashSketch) -> f64 {
        assert_eq!(self.signature.len(), other.signature.len());
        assert_eq!(
            self.seed, other.seed,
            "sketches use different hash families"
        );
        let matches = self
            .signature
            .iter()
            .zip(&other.signature)
            .filter(|(a, b)| a == b && **a != u64::MAX)
            .count();
        matches as f64 / self.signature.len() as f64
    }

    /// Builds the signature of a transient item set using this sketch's
    /// hash family (so it is comparable through [`MinHashSketch::jaccard`]).
    pub fn signature_of(&self, items: impl IntoIterator<Item = u64>) -> MinHashSketch {
        let mut sig = MinHashSketch::new(self.signature.len(), self.seed);
        for item in items {
            sig.insert(item);
        }
        sig
    }

    /// Estimated Jaccard similarity between this sketch's set and a
    /// transient item set, without materializing the transient signature —
    /// equivalent to `self.jaccard(&self.signature_of(items))` but
    /// allocation-free, for callers on a per-vertex hot path.
    pub fn jaccard_of_items<I>(&self, items: I) -> f64
    where
        I: Iterator<Item = u64> + Clone,
    {
        let mut matches = 0usize;
        for (slot, &sig) in self.signature.iter().enumerate() {
            if sig == u64::MAX {
                continue;
            }
            let mut min = u64::MAX;
            for item in items.clone() {
                min = min.min(self.hash(slot, item));
            }
            if min == sig {
                matches += 1;
            }
        }
        matches as f64 / self.signature.len() as f64
    }

    /// Heap bytes held by the signature.
    pub fn memory_bytes(&self) -> usize {
        self.signature.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bloom = BloomFilter::new(1 << 12, 4);
        for x in (0u64..500).map(|i| i * 7 + 1) {
            bloom.insert(x);
        }
        for x in (0u64..500).map(|i| i * 7 + 1) {
            assert!(bloom.contains(x));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_bounded_when_sized_sanely() {
        // 4096 bits, 3 hashes, 300 items -> theoretical FPR ~1.1%.
        let mut bloom = BloomFilter::new(1 << 12, 3);
        for x in 0u64..300 {
            bloom.insert(x);
        }
        let false_positives = (10_000u64..30_000).filter(|&x| bloom.contains(x)).count();
        let rate = false_positives as f64 / 20_000.0;
        assert!(rate < 0.05, "false positive rate {rate} too high");
        assert!(bloom.fill_ratio() < 0.5);
    }

    #[test]
    fn tiny_bloom_saturates_but_stays_correct() {
        let mut bloom = BloomFilter::new(64, 2);
        for x in 0u64..10_000 {
            bloom.insert(x);
        }
        assert!(bloom.contains(42));
        assert!(bloom.fill_ratio() > 0.99);
        assert_eq!(bloom.inserted(), 10_000);
    }

    #[test]
    fn minhash_estimates_jaccard_similarity() {
        let reference = MinHashSketch::new(128, 9);
        let a = reference.signature_of(0u64..1000);
        let b = reference.signature_of(500u64..1500);
        let c = reference.signature_of(5000u64..6000);
        // True Jaccard(a, b) = 500/1500 = 1/3; (a, c) = 0.
        let ab = a.jaccard(&b);
        assert!((ab - 1.0 / 3.0).abs() < 0.15, "estimate {ab}");
        assert!(a.jaccard(&c) < 0.1);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_items_matches_the_materialized_signature() {
        let mut reference = MinHashSketch::new(64, 3);
        for item in 0u64..800 {
            reference.insert(item);
        }
        for (lo, hi) in [(0u64, 800u64), (400, 1200), (5000, 5100), (0, 0)] {
            let materialized = reference.jaccard(&reference.signature_of(lo..hi));
            let streamed = reference.jaccard_of_items(lo..hi);
            assert_eq!(materialized, streamed, "range {lo}..{hi}");
        }
    }

    #[test]
    fn empty_sketches_have_zero_similarity() {
        let a = MinHashSketch::new(16, 1);
        let b = MinHashSketch::new(16, 1);
        assert_eq!(a.jaccard(&b), 0.0);
    }
}
