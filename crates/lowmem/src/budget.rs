//! The memory budget and its division into concrete sketch sizes.

use std::fmt;

/// A byte budget for everything the streaming partitioner keeps in memory
/// *besides* the O(|V|) output state (the assignment itself and, for
/// weighted inputs, the vertex weights), which is inherent to producing a
/// partition at all.
///
/// The budget covers the transpose load buffer of the on-disk vertex
/// stream, the per-partition connectivity sketches and the bounded
/// re-streaming buffer. [`MemoryBudget::plan`] turns it into concrete
/// sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Total sketch-side bytes available.
    pub bytes: usize,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::mebibytes(64)
    }
}

impl MemoryBudget {
    /// Minimum workable budget: one 64-bit Bloom word per partition plus a
    /// tiny load buffer.
    pub const MIN_BYTES: usize = 4 << 10;

    /// A budget of `bytes` bytes (clamped up to [`MemoryBudget::MIN_BYTES`]).
    pub fn bytes(bytes: usize) -> Self {
        Self {
            bytes: bytes.max(Self::MIN_BYTES),
        }
    }

    /// A budget of `mib` mebibytes.
    pub fn mebibytes(mib: usize) -> Self {
        Self::bytes(mib << 20)
    }

    /// Splits the budget into concrete sketch sizes for `num_parts`
    /// partitions of a hypergraph with (approximately) `num_nets` nets.
    ///
    /// The split is 50% transpose load buffer, 35% Bloom filters, 10%
    /// MinHash signatures, 5% re-streaming buffer. Every component has a
    /// small floor so degenerate budgets still produce a working (if
    /// coarse) configuration.
    pub fn plan(&self, num_parts: usize, num_nets: usize) -> SketchPlan {
        let parts = num_parts.max(1);
        let transpose_buffer_bytes = (self.bytes / 2).max(1 << 10);
        let bloom_bytes = (self.bytes * 35 / 100).max(8 * parts);
        // Round bits per partition up to whole 64-bit words.
        let bloom_bits_per_partition = ((bloom_bytes * 8 / parts).max(64) / 64) * 64;
        // Expected distinct nets recorded per partition: every net touches
        // at least one partition, heavily cut nets a few. 2·E/p is a
        // deliberately conservative load estimate for the false-positive
        // sizing below.
        let nets_per_partition = (2 * num_nets.max(1)).div_ceil(parts);
        let optimal_hashes =
            (bloom_bits_per_partition as f64 / nets_per_partition as f64) * std::f64::consts::LN_2;
        let bloom_hashes = (optimal_hashes.round() as usize).clamp(1, 8);
        let minhash_bytes = (self.bytes / 10).max(32 * parts);
        let minhash_permutations = (minhash_bytes / (8 * parts)).clamp(4, 64);
        let restream_bytes = (self.bytes / 20).max(1 << 10);
        // A buffered record is a vertex id, a weight, a confidence and its
        // net list; assume ~8 nets per vertex. The byte bound below is the
        // real limit — the entry count only sizes the heap up front.
        let restream_capacity = restream_bytes / (24 + 8 * 4);
        SketchPlan {
            transpose_buffer_bytes,
            bloom_bits_per_partition,
            bloom_hashes,
            minhash_permutations,
            restream_capacity,
            restream_bytes,
        }
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bytes >= 1 << 20 {
            write!(f, "{:.1} MiB", self.bytes as f64 / (1 << 20) as f64)
        } else {
            write!(f, "{} B", self.bytes)
        }
    }
}

/// Concrete sketch sizes derived from a [`MemoryBudget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchPlan {
    /// Byte bound handed to the on-disk transpose
    /// ([`hyperpraw_hypergraph::io::stream::StreamOptions::buffer_bytes`]).
    pub transpose_buffer_bytes: usize,
    /// Bits per partition Bloom filter (multiple of 64).
    pub bloom_bits_per_partition: usize,
    /// Hash functions per Bloom filter.
    pub bloom_hashes: usize,
    /// Permutations (signature length) per partition MinHash sketch.
    pub minhash_permutations: usize,
    /// Maximum number of low-confidence assignments buffered for the
    /// re-streaming pass.
    pub restream_capacity: usize,
    /// Byte bound on the re-streaming buffer. The capacity above assumes
    /// average-degree vertices; on skewed inputs (power-law hubs with
    /// thousands of incident nets) the byte bound is what actually keeps
    /// the buffer inside the budget.
    pub restream_bytes: usize,
}

impl SketchPlan {
    /// Expected Bloom false-positive rate once `inserted` distinct nets
    /// have been recorded in one partition's filter.
    pub fn expected_fpr(&self, inserted: usize) -> f64 {
        let m = self.bloom_bits_per_partition as f64;
        let k = self.bloom_hashes as f64;
        let n = inserted as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_scale_with_the_budget() {
        let small = MemoryBudget::bytes(64 << 10).plan(16, 10_000);
        let large = MemoryBudget::mebibytes(256).plan(16, 10_000);
        assert!(large.bloom_bits_per_partition > small.bloom_bits_per_partition);
        assert!(large.transpose_buffer_bytes > small.transpose_buffer_bytes);
        assert!(large.restream_capacity > small.restream_capacity);
        assert!(large.restream_bytes > small.restream_bytes);
    }

    #[test]
    fn plan_fields_respect_floors_and_granularity() {
        let plan = MemoryBudget::bytes(0).plan(1024, 1_000_000);
        assert!(plan.bloom_bits_per_partition >= 64);
        assert_eq!(plan.bloom_bits_per_partition % 64, 0);
        assert!((1..=8).contains(&plan.bloom_hashes));
        assert!((4..=64).contains(&plan.minhash_permutations));
    }

    #[test]
    fn fpr_is_monotone_in_load_and_under_one() {
        let plan = MemoryBudget::mebibytes(1).plan(8, 1_000);
        let light = plan.expected_fpr(100);
        let heavy = plan.expected_fpr(100_000);
        assert!(light < heavy);
        assert!((0.0..1.0).contains(&light));
        assert!((0.0..=1.0).contains(&heavy));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", MemoryBudget::mebibytes(64)), "64.0 MiB");
    }
}
