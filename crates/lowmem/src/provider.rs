//! The bridge between this crate's budgeted [`ConnectivityIndex`]es and
//! the restreaming engine's
//! [`hyperpraw_core::engine::ConnectivityProvider`] axis.
//!
//! Where `hyperpraw-core`'s `CsrProvider` counts distinct neighbour
//! vertices by traversing the in-memory CSR, this provider answers the
//! same `X_j(v)` query from *net connectivity* in budgeted memory: the
//! counts are "how many of the vertex's nets already touch partition `j`",
//! served by an exact hash-map index or Bloom/MinHash sketches. Because
//! scoring reads take `&self`, the provider composes with the engine's
//! bulk-synchronous strategy — worker threads query the frozen index
//! concurrently and all mutation happens at synchronisation points.

use hyperpraw_core::engine::ConnectivityProvider;
use hyperpraw_hypergraph::io::stream::VertexRecord;
use hyperpraw_hypergraph::AssignmentRef;

use crate::index::ConnectivityIndex;

/// [`ConnectivityProvider`] over any boxed [`ConnectivityIndex`].
///
/// Sketch rebuilding is double-buffered: during a rebuild pass the stale
/// index keeps answering connectivity queries (so the pass never cold
/// starts) while an empty copy records where the pass actually places
/// every vertex; at the next pass boundary the copy — which reflects only
/// the latest placements — replaces the stale index. Indexes that can
/// forget ([`ConnectivityIndex::supports_forget`]) are never stale and
/// skip the machinery.
pub struct IndexProvider {
    index: Box<dyn ConnectivityIndex + Send + Sync>,
    /// The empty copy populated during a rebuild pass.
    rebuilt: Option<Box<dyn ConnectivityIndex + Send + Sync>>,
}

impl IndexProvider {
    /// Wraps an index.
    pub fn new(index: Box<dyn ConnectivityIndex + Send + Sync>) -> Self {
        Self {
            index,
            rebuilt: None,
        }
    }

    /// Read access to the wrapped index (diagnostics, memory accounting).
    pub fn index(&self) -> &(dyn ConnectivityIndex + Send + Sync) {
        self.index.as_ref()
    }

    /// Heap bytes held by the index pair (both halves during a rebuild).
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.rebuilt.as_ref().map_or(0, |r| r.memory_bytes())
    }
}

impl ConnectivityProvider for IndexProvider {
    /// All per-query state lives in the shared index; nothing is
    /// worker-local.
    type Scratch = ();

    fn new_scratch(&self) -> Self::Scratch {}

    fn needs_nets(&self) -> bool {
        true
    }

    fn live_counts(&self) -> bool {
        // Counts come from the index, which only changes at attach/detach
        // on the engine thread — the work-stealing strategy must bound its
        // batches so the index never lags far behind the stream.
        false
    }

    fn begin_pass(&mut self, _pass: usize, rebuild: bool) {
        // A rebuild buffer filled by the previous pass holds exactly that
        // pass's placements — promote it, shedding everything older.
        if let Some(rebuilt) = self.rebuilt.take() {
            self.index = rebuilt;
        }
        // Rebuilding only makes sense for indexes that cannot forget:
        // their accumulated state is stale (it still contains every
        // pre-move position). An exact index is never stale.
        if rebuild && !self.index.supports_forget() {
            self.rebuilt = Some(self.index.empty_clone());
        }
    }

    fn count<A: AssignmentRef>(
        &self,
        record: &VertexRecord,
        _assignment: &A,
        _scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    ) {
        self.index.connectivity(&record.nets, counts);
    }

    fn detach(&mut self, record: &VertexRecord, part: u32) {
        // For a sketched index this is a no-op, so the counts keep the
        // vertex's own recorded nets. That is a deliberate bias towards
        // *staying*: Bloom filters cannot separate the self-hit from
        // genuine neighbours, and subtracting an estimate would erase real
        // connectivity and force spurious moves. A revisited vertex
        // therefore only moves when another partition's connectivity
        // genuinely dominates.
        self.index.forget(&record.nets, part);
        if let Some(rebuilt) = &mut self.rebuilt {
            rebuilt.forget(&record.nets, part);
        }
    }

    fn attach(&mut self, record: &VertexRecord, part: u32) {
        self.index.record(&record.nets, part);
        if let Some(rebuilt) = &mut self.rebuilt {
            rebuilt.record(&record.nets, part);
        }
    }

    fn confidence(&self, record: &VertexRecord, part: u32, margin: f64) -> f64 {
        // Confidence: the value margin, discounted when the index can tell
        // that the chosen partition's net set has little overlap with the
        // vertex's nets.
        match self.index.similarity(&record.nets, part) {
            Some(similarity) => margin * (0.5 + 0.5 * similarity),
            None => margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::MemoryBudget;
    use crate::index::{ExactIndex, SketchIndex};
    use hyperpraw_hypergraph::Partition;

    fn record(vertex: u32, nets: &[u32]) -> VertexRecord {
        VertexRecord {
            vertex,
            weight: 1.0,
            nets: nets.to_vec(),
        }
    }

    #[test]
    fn provider_counts_attach_and_detach_through_the_index() {
        let mut provider = IndexProvider::new(Box::new(ExactIndex::new(2)));
        let part = Partition::round_robin(4, 2);
        let r = record(0, &[0, 1]);
        provider.attach(&r, 1);
        let mut counts = Vec::new();
        provider.count(&r, &part, &mut (), &mut counts);
        assert_eq!(counts, vec![0, 2]);
        provider.detach(&r, 1);
        provider.count(&r, &part, &mut (), &mut counts);
        assert_eq!(counts, vec![0, 0]);
    }

    #[test]
    fn rebuild_double_buffers_sketches_and_never_touches_exact_indexes() {
        let plan = MemoryBudget::mebibytes(1).plan(2, 100);
        let part = Partition::round_robin(4, 2);
        let r = record(0, &[0, 1, 2]);
        let mut counts = Vec::new();

        let mut sketched = IndexProvider::new(Box::new(SketchIndex::new(2, &plan, 3)));
        sketched.begin_pass(1, false);
        sketched.attach(&r, 0); // pass 1 places the vertex on partition 0
        let single = sketched.memory_bytes();
        sketched.begin_pass(2, true);
        assert_eq!(
            sketched.memory_bytes(),
            2 * single,
            "a rebuild pass holds the index pair"
        );
        // During the rebuild pass the stale index still answers: no cold
        // start.
        sketched.count(&r, &part, &mut (), &mut counts);
        assert_eq!(counts, vec![3, 0]);
        // The pass moves the vertex to partition 1; the next boundary
        // promotes the rebuilt index, shedding the stale partition-0 entry.
        sketched.attach(&r, 1);
        sketched.begin_pass(3, true);
        sketched.count(&r, &part, &mut (), &mut counts);
        assert_eq!(counts[1], 3, "the new placement must survive the swap");
        assert_eq!(counts[0], 0, "the stale placement must be shed");

        let mut exact = IndexProvider::new(Box::new(ExactIndex::new(2)));
        exact.attach(&r, 0);
        exact.begin_pass(2, true);
        exact.count(&r, &part, &mut (), &mut counts);
        assert_eq!(counts, vec![3, 0], "exact state must survive a rebuild");
        assert!(exact.rebuilt.is_none(), "exact indexes never double-buffer");
    }

    #[test]
    fn sketched_confidence_discounts_low_similarity() {
        let plan = MemoryBudget::mebibytes(1).plan(2, 100);
        let mut provider = IndexProvider::new(Box::new(SketchIndex::new(2, &plan, 1)));
        let home = record(0, &[0, 1, 2, 3]);
        provider.attach(&home, 0);
        provider.attach(&record(1, &[100, 101, 102, 103]), 1);
        let c_home = provider.confidence(&home, 0, 1.0);
        let c_away = provider.confidence(&home, 1, 1.0);
        assert!(c_home > c_away);
        assert!((0.5..=1.0).contains(&c_away));
        // Exact indexes estimate no similarity: confidence is the margin.
        let exact = IndexProvider::new(Box::new(ExactIndex::new(2)));
        assert_eq!(exact.confidence(&home, 0, 0.75), 0.75);
    }
}
