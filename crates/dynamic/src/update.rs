//! The update vocabulary of the dynamic layer.

use std::fmt;

use hyperpraw_hypergraph::mutable::MutationError;
use hyperpraw_hypergraph::{HyperedgeId, VertexId};

/// One mutation of the resident hypergraph. Updates are applied in batch
/// order by [`crate::DynamicPartitioner::apply`]; ids follow the
/// tombstone semantics of
/// [`MutableHypergraph`](hyperpraw_hypergraph::MutableHypergraph) —
/// removals keep the id space dense and stable, additions append fresh
/// ids.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphUpdate {
    /// Append a new vertex; its id is reported in
    /// [`crate::UpdateOutcome::new_vertices`].
    AddVertex {
        /// Computational weight of the new vertex.
        weight: f64,
    },
    /// Tombstone a vertex, stripping it from every incident hyperedge.
    RemoveVertex {
        /// The vertex to remove.
        vertex: VertexId,
    },
    /// Append a new hyperedge over the given (live) pins.
    AddHyperedge {
        /// The pin set (deduplicated on application).
        pins: Vec<VertexId>,
        /// Communication weight of the hyperedge.
        weight: f64,
    },
    /// Tombstone a hyperedge, emptying its pin list.
    RemoveHyperedge {
        /// The hyperedge to remove.
        edge: HyperedgeId,
    },
    /// Add a vertex to an existing hyperedge's pin set (no-op when
    /// already present).
    AddPin {
        /// The hyperedge gaining a pin.
        edge: HyperedgeId,
        /// The vertex joining it.
        vertex: VertexId,
    },
    /// Remove a vertex from an existing hyperedge's pin set (no-op when
    /// not present).
    RemovePin {
        /// The hyperedge losing a pin.
        edge: HyperedgeId,
        /// The vertex leaving it.
        vertex: VertexId,
    },
}

/// Why a batch was rejected. Rejected batches are atomic: the partitioner
/// state is exactly what it was before [`crate::DynamicPartitioner::apply`].
#[derive(Clone, Debug, PartialEq)]
pub enum DynamicError {
    /// The partitioner could not be built or driven with these inputs
    /// (mismatched sizes, bad configuration).
    Invalid(String),
    /// An update referenced a missing or tombstoned vertex or hyperedge.
    Mutation(MutationError),
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::Invalid(msg) => write!(f, "invalid dynamic-partitioner input: {msg}"),
            DynamicError::Mutation(e) => write!(f, "update rejected: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<MutationError> for DynamicError {
    fn from(e: MutationError) -> Self {
        DynamicError::Mutation(e)
    }
}
