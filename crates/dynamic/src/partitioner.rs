//! The resident incremental repartitioner.

use std::collections::BTreeSet;

use hyperpraw_core::engine::{
    AdjProvider, DirtySetSource, Engine, EngineConfig, ExactCommCost, WarmStart,
};
use hyperpraw_core::metrics::partitioning_communication_cost_with;
use hyperpraw_core::{CostMatrix, HyperPrawConfig, PartitionHistory, StopReason};
use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{
    AdjacencyBudget, Hypergraph, MutableHypergraph, NeighborAdjacency, Partition, VertexId,
};

use crate::{DynamicError, GraphUpdate};

/// Configuration of a [`DynamicPartitioner`].
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// The restreaming parameters every dirty-set repair runs under —
    /// identical semantics to a cold run (α tempering, tolerance,
    /// refinement with comm-cost rollback).
    pub config: HyperPrawConfig,
    /// Rebuild the adjacency from scratch once the fraction of vertices
    /// answered through overlay patches would exceed this after a batch.
    /// Patching is O(touched); the rebuild amortises patch memory and
    /// lookup indirection back to the flat CSR.
    pub staleness_threshold: f64,
    /// Memory policy for the adjacency (re)builds.
    pub budget: AdjacencyBudget,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            config: HyperPrawConfig::default(),
            staleness_threshold: 0.25,
            budget: AdjacencyBudget::Auto,
        }
    }
}

/// What one update batch physically moved, in the paper's
/// architecture-aware terms: migrating a vertex between parts costs its
/// weight times the cost-matrix entry of the link it crosses.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MigrationStats {
    /// Pre-existing vertices whose assignment changed.
    pub vertices_moved: usize,
    /// `vertices_moved` over the live vertex count.
    pub moved_fraction: f64,
    /// Σ weight(v) · cost(old part, new part) over the moved vertices.
    pub bytes_moved: f64,
}

/// The outcome of one [`DynamicPartitioner::apply`] batch.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Ids assigned to `AddVertex` updates, in batch order.
    pub new_vertices: Vec<VertexId>,
    /// Size of the dirty set that was restreamed (touched vertices plus
    /// their distinct-neighbour ring).
    pub dirty_vertices: usize,
    /// Whether this batch crossed the staleness threshold and rebuilt the
    /// adjacency instead of patching it.
    pub rebuilt_adjacency: bool,
    /// Restreaming passes executed over the dirty set (`0` when the batch
    /// was empty or touched nothing live).
    pub iterations: usize,
    /// Why the restream stopped, when one ran.
    pub stop_reason: Option<StopReason>,
    /// The α in effect when the restream stopped, when one ran.
    pub final_alpha: Option<f64>,
    /// Doubt-buffer moves during the restream's final revisit.
    pub moved_in_restream: usize,
    /// Load imbalance of the resulting assignment (max/avg).
    pub imbalance: f64,
    /// Architecture-aware communication cost of the resulting assignment.
    pub comm_cost: f64,
    /// Per-pass history of the restream (empty when tracking is off or no
    /// restream ran).
    pub history: PartitionHistory,
    /// Migration cost of this batch.
    pub migration: MigrationStats,
}

/// A resident partitioner that absorbs [`GraphUpdate`] batches by
/// restreaming only the dirty region. See the [crate docs](crate) for the
/// full flow.
#[derive(Clone, Debug)]
pub struct DynamicPartitioner {
    graph: MutableHypergraph,
    /// CSR snapshot of `graph`, re-materialised after every batch — what
    /// the engine, adjacency and metrics read.
    snapshot: Hypergraph,
    adj: NeighborAdjacency,
    partition: Partition,
    loads: Vec<f64>,
    cost: CostMatrix,
    cfg: DynamicConfig,
    metrics: DynMetrics,
}

/// Batch instrumentation bound by [`DynamicPartitioner::set_registry`]
/// (all no-ops by default). Recording is observation-only: outcomes are
/// computed first, then mirrored here.
#[derive(Clone, Debug, Default)]
struct DynMetrics {
    /// Update batches applied.
    batches: hyperpraw_telemetry::Counter,
    /// Dirty-set size of each batch (touched vertices + neighbour ring).
    dirty_set_size: hyperpraw_telemetry::Histogram,
    /// Pre-existing vertices migrated across batches.
    migrated_vertices: hyperpraw_telemetry::Counter,
    /// Σ weight · link-cost of migrations, rounded to whole units.
    migrated_bytes: hyperpraw_telemetry::Counter,
    /// Kept so each batch's restream engine can bind its own `engine.*`
    /// metrics (pass timings, vertices scored, doubt occupancy).
    registry: hyperpraw_telemetry::Registry,
}

impl DynamicPartitioner {
    /// Adopts an already-partitioned hypergraph: `partition` becomes the
    /// live assignment (typically the output of a cold run over `hg`) and
    /// the adjacency is built once up front.
    pub fn new(
        hg: &Hypergraph,
        partition: Partition,
        cost: CostMatrix,
        cfg: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        if partition.num_vertices() != hg.num_vertices() {
            return Err(DynamicError::Invalid(format!(
                "partition covers {} vertices but the hypergraph has {}",
                partition.num_vertices(),
                hg.num_vertices()
            )));
        }
        if partition.num_parts() as usize != cost.num_units() {
            return Err(DynamicError::Invalid(format!(
                "partition has {} parts but the cost matrix covers {} units",
                partition.num_parts(),
                cost.num_units()
            )));
        }
        if !cfg.staleness_threshold.is_finite() || cfg.staleness_threshold < 0.0 {
            return Err(DynamicError::Invalid(format!(
                "staleness threshold must be finite and non-negative, got {}",
                cfg.staleness_threshold
            )));
        }
        let loads = partition
            .part_loads(hg)
            .map_err(|e| DynamicError::Invalid(e.to_string()))?;
        Ok(Self {
            graph: MutableHypergraph::from_hypergraph(hg),
            snapshot: hg.clone(),
            adj: NeighborAdjacency::build(hg, cfg.budget),
            partition,
            loads,
            cost,
            cfg,
            metrics: DynMetrics::default(),
        })
    }

    /// Rebuilds a partitioner from persisted state: the mutable
    /// hypergraph (tombstones included) and the assignment it had
    /// reached, plus the cost matrix and configuration it ran under —
    /// the recovery path of [`crate::journal`]. The CSR snapshot,
    /// adjacency and per-part loads are rematerialised deterministically,
    /// so the resumed instance answers every query and absorbs every
    /// subsequent batch bit-identically to the instance that was
    /// serialised.
    pub fn resume(
        graph: MutableHypergraph,
        partition: Partition,
        cost: CostMatrix,
        cfg: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        let snapshot = graph.to_hypergraph();
        if partition.num_vertices() != snapshot.num_vertices() {
            return Err(DynamicError::Invalid(format!(
                "partition covers {} vertices but the hypergraph has {}",
                partition.num_vertices(),
                snapshot.num_vertices()
            )));
        }
        if partition.num_parts() as usize != cost.num_units() {
            return Err(DynamicError::Invalid(format!(
                "partition has {} parts but the cost matrix covers {} units",
                partition.num_parts(),
                cost.num_units()
            )));
        }
        if !cfg.staleness_threshold.is_finite() || cfg.staleness_threshold < 0.0 {
            return Err(DynamicError::Invalid(format!(
                "staleness threshold must be finite and non-negative, got {}",
                cfg.staleness_threshold
            )));
        }
        let loads = partition
            .part_loads(&snapshot)
            .map_err(|e| DynamicError::Invalid(e.to_string()))?;
        Ok(Self {
            adj: NeighborAdjacency::build(&snapshot, cfg.budget),
            graph,
            snapshot,
            partition,
            loads,
            cost,
            cfg,
            metrics: DynMetrics::default(),
        })
    }

    /// Binds batch instrumentation to `registry` (metrics under the
    /// `dynamic.` prefix): batches applied, dirty-set sizes, and migrated
    /// vertices/bytes.
    pub fn set_registry(&mut self, registry: &hyperpraw_telemetry::Registry) {
        self.metrics = DynMetrics {
            batches: registry.counter("dynamic.batches_applied"),
            dirty_set_size: registry.histogram("dynamic.dirty_set_size"),
            migrated_vertices: registry.counter("dynamic.migrated_vertices"),
            migrated_bytes: registry.counter("dynamic.migrated_bytes"),
            registry: registry.clone(),
        };
    }

    /// The resident mutable hypergraph — the state
    /// [`crate::journal`] snapshots serialise (liveness flags included).
    pub fn graph(&self) -> &MutableHypergraph {
        &self.graph
    }

    /// The current CSR snapshot (tombstones included as weight-0 /
    /// empty-pin ids).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.snapshot
    }

    /// The current assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Per-part vertex-weight loads of the current assignment.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The cost matrix migrations and restreams are scored against.
    pub fn cost(&self) -> &CostMatrix {
        &self.cost
    }

    /// The configuration in use.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// The part of `v`, or `None` when `v` is unknown or tombstoned —
    /// the serve protocol's `lookup`.
    pub fn lookup(&self, v: VertexId) -> Option<u32> {
        if self.graph.is_vertex_alive(v) {
            Some(self.partition.part_of(v))
        } else {
            None
        }
    }

    /// Load imbalance (max/avg) of the current assignment.
    pub fn imbalance(&self) -> f64 {
        imbalance_of(&self.loads)
    }

    /// Architecture-aware communication cost of the current assignment.
    pub fn comm_cost(&self) -> f64 {
        partitioning_communication_cost_with(&self.snapshot, &self.adj, &self.partition, &self.cost)
    }

    /// Applies one batch of updates: mutate, patch (or rebuild) the
    /// adjacency, restream the dirty set warm-started from the current
    /// assignment, and account the migration. The batch is atomic — on
    /// error nothing changed; an empty batch returns a zero outcome and
    /// leaves the assignment bit-identical.
    pub fn apply(&mut self, updates: &[GraphUpdate]) -> Result<UpdateOutcome, DynamicError> {
        if updates.is_empty() {
            return Ok(UpdateOutcome {
                new_vertices: Vec::new(),
                dirty_vertices: 0,
                rebuilt_adjacency: false,
                iterations: 0,
                stop_reason: None,
                final_alpha: None,
                moved_in_restream: 0,
                imbalance: self.imbalance(),
                comm_cost: self.comm_cost(),
                history: PartitionHistory::new(),
                migration: MigrationStats::default(),
            });
        }

        // Phase 1 — mutate a working copy so a mid-batch error leaves the
        // partitioner untouched, collecting the core touched set: every
        // vertex named in an update plus the pre/post pins of every
        // touched hyperedge (their connectivity changed too).
        let mut graph = self.graph.clone();
        let mut core: BTreeSet<VertexId> = BTreeSet::new();
        let mut new_vertices = Vec::new();
        for update in updates {
            match update {
                GraphUpdate::AddVertex { weight } => {
                    let v = graph.add_vertex(*weight);
                    new_vertices.push(v);
                    core.insert(v);
                }
                GraphUpdate::RemoveVertex { vertex } => {
                    if (*vertex as usize) < graph.num_vertices() {
                        for &e in graph.incident_edges(*vertex) {
                            core.extend(graph.pins(e).iter().copied());
                        }
                    }
                    graph.remove_vertex(*vertex)?;
                    core.insert(*vertex);
                }
                GraphUpdate::AddHyperedge { pins, weight } => {
                    let e = graph.add_hyperedge(pins.iter().copied(), *weight)?;
                    core.extend(graph.pins(e).iter().copied());
                }
                GraphUpdate::RemoveHyperedge { edge } => {
                    if (*edge as usize) < graph.num_hyperedges() {
                        core.extend(graph.pins(*edge).iter().copied());
                    }
                    graph.remove_hyperedge(*edge)?;
                }
                GraphUpdate::AddPin { edge, vertex } => {
                    graph.add_pin(*edge, *vertex)?;
                    core.extend(graph.pins(*edge).iter().copied());
                }
                GraphUpdate::RemovePin { edge, vertex } => {
                    if (*edge as usize) < graph.num_hyperedges() {
                        core.extend(graph.pins(*edge).iter().copied());
                    }
                    graph.remove_pin(*edge, *vertex)?;
                    core.insert(*vertex);
                }
            }
        }

        // Phase 2 — commit the mutation, extend the assignment over any
        // appended ids (seeded round-robin, exactly like a cold start
        // seeds unknown vertices), and refresh the snapshot and loads.
        self.graph = graph;
        let pre_partition = self.partition.clone();
        let pre_n = pre_partition.num_vertices();
        let n = self.graph.num_vertices();
        let p = self.cost.num_units() as u32;
        if n > pre_n {
            let mut assignment = pre_partition.assignment().to_vec();
            assignment.extend((pre_n..n).map(|v| v as u32 % p));
            self.partition = Partition::from_assignment(assignment, p)
                .expect("extended assignment stays within the part count");
        }
        self.snapshot = self.graph.to_hypergraph();
        self.loads = self
            .partition
            .part_loads(&self.snapshot)
            .expect("partition covers every snapshot vertex");

        // Phase 3 — adjacency maintenance: patch the touched vertices in
        // place, or rebuild once the overlay would pass the staleness
        // threshold.
        self.adj.ensure_vertices(n);
        let stale_fraction = (self.adj.patched_count() + core.len()) as f64 / n.max(1) as f64;
        let rebuilt_adjacency = stale_fraction > self.cfg.staleness_threshold;
        if rebuilt_adjacency {
            self.adj = NeighborAdjacency::build(&self.snapshot, self.cfg.budget);
        } else {
            let mut scratch = NeighborScratch::new(n);
            for &v in &core {
                self.adj
                    .patch_vertex(v, scratch.neighbors(&self.snapshot, v).to_vec());
            }
        }

        // Phase 4 — dirty closure: the live touched vertices plus one
        // distinct-neighbour ring around them (their value function
        // changed even though their own incidence did not).
        let graph = &self.graph;
        let adj = &self.adj;
        let mut dirty: BTreeSet<VertexId> = core
            .iter()
            .copied()
            .filter(|&v| graph.is_vertex_alive(v))
            .collect();
        let mut ring_fallback: Option<NeighborScratch> = None;
        for &v in &core {
            let ring: &[VertexId] = match adj.neighbors(v) {
                Some(list) => list,
                None => ring_fallback
                    .get_or_insert_with(|| NeighborScratch::new(n))
                    .neighbors(&self.snapshot, v),
            };
            dirty.extend(ring.iter().copied().filter(|&u| graph.is_vertex_alive(u)));
        }
        let dirty: Vec<VertexId> = dirty.into_iter().collect();

        // Phase 5 — restream only the dirty set, warm-started from the
        // current assignment, under the cold-run stopping rules.
        let mut iterations = 0;
        let mut stop_reason = None;
        let mut final_alpha = None;
        let mut moved_in_restream = 0;
        let mut history = PartitionHistory::new();
        if !dirty.is_empty() {
            let engine = Engine::new(EngineConfig::restreaming(&self.cfg.config))
                .with_registry(&self.metrics.registry);
            let mut source = DirtySetSource::new(&self.snapshot, dirty.clone());
            let mut provider = AdjProvider::from_adjacency(&self.snapshot, &self.adj)
                .with_registry(&self.metrics.registry);
            let mut model = ExactCommCost::with_adjacency(&self.snapshot, &self.adj);
            let warm = WarmStart {
                partition: self.partition.clone(),
                loads: self.loads.clone(),
            };
            let run = engine
                .run_warm(&self.cost, &mut source, &mut provider, &mut model, warm)
                .expect("in-memory sources cannot fail");
            self.partition = run.partition;
            self.loads = self
                .partition
                .part_loads(&self.snapshot)
                .expect("restreamed partition covers every snapshot vertex");
            iterations = run.iterations;
            stop_reason = Some(run.stop_reason);
            final_alpha = Some(run.final_alpha);
            moved_in_restream = run.moved_in_restream;
            history = run.history;
        }

        // Phase 6 — migration accounting over the pre-existing id space.
        let mut vertices_moved = 0usize;
        let mut bytes_moved = 0.0f64;
        for v in 0..pre_n as VertexId {
            if !self.graph.is_vertex_alive(v) {
                continue;
            }
            let old = pre_partition.part_of(v);
            let new = self.partition.part_of(v);
            if old != new {
                vertices_moved += 1;
                bytes_moved +=
                    self.snapshot.vertex_weight(v) * self.cost.get(old as usize, new as usize);
            }
        }
        let live = self.graph.num_live_vertices();
        let migration = MigrationStats {
            vertices_moved,
            moved_fraction: if live == 0 {
                0.0
            } else {
                vertices_moved as f64 / live as f64
            },
            bytes_moved,
        };

        self.metrics.batches.inc();
        self.metrics.dirty_set_size.record(dirty.len() as u64);
        self.metrics
            .migrated_vertices
            .add(migration.vertices_moved as u64);
        self.metrics
            .migrated_bytes
            .add(migration.bytes_moved.round().max(0.0) as u64);

        Ok(UpdateOutcome {
            new_vertices,
            dirty_vertices: dirty.len(),
            rebuilt_adjacency,
            iterations,
            stop_reason,
            final_alpha,
            moved_in_restream,
            imbalance: self.imbalance(),
            comm_cost: self.comm_cost(),
            history,
            migration,
        })
    }
}

/// Max-over-average load imbalance, `0` for an empty instance.
fn imbalance_of(loads: &[f64]) -> f64 {
    let total: f64 = loads.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let avg = total / loads.len() as f64;
    loads.iter().cloned().fold(f64::MIN, f64::max) / avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_core::HyperPraw;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

    fn seeded(n: usize, p: usize) -> DynamicPartitioner {
        let hg = mesh_hypergraph(&MeshConfig::new(n, 8));
        let cost = CostMatrix::uniform(p);
        let cold = HyperPraw::new(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        DynamicPartitioner::new(&hg, cold.partition, cost, DynamicConfig::default()).unwrap()
    }

    #[test]
    fn empty_batch_is_bit_identical_and_free() {
        let mut dp = seeded(300, 4);
        let before = dp.partition().assignment().to_vec();
        let outcome = dp.apply(&[]).unwrap();
        assert_eq!(dp.partition().assignment(), &before[..]);
        assert_eq!(outcome.dirty_vertices, 0);
        assert_eq!(outcome.iterations, 0);
        assert_eq!(outcome.migration, MigrationStats::default());
    }

    #[test]
    fn additions_extend_the_assignment_and_restream_the_neighbourhood() {
        let mut dp = seeded(300, 4);
        let outcome = dp
            .apply(&[
                GraphUpdate::AddVertex { weight: 1.0 },
                GraphUpdate::AddVertex { weight: 2.0 },
                GraphUpdate::AddHyperedge {
                    pins: vec![0, 1, 300, 301],
                    weight: 1.0,
                },
            ])
            .unwrap();
        assert_eq!(outcome.new_vertices, vec![300, 301]);
        assert!(outcome.dirty_vertices >= 4);
        assert!(outcome.iterations >= 1);
        assert_eq!(dp.partition().num_vertices(), 302);
        assert_eq!(dp.hypergraph().num_vertices(), 302);
        assert!(dp.lookup(301).is_some());
        // Loads stay exact against the snapshot.
        let expected = dp.partition().part_loads(dp.hypergraph()).unwrap();
        assert_eq!(dp.loads(), &expected[..]);
    }

    #[test]
    fn removals_tombstone_and_lookups_reflect_it() {
        let mut dp = seeded(300, 4);
        assert!(dp.lookup(7).is_some());
        let outcome = dp
            .apply(&[GraphUpdate::RemoveVertex { vertex: 7 }])
            .unwrap();
        assert!(dp.lookup(7).is_none());
        assert_eq!(dp.hypergraph().vertex_weight(7), 0.0);
        assert!(outcome.dirty_vertices >= 1);
    }

    #[test]
    fn rejected_batches_change_nothing() {
        let mut dp = seeded(200, 4);
        let before = dp.clone();
        let err = dp
            .apply(&[
                GraphUpdate::AddVertex { weight: 1.0 },
                GraphUpdate::AddPin {
                    edge: 9_999,
                    vertex: 0,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, DynamicError::Mutation(_)));
        assert_eq!(dp.partition().assignment(), before.partition().assignment());
        assert_eq!(dp.hypergraph(), before.hypergraph());
        assert_eq!(dp.loads(), before.loads());
    }

    #[test]
    fn staleness_threshold_forces_a_rebuild() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        let cost = CostMatrix::uniform(2);
        let cold = HyperPraw::new(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let cfg = DynamicConfig {
            staleness_threshold: 0.0,
            ..DynamicConfig::default()
        };
        let mut dp = DynamicPartitioner::new(&hg, cold.partition, cost, cfg).unwrap();
        let outcome = dp
            .apply(&[GraphUpdate::AddHyperedge {
                pins: vec![0, 50],
                weight: 1.0,
            }])
            .unwrap();
        assert!(outcome.rebuilt_adjacency);
    }

    #[test]
    fn mismatched_inputs_are_rejected_up_front() {
        let hg = mesh_hypergraph(&MeshConfig::new(50, 6));
        let part = Partition::round_robin(49, 4);
        assert!(matches!(
            DynamicPartitioner::new(&hg, part, CostMatrix::uniform(4), DynamicConfig::default()),
            Err(DynamicError::Invalid(_))
        ));
        let part = Partition::round_robin(50, 4);
        assert!(matches!(
            DynamicPartitioner::new(&hg, part, CostMatrix::uniform(8), DynamicConfig::default()),
            Err(DynamicError::Invalid(_))
        ));
    }
}
