//! Crash-safe persistence for [`DynamicPartitioner`] sessions: a
//! write-ahead journal of accepted update batches plus periodic binary
//! snapshots, with recovery that replays the journal tail and discards
//! torn or corrupt records instead of applying them.
//!
//! # On-disk layout
//!
//! A state directory holds at most four files:
//!
//! * `snapshot.bin` — the last durable snapshot: the full partitioner
//!   state (mutable hypergraph with tombstones, assignment, cost matrix,
//!   configuration) plus an opaque caller-owned `meta` blob, CRC-guarded.
//! * `journal.log` — the write-ahead journal: every batch accepted
//!   *after* that snapshot, appended and fsynced before the caller sees
//!   the batch acknowledged.
//! * `snapshot.tmp` / `journal.new` — rotation scratch, never read.
//!
//! All multi-byte integers are little-endian; variable-length integers
//! use the same LEB128 encoding as the `.hpz` block format
//! ([`hyperpraw_storage::encode_u64`]); `f64`s are serialised via
//! [`f64::to_bits`], so round-trips are bit-exact.
//!
//! ```text
//! snapshot.bin: magic b"HPJSNAP1" | version u32 | payload_len u64
//!               | crc32(payload) u32 | payload
//!     payload:  varint epoch | varint meta_len | meta bytes | state
//! journal.log:  magic b"HPJLOG01" | epoch u64
//!               | record*   record: len u32 | crc32(payload) u32 | payload
//!     payload:  one encoded update batch (varint count + records)
//! ```
//!
//! # Epoch rotation — why double replay cannot happen
//!
//! The classic failure of "write snapshot, then truncate journal" is the
//! crash between the two: the next recovery replays batches that the
//! snapshot already contains. Here every journal carries an *epoch* and
//! every snapshot records the epoch of the journal that goes with it.
//! [`StateDir::write_snapshot`] performs, in order:
//!
//! 1. write `journal.new` with epoch *E+1* (header only, synced),
//! 2. write `snapshot.tmp` with epoch *E+1*, sync, rename over
//!    `snapshot.bin` (atomic),
//! 3. rename `journal.new` over `journal.log`.
//!
//! A crash before step 2's rename leaves the old snapshot with the old
//! journal — consistent. A crash between 2 and 3 leaves the *new*
//! snapshot with the *old* journal, whose epoch no longer matches: its
//! records are recognised as already-folded-in and ignored. There is no
//! interleaving in which a record is replayed twice, and no file is ever
//! truncated in place.
//!
//! # Recovery
//!
//! [`StateDir::open`] loads the newest valid snapshot, then replays the
//! journal **only** if its epoch matches. Replay stops at the first
//! record whose length frame, CRC or payload decoding fails — a torn
//! write from the crash, or bytes damaged afterwards — and everything
//! from that point on is dropped, never applied. After any replay or
//! tail truncation the directory is immediately re-snapshotted and
//! rotated, so the damage cannot be re-read on the next start. The
//! [`RecoveryStats`] returned alongside say exactly what happened.
//!
//! A snapshot or journal whose *header* does not parse is a hard
//! [`JournalError::Corrupt`]: unlike a torn tail, a damaged root means
//! the directory cannot be trusted at all, and silently starting empty
//! would present data loss as success.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use hyperpraw_core::{Connectivity, HyperPrawConfig, RefinementPolicy, StreamOrder};
use hyperpraw_hypergraph::{
    AdjacencyBudget, HypergraphBuilder, MutableHypergraph, Partition, VertexId,
};
use hyperpraw_storage::{crc32, decode_u64, encode_u64, ByteSource, MemorySource};
use hyperpraw_telemetry::{Histogram, Registry};
use hyperpraw_topology::CostMatrix;

use crate::{DynamicConfig, DynamicPartitioner, GraphUpdate};

/// Magic opening `snapshot.bin`.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HPJSNAP1";
/// Magic opening `journal.log`.
pub const JOURNAL_MAGIC: &[u8; 8] = b"HPJLOG01";
/// Snapshot format version written (and the only one read).
pub const SNAPSHOT_VERSION: u32 = 1;
/// Size of the journal file header (magic + epoch).
pub const JOURNAL_HEADER_BYTES: u64 = 16;
/// Upper bound on a single journal record payload. Anything larger is
/// treated as frame damage (a bit flip in the length field), not data.
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

const SNAPSHOT_FILE: &str = "snapshot.bin";
const JOURNAL_FILE: &str = "journal.log";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const JOURNAL_TMP: &str = "journal.new";

/// Why a persistence operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The operating system refused an IO operation.
    Io(String),
    /// Bytes on disk do not form a valid snapshot or journal (beyond the
    /// tolerated torn tail of a journal).
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal io error: {msg}"),
            JournalError::Corrupt(msg) => write!(f, "corrupt state dir: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

fn corrupt(msg: impl Into<String>) -> JournalError {
    JournalError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------------

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A strict little decoder over an in-memory payload; every method
/// answers [`JournalError::Corrupt`] on truncation or malformed bytes.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn truncated(&self) -> JournalError {
        corrupt(format!("{} truncated at byte {}", self.what, self.pos))
    }

    fn varint(&mut self) -> Result<u64, JournalError> {
        decode_u64(self.buf, &mut self.pos).ok_or_else(|| self.truncated())
    }

    fn varint_usize(&mut self) -> Result<usize, JournalError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| corrupt(format!("{}: length {v} overflows", self.what)))
    }

    fn id(&mut self) -> Result<u32, JournalError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| corrupt(format!("{}: id {v} exceeds u32", self.what)))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.buf.len() {
            return Err(self.truncated());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.bytes(1)?[0])
    }

    fn f64(&mut self) -> Result<f64, JournalError> {
        let b: [u8; 8] = self.bytes(8)?.try_into().unwrap();
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    fn u64_le(&mut self) -> Result<u64, JournalError> {
        let b: [u8; 8] = self.bytes(8)?.try_into().unwrap();
        Ok(u64::from_le_bytes(b))
    }

    fn finish(&self) -> Result<(), JournalError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!(
                "{}: {} trailing bytes after decode",
                self.what,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_bitset(out: &mut Vec<u8>, flags: &[bool]) {
    let mut byte = 0u8;
    for (i, &f) in flags.iter().enumerate() {
        if f {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !flags.len().is_multiple_of(8) {
        out.push(byte);
    }
}

fn get_bitset(dec: &mut Dec<'_>, n: usize) -> Result<Vec<bool>, JournalError> {
    let bytes = dec.bytes(n.div_ceil(8))?;
    Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
}

// ---------------------------------------------------------------------------
// Update batch encoding (journal record payloads)
// ---------------------------------------------------------------------------

const TAG_ADD_VERTEX: u8 = 0;
const TAG_REMOVE_VERTEX: u8 = 1;
const TAG_ADD_HYPEREDGE: u8 = 2;
const TAG_REMOVE_HYPEREDGE: u8 = 3;
const TAG_ADD_PIN: u8 = 4;
const TAG_REMOVE_PIN: u8 = 5;

/// Serialises one accepted batch as a journal record payload.
pub fn encode_batch(updates: &[GraphUpdate]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + updates.len() * 8);
    encode_u64(updates.len() as u64, &mut out);
    for u in updates {
        match u {
            GraphUpdate::AddVertex { weight } => {
                out.push(TAG_ADD_VERTEX);
                put_f64(&mut out, *weight);
            }
            GraphUpdate::RemoveVertex { vertex } => {
                out.push(TAG_REMOVE_VERTEX);
                encode_u64(u64::from(*vertex), &mut out);
            }
            GraphUpdate::AddHyperedge { pins, weight } => {
                out.push(TAG_ADD_HYPEREDGE);
                encode_u64(pins.len() as u64, &mut out);
                for &p in pins {
                    encode_u64(u64::from(p), &mut out);
                }
                put_f64(&mut out, *weight);
            }
            GraphUpdate::RemoveHyperedge { edge } => {
                out.push(TAG_REMOVE_HYPEREDGE);
                encode_u64(u64::from(*edge), &mut out);
            }
            GraphUpdate::AddPin { edge, vertex } => {
                out.push(TAG_ADD_PIN);
                encode_u64(u64::from(*edge), &mut out);
                encode_u64(u64::from(*vertex), &mut out);
            }
            GraphUpdate::RemovePin { edge, vertex } => {
                out.push(TAG_REMOVE_PIN);
                encode_u64(u64::from(*edge), &mut out);
                encode_u64(u64::from(*vertex), &mut out);
            }
        }
    }
    out
}

/// Decodes a journal record payload back into the batch it framed.
/// Strict: every byte must be consumed.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<GraphUpdate>, JournalError> {
    let mut dec = Dec::new(payload, "journal batch");
    let count = dec.varint_usize()?;
    if count > payload.len() {
        return Err(corrupt(format!(
            "journal batch claims {count} updates in {} bytes",
            payload.len()
        )));
    }
    let mut updates = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = dec.u8()?;
        updates.push(match tag {
            TAG_ADD_VERTEX => GraphUpdate::AddVertex { weight: dec.f64()? },
            TAG_REMOVE_VERTEX => GraphUpdate::RemoveVertex { vertex: dec.id()? },
            TAG_ADD_HYPEREDGE => {
                let n = dec.varint_usize()?;
                if n > payload.len() {
                    return Err(corrupt(format!("pin list claims {n} pins")));
                }
                let mut pins = Vec::with_capacity(n);
                for _ in 0..n {
                    pins.push(dec.id()?);
                }
                GraphUpdate::AddHyperedge {
                    pins,
                    weight: dec.f64()?,
                }
            }
            TAG_REMOVE_HYPEREDGE => GraphUpdate::RemoveHyperedge { edge: dec.id()? },
            TAG_ADD_PIN => GraphUpdate::AddPin {
                edge: dec.id()?,
                vertex: dec.id()?,
            },
            TAG_REMOVE_PIN => GraphUpdate::RemovePin {
                edge: dec.id()?,
                vertex: dec.id()?,
            },
            other => return Err(corrupt(format!("unknown update tag {other}"))),
        });
    }
    dec.finish()?;
    Ok(updates)
}

// ---------------------------------------------------------------------------
// Partitioner state encoding (snapshot payloads)
// ---------------------------------------------------------------------------

const BUDGET_UNBOUNDED: u8 = 0;
const BUDGET_MAX_BYTES: u8 = 1;
const BUDGET_DEGREE_CUTOFF: u8 = 2;
const BUDGET_AUTO: u8 = 3;

fn encode_state(out: &mut Vec<u8>, p: &DynamicPartitioner) {
    let graph = p.graph();
    let hg = graph.to_hypergraph();
    let n = hg.num_vertices();
    let m = hg.num_hyperedges();

    let name = hg.name().as_bytes();
    encode_u64(name.len() as u64, out);
    out.extend_from_slice(name);

    encode_u64(n as u64, out);
    for v in 0..n {
        put_f64(out, hg.vertex_weight(v as VertexId));
    }
    put_bitset(out, graph.vertex_alive_flags());

    encode_u64(m as u64, out);
    for e in 0..m {
        let pins = hg.pins(e as u32);
        encode_u64(pins.len() as u64, out);
        for &pin in pins {
            encode_u64(u64::from(pin), out);
        }
        put_f64(out, hg.edge_weight(e as u32));
    }
    put_bitset(out, graph.edge_alive_flags());

    let partition = p.partition();
    encode_u64(u64::from(partition.num_parts()), out);
    for &part in partition.assignment() {
        encode_u64(u64::from(part), out);
    }

    let cost = p.cost();
    let units = cost.num_units();
    encode_u64(units as u64, out);
    for i in 0..units {
        for j in 0..units {
            put_f64(out, cost.get(i, j));
        }
    }

    let cfg = p.config();
    put_f64(out, cfg.staleness_threshold);
    match cfg.budget {
        AdjacencyBudget::Unbounded => out.push(BUDGET_UNBOUNDED),
        AdjacencyBudget::MaxBytes(b) => {
            out.push(BUDGET_MAX_BYTES);
            encode_u64(b as u64, out);
        }
        AdjacencyBudget::DegreeCutoff(d) => {
            out.push(BUDGET_DEGREE_CUTOFF);
            encode_u64(d as u64, out);
        }
        AdjacencyBudget::Auto => out.push(BUDGET_AUTO),
    }

    let hp = &cfg.config;
    match hp.initial_alpha {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_f64(out, a);
        }
    }
    put_f64(out, hp.tempering_factor);
    match hp.refinement {
        RefinementPolicy::None => out.push(0),
        RefinementPolicy::Factor(f) => {
            out.push(1);
            put_f64(out, f);
        }
    }
    put_f64(out, hp.imbalance_tolerance);
    encode_u64(hp.max_iterations as u64, out);
    out.push(match hp.stream_order {
        StreamOrder::Natural => 0,
        StreamOrder::Random => 1,
        StreamOrder::DegreeDescending => 2,
    });
    put_u64_le(out, hp.seed);
    out.push(u8::from(hp.track_history));
    out.push(match hp.connectivity {
        Connectivity::Csr => 0,
        Connectivity::Adjacency => 1,
        Connectivity::Auto => 2,
    });
}

fn decode_state(dec: &mut Dec<'_>) -> Result<DynamicPartitioner, JournalError> {
    let name_len = dec.varint_usize()?;
    if name_len > dec.buf.len() {
        return Err(corrupt(format!("snapshot name claims {name_len} bytes")));
    }
    let name = String::from_utf8(dec.bytes(name_len)?.to_vec())
        .map_err(|_| corrupt("snapshot name is not UTF-8"))?;

    let n = dec.varint_usize()?;
    if n > u32::MAX as usize {
        return Err(corrupt(format!("snapshot claims {n} vertices")));
    }
    let mut vertex_weights = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let w = dec.f64()?;
        if !w.is_finite() || w < 0.0 {
            return Err(corrupt(format!("non-finite or negative vertex weight {w}")));
        }
        vertex_weights.push(w);
    }
    let vertex_alive = get_bitset(dec, n)?;

    let m = dec.varint_usize()?;
    if m > u32::MAX as usize {
        return Err(corrupt(format!("snapshot claims {m} hyperedges")));
    }
    let mut builder = HypergraphBuilder::new(n);
    builder.name(name);
    for e in 0..m {
        let pin_count = dec.varint_usize()?;
        if pin_count > n {
            return Err(corrupt(format!(
                "hyperedge {e} claims {pin_count} pins over {n} vertices"
            )));
        }
        let mut pins = Vec::with_capacity(pin_count);
        for _ in 0..pin_count {
            let pin = dec.id()?;
            if pin as usize >= n {
                return Err(corrupt(format!("hyperedge {e} pins missing vertex {pin}")));
            }
            pins.push(pin);
        }
        let w = dec.f64()?;
        if !w.is_finite() || w < 0.0 {
            return Err(corrupt(format!("non-finite or negative edge weight {w}")));
        }
        builder.add_weighted_hyperedge(pins, w);
    }
    for (v, &w) in vertex_weights.iter().enumerate() {
        if w != 1.0 {
            builder.set_vertex_weight(v as VertexId, w);
        }
    }
    let edge_alive = get_bitset(dec, m)?;
    let hg = builder.build();
    let graph =
        MutableHypergraph::from_snapshot(&hg, &vertex_alive, &edge_alive).map_err(corrupt)?;

    let num_parts = dec.id()?;
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        assignment.push(dec.id()?);
    }
    let partition = Partition::from_assignment(assignment, num_parts)
        .map_err(|e| corrupt(format!("snapshot assignment invalid: {e}")))?;

    let units = dec.varint_usize()?;
    if units != num_parts as usize {
        return Err(corrupt(format!(
            "cost matrix covers {units} units but the partition has {num_parts} parts"
        )));
    }
    let mut cost_data = Vec::with_capacity(units * units);
    for _ in 0..units * units {
        let c = dec.f64()?;
        if !c.is_finite() || c < 0.0 {
            return Err(corrupt(format!("non-finite or negative comm cost {c}")));
        }
        cost_data.push(c);
    }
    let cost = CostMatrix::from_raw(units, cost_data);

    let staleness_threshold = dec.f64()?;
    let budget = match dec.u8()? {
        BUDGET_UNBOUNDED => AdjacencyBudget::Unbounded,
        BUDGET_MAX_BYTES => AdjacencyBudget::MaxBytes(dec.varint_usize()?),
        BUDGET_DEGREE_CUTOFF => AdjacencyBudget::DegreeCutoff(dec.varint_usize()?),
        BUDGET_AUTO => AdjacencyBudget::Auto,
        other => return Err(corrupt(format!("unknown adjacency budget tag {other}"))),
    };
    let initial_alpha = match dec.u8()? {
        0 => None,
        1 => Some(dec.f64()?),
        other => return Err(corrupt(format!("unknown initial-alpha tag {other}"))),
    };
    let tempering_factor = dec.f64()?;
    let refinement = match dec.u8()? {
        0 => RefinementPolicy::None,
        1 => RefinementPolicy::Factor(dec.f64()?),
        other => return Err(corrupt(format!("unknown refinement tag {other}"))),
    };
    let imbalance_tolerance = dec.f64()?;
    if !imbalance_tolerance.is_finite() || imbalance_tolerance < 1.0 {
        return Err(corrupt(format!(
            "imbalance tolerance {imbalance_tolerance} out of range"
        )));
    }
    let max_iterations = dec.varint_usize()?;
    if max_iterations == 0 {
        return Err(corrupt("zero max_iterations in snapshot"));
    }
    let stream_order = match dec.u8()? {
        0 => StreamOrder::Natural,
        1 => StreamOrder::Random,
        2 => StreamOrder::DegreeDescending,
        other => return Err(corrupt(format!("unknown stream-order tag {other}"))),
    };
    let seed = dec.u64_le()?;
    let track_history = dec.u8()? != 0;
    let connectivity = match dec.u8()? {
        0 => Connectivity::Csr,
        1 => Connectivity::Adjacency,
        2 => Connectivity::Auto,
        other => return Err(corrupt(format!("unknown connectivity tag {other}"))),
    };

    let cfg = DynamicConfig {
        config: HyperPrawConfig {
            initial_alpha,
            tempering_factor,
            refinement,
            imbalance_tolerance,
            max_iterations,
            stream_order,
            seed,
            track_history,
            connectivity,
        },
        staleness_threshold,
        budget,
    };
    DynamicPartitioner::resume(graph, partition, cost, cfg)
        .map_err(|e| corrupt(format!("snapshot state rejected: {e}")))
}

// ---------------------------------------------------------------------------
// Whole-file encode/decode
// ---------------------------------------------------------------------------

/// A decoded `snapshot.bin`.
pub struct DecodedSnapshot {
    /// Epoch of the journal this snapshot pairs with.
    pub epoch: u64,
    /// The opaque caller blob stored alongside the state (the facade
    /// keeps its session configuration here).
    pub meta: Vec<u8>,
    /// The reconstructed partitioner.
    pub partitioner: DynamicPartitioner,
}

/// Serialises a complete snapshot file (header included).
pub fn encode_snapshot(epoch: u64, meta: &[u8], p: &DynamicPartitioner) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + meta.len());
    encode_u64(epoch, &mut payload);
    encode_u64(meta.len() as u64, &mut payload);
    payload.extend_from_slice(meta);
    encode_state(&mut payload, p);

    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Reads and validates a snapshot from any [`ByteSource`]. Any damage —
/// bad magic, length mismatch, CRC mismatch, undecodable payload — is a
/// [`JournalError::Corrupt`]; snapshots have no tolerated torn region.
pub fn read_snapshot<S: ByteSource>(source: &S) -> Result<DecodedSnapshot, JournalError> {
    let total = source.len();
    if total < 24 {
        return Err(corrupt(format!("snapshot file is {total} bytes")));
    }
    let mut header = [0u8; 24];
    source.read_at(0, &mut header)?;
    if &header[0..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let payload_len = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let expected_crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
    if payload_len != total - 24 {
        return Err(corrupt(format!(
            "snapshot claims {payload_len} payload bytes but the file holds {}",
            total - 24
        )));
    }
    let mut payload = vec![0u8; payload_len as usize];
    source.read_at(24, &mut payload)?;
    let actual = crc32(&payload);
    if actual != expected_crc {
        return Err(corrupt(format!(
            "snapshot checksum mismatch (stored {expected_crc:#010x}, computed {actual:#010x})"
        )));
    }

    let mut dec = Dec::new(&payload, "snapshot payload");
    let epoch = dec.varint()?;
    let meta_len = dec.varint_usize()?;
    if meta_len > payload.len() {
        return Err(corrupt(format!("snapshot meta claims {meta_len} bytes")));
    }
    let meta = dec.bytes(meta_len)?.to_vec();
    let partitioner = decode_state(&mut dec)?;
    dec.finish()?;
    Ok(DecodedSnapshot {
        epoch,
        meta,
        partitioner,
    })
}

/// The result of scanning a journal file.
pub struct JournalScan {
    /// Epoch stamped in the journal header.
    pub epoch: u64,
    /// Every intact batch, in append order.
    pub batches: Vec<Vec<GraphUpdate>>,
    /// Length of the valid prefix (header plus intact records).
    pub valid_bytes: u64,
    /// Whether bytes after the valid prefix had to be dropped.
    pub torn: bool,
}

/// Scans a journal from any [`ByteSource`]: reads the header, then
/// records until the file ends or the first record whose frame, CRC or
/// payload fails to validate. Everything from the first bad byte on is
/// reported as torn and **not** returned — damaged records are dropped,
/// never replayed. A header that does not parse is a hard
/// [`JournalError::Corrupt`].
pub fn scan_journal<S: ByteSource>(source: &S) -> Result<JournalScan, JournalError> {
    let total = source.len();
    if total < JOURNAL_HEADER_BYTES {
        return Err(corrupt(format!("journal file is {total} bytes")));
    }
    let mut header = [0u8; JOURNAL_HEADER_BYTES as usize];
    source.read_at(0, &mut header)?;
    if &header[0..8] != JOURNAL_MAGIC {
        return Err(corrupt("bad journal magic"));
    }
    let epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());

    let mut batches = Vec::new();
    let mut offset = JOURNAL_HEADER_BYTES;
    let mut torn = false;
    while offset < total {
        if total - offset < 8 {
            torn = true;
            break;
        }
        let mut frame = [0u8; 8];
        source.read_at(offset, &mut frame)?;
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || u64::from(len) > total - offset - 8 {
            torn = true;
            break;
        }
        let mut payload = vec![0u8; len as usize];
        if source.read_at(offset + 8, &mut payload).is_err() {
            torn = true;
            break;
        }
        if crc32(&payload) != expected_crc {
            torn = true;
            break;
        }
        match decode_batch(&payload) {
            Ok(batch) => batches.push(batch),
            Err(_) => {
                torn = true;
                break;
            }
        }
        offset += 8 + u64::from(len);
    }
    Ok(JournalScan {
        epoch,
        batches,
        valid_bytes: offset,
        torn,
    })
}

// ---------------------------------------------------------------------------
// The state directory
// ---------------------------------------------------------------------------

/// What [`StateDir::open`] found and did when prior state existed.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryStats {
    /// Size of the snapshot file that was loaded.
    pub snapshot_bytes: u64,
    /// Journal batches replayed on top of the snapshot.
    pub batches_replayed: usize,
    /// Journal bytes dropped because they were torn or corrupt.
    pub truncated_bytes: u64,
    /// Whether a torn/corrupt journal tail was detected (and dropped).
    pub torn_tail: bool,
}

impl RecoveryStats {
    /// Publishes what recovery found into `registry` as gauges under
    /// `dynamic.recovery.*` (a no-op on a disabled registry).
    pub fn record_into(&self, registry: &Registry) {
        registry
            .gauge("dynamic.recovery.snapshot_bytes")
            .set(self.snapshot_bytes as i64);
        registry
            .gauge("dynamic.recovery.batches_replayed")
            .set(self.batches_replayed as i64);
        registry
            .gauge("dynamic.recovery.truncated_bytes")
            .set(self.truncated_bytes as i64);
        registry
            .gauge("dynamic.recovery.torn_tail")
            .set(i64::from(self.torn_tail));
    }
}

/// A session recovered from disk by [`StateDir::open`].
pub struct Recovered {
    /// The opaque meta blob the caller stored with the snapshot.
    pub meta: Vec<u8>,
    /// The partitioner, snapshot state plus replayed journal tail.
    pub partitioner: DynamicPartitioner,
    /// What recovery found and did.
    pub stats: RecoveryStats,
}

/// A durable home for one [`DynamicPartitioner`] session: snapshot plus
/// write-ahead journal, with epoch-rotated snapshotting (see the module
/// docs for the crash-safety argument).
pub struct StateDir {
    dir: PathBuf,
    journal: Option<File>,
    epoch: u64,
    pending: u64,
    metrics: StateDirMetrics,
}

/// Persistence latency instrumentation, bound by [`StateDir::set_registry`]
/// (all no-ops by default).
#[derive(Clone, Debug, Default)]
struct StateDirMetrics {
    /// Full [`StateDir::append`] latency (encode + write + fsync), µs.
    append_us: Histogram,
    /// The fsync portion of each append, µs.
    fsync_us: Histogram,
    /// Full [`StateDir::write_snapshot`] fold-and-rotate latency, µs.
    fold_us: Histogram,
}

impl StateDir {
    /// Opens (creating if needed) a state directory. When a valid
    /// snapshot exists, the session is reconstructed — journal tail
    /// replayed, torn bytes dropped, and the directory immediately
    /// re-snapshotted so the repaired state is durable — and returned as
    /// [`Recovered`]. A fresh directory returns `None`: the caller
    /// establishes state with the first [`StateDir::write_snapshot`].
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, Option<Recovered>), JournalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Rotation scratch is never trusted across a restart.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));
        let _ = fs::remove_file(dir.join(JOURNAL_TMP));

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let journal_path = dir.join(JOURNAL_FILE);
        if !snapshot_path.exists() {
            // No snapshot means no session: a journal alone cannot be
            // replayed (records are deltas against snapshot state).
            let _ = fs::remove_file(&journal_path);
            return Ok((
                Self {
                    dir,
                    journal: None,
                    epoch: 0,
                    pending: 0,
                    metrics: StateDirMetrics::default(),
                },
                None,
            ));
        }

        let snapshot_bytes = fs::read(&snapshot_path)?;
        let snapshot_len = snapshot_bytes.len() as u64;
        let snap = read_snapshot(&MemorySource::new(snapshot_bytes))?;
        let mut partitioner = snap.partitioner;

        let mut stats = RecoveryStats {
            snapshot_bytes: snapshot_len,
            batches_replayed: 0,
            truncated_bytes: 0,
            torn_tail: false,
        };
        let mut journal_clean = false;
        if journal_path.exists() {
            let journal_bytes = fs::read(&journal_path)?;
            let journal_len = journal_bytes.len() as u64;
            let scan = scan_journal(&MemorySource::new(journal_bytes))?;
            if scan.epoch == snap.epoch {
                for batch in &scan.batches {
                    partitioner
                        .apply(batch)
                        .map_err(|e| corrupt(format!("journal replay rejected a batch: {e}")))?;
                }
                stats.batches_replayed = scan.batches.len();
                stats.truncated_bytes = journal_len - scan.valid_bytes;
                stats.torn_tail = scan.torn;
                journal_clean = !scan.torn && scan.batches.is_empty();
            }
            // A mismatched epoch is the crash window between the snapshot
            // and journal renames of a rotation: the journal's records are
            // already folded into this snapshot. Ignore it (and rotate
            // below so the stale file is replaced).
        }

        let mut state = Self {
            dir,
            journal: None,
            epoch: snap.epoch,
            pending: 0,
            metrics: StateDirMetrics::default(),
        };
        if journal_clean {
            // Snapshot and an empty, intact journal of the same epoch:
            // nothing to repair, just reopen the append handle.
            state.journal = Some(OpenOptions::new().append(true).open(&journal_path)?);
        } else {
            // Replayed records, a torn tail, a stale-epoch journal or no
            // journal at all: fold everything into a fresh snapshot and
            // rotate, so the repaired state is durable and the damaged
            // bytes can never be re-read.
            state.write_snapshot(&snap.meta, &partitioner)?;
        }
        let recovered = Recovered {
            meta: snap.meta,
            partitioner,
            stats,
        };
        Ok((state, Some(recovered)))
    }

    /// Binds persistence latency instrumentation to `registry`:
    /// `dynamic.journal.append_us` (full append), `dynamic.journal.fsync_us`
    /// (the sync portion) and `dynamic.snapshot.fold_us` (snapshot
    /// fold-and-rotate).
    pub fn set_registry(&mut self, registry: &Registry) {
        self.metrics = StateDirMetrics {
            append_us: registry.histogram("dynamic.journal.append_us"),
            fsync_us: registry.histogram("dynamic.journal.fsync_us"),
            fold_us: registry.histogram("dynamic.snapshot.fold_us"),
        };
    }

    /// The directory this state lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Epoch of the current snapshot/journal pair.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches appended since the last snapshot — the caller's cue to
    /// [`StateDir::write_snapshot`] once the replay tail gets long.
    pub fn batches_since_snapshot(&self) -> u64 {
        self.pending
    }

    /// Appends one accepted batch to the journal and syncs it to disk
    /// before returning — once this answers `Ok`, the batch survives a
    /// crash. Must follow an initial [`StateDir::write_snapshot`].
    pub fn append(&mut self, updates: &[GraphUpdate]) -> Result<(), JournalError> {
        let append_span = self.metrics.append_us.span();
        let journal = self.journal.as_mut().ok_or_else(|| {
            JournalError::Io("journal append before the first snapshot".to_string())
        })?;
        let payload = encode_batch(updates);
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(JournalError::Io(format!(
                "batch encodes to {} bytes, over the {MAX_RECORD_BYTES}-byte record cap",
                payload.len()
            )));
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        journal.write_all(&record)?;
        journal.flush()?;
        let fsync_span = self.metrics.fsync_us.span();
        journal.sync_data()?;
        fsync_span.finish();
        self.pending += 1;
        append_span.finish();
        Ok(())
    }

    /// Writes a new snapshot of `partitioner` (with the caller's opaque
    /// `meta` blob) and rotates the journal to a fresh epoch. See the
    /// module docs for why this ordering is crash-safe at every point.
    pub fn write_snapshot(
        &mut self,
        meta: &[u8],
        partitioner: &DynamicPartitioner,
    ) -> Result<(), JournalError> {
        let fold_span = self.metrics.fold_us.span();
        let new_epoch = self.epoch + 1;

        // 1. The next journal, empty, under a scratch name.
        let journal_tmp = self.dir.join(JOURNAL_TMP);
        let mut new_journal = File::create(&journal_tmp)?;
        new_journal.write_all(JOURNAL_MAGIC)?;
        new_journal.write_all(&new_epoch.to_le_bytes())?;
        new_journal.sync_all()?;

        // 2. The snapshot, atomically renamed into place.
        let snapshot_tmp = self.dir.join(SNAPSHOT_TMP);
        let bytes = encode_snapshot(new_epoch, meta, partitioner);
        let mut f = File::create(&snapshot_tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&snapshot_tmp, self.dir.join(SNAPSHOT_FILE))?;

        // 3. The journal rename. A crash before this leaves the old
        // journal with a mismatched epoch — ignored on recovery.
        fs::rename(&journal_tmp, self.dir.join(JOURNAL_FILE))?;

        // Make the renames themselves durable (best effort: directory
        // fsync is not supported everywhere).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        self.journal = Some(new_journal);
        self.epoch = new_epoch;
        self.pending = 0;
        fold_span.finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_storage::FaultySource;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hpraw-journal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn partitioner() -> DynamicPartitioner {
        let hg = mesh_hypergraph(&MeshConfig::new(60, 6));
        let partition = Partition::round_robin(hg.num_vertices(), 4);
        let cfg = DynamicConfig {
            config: HyperPrawConfig {
                max_iterations: 4,
                ..HyperPrawConfig::default()
            },
            ..DynamicConfig::default()
        };
        DynamicPartitioner::new(&hg, partition, CostMatrix::uniform(4), cfg).unwrap()
    }

    fn batch(i: u32) -> Vec<GraphUpdate> {
        vec![
            GraphUpdate::AddVertex {
                weight: 1.0 + f64::from(i),
            },
            GraphUpdate::AddHyperedge {
                pins: vec![i % 7, i % 13 + 7, i % 11 + 20],
                weight: 1.0,
            },
            GraphUpdate::RemovePin {
                edge: i % 5,
                vertex: 40 + i % 3,
            },
        ]
    }

    fn assert_same(a: &DynamicPartitioner, b: &DynamicPartitioner) {
        assert_eq!(a.partition().assignment(), b.partition().assignment());
        assert_eq!(a.loads(), b.loads());
        assert!(a.graph() == b.graph(), "mutable hypergraphs differ");
    }

    #[test]
    fn batches_round_trip_every_variant() {
        let updates = vec![
            GraphUpdate::AddVertex { weight: 2.5 },
            GraphUpdate::RemoveVertex { vertex: 3 },
            GraphUpdate::AddHyperedge {
                pins: vec![0, 5, u32::MAX - 1],
                weight: 0.25,
            },
            GraphUpdate::RemoveHyperedge { edge: 7 },
            GraphUpdate::AddPin { edge: 1, vertex: 2 },
            GraphUpdate::RemovePin { edge: 4, vertex: 9 },
        ];
        let payload = encode_batch(&updates);
        assert_eq!(decode_batch(&payload).unwrap(), updates);
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut padded = payload;
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }

    #[test]
    fn snapshots_round_trip_bit_identically() {
        let mut live = partitioner();
        live.apply(&batch(0)).unwrap();
        live.apply(&batch(1)).unwrap();
        let bytes = encode_snapshot(7, b"meta-blob", &live);
        let snap = read_snapshot(&MemorySource::new(bytes)).unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.meta, b"meta-blob");
        let mut resumed = snap.partitioner;
        assert_same(&live, &resumed);
        // And the two keep agreeing on future work.
        let out_a = live.apply(&batch(2)).unwrap();
        let out_b = resumed.apply(&batch(2)).unwrap();
        assert_eq!(out_a.new_vertices, out_b.new_vertices);
        assert_same(&live, &resumed);
    }

    #[test]
    fn snapshot_corruption_is_always_detected() {
        let live = partitioner();
        let bytes = encode_snapshot(1, b"", &live);
        // Flip one byte at a time across a sample of offsets: every
        // position must yield Err, never a panic or silent success.
        for offset in (0..bytes.len()).step_by(97) {
            let source =
                FaultySource::new(MemorySource::new(bytes.clone())).flip_bits(offset as u64, 0x10);
            assert!(
                read_snapshot(&source).is_err(),
                "flip at {offset} undetected"
            );
        }
        assert!(read_snapshot(&MemorySource::new(bytes)).is_ok());
    }

    #[test]
    fn state_dir_persists_and_recovers() {
        let dir = tmpdir("persist");
        let (mut store, recovered) = StateDir::open(&dir).unwrap();
        assert!(recovered.is_none());

        let mut live = partitioner();
        store.write_snapshot(b"m", &live).unwrap();
        for i in 0..3 {
            live.apply(&batch(i)).unwrap();
            store.append(&batch(i)).unwrap();
        }
        assert_eq!(store.batches_since_snapshot(), 3);
        drop(store);

        let (store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        assert_eq!(rec.meta, b"m");
        assert_eq!(rec.stats.batches_replayed, 3);
        assert!(!rec.stats.torn_tail);
        assert_eq!(rec.stats.truncated_bytes, 0);
        assert_same(&live, &rec.partitioner);
        // Recovery folded the tail into a fresh snapshot + rotated epoch.
        assert_eq!(store.batches_since_snapshot(), 0);
        drop(store);

        // A second open finds the folded snapshot and an empty journal.
        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        assert_eq!(rec.stats.batches_replayed, 0);
        assert_same(&live, &rec.partitioner);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tails_are_truncated_not_replayed() {
        let dir = tmpdir("torn");
        let (mut store, _) = StateDir::open(&dir).unwrap();
        let mut live = partitioner();
        store.write_snapshot(b"", &live).unwrap();
        live.apply(&batch(0)).unwrap();
        store.append(&batch(0)).unwrap();
        drop(store);

        // A crash mid-append leaves a partial record at the tail.
        let journal = dir.join("journal.log");
        let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(&[0x55; 11]).unwrap();
        drop(f);

        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        assert!(rec.stats.torn_tail);
        assert_eq!(rec.stats.truncated_bytes, 11);
        assert_eq!(rec.stats.batches_replayed, 1);
        assert_same(&live, &rec.partitioner);

        // The rotation replaced the damaged journal entirely.
        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        assert!(!rec.stats.torn_tail);
        assert_eq!(rec.stats.batches_replayed, 0);
        assert_same(&live, &rec.partitioner);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_records_stop_replay_at_the_damage() {
        let dir = tmpdir("fliprec");
        let (mut store, _) = StateDir::open(&dir).unwrap();
        let mut live = partitioner();
        store.write_snapshot(b"", &live).unwrap();
        let mut at_snapshot = partitioner();
        for i in 0..2 {
            live.apply(&batch(i)).unwrap();
            at_snapshot.apply(&batch(i)).unwrap();
            store.append(&batch(i)).unwrap();
        }
        drop(store);

        // Flip a bit inside the *first* record's payload: replay must
        // stop before it, applying zero batches.
        let journal = dir.join("journal.log");
        let mut bytes = fs::read(&journal).unwrap();
        bytes[JOURNAL_HEADER_BYTES as usize + 8 + 2] ^= 0x04;
        fs::write(&journal, &bytes).unwrap();

        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        assert!(rec.stats.torn_tail);
        assert_eq!(rec.stats.batches_replayed, 0);
        assert!(rec.stats.truncated_bytes > 0);
        let snapshot_only = partitioner();
        assert_same(&snapshot_only, &rec.partitioner);
        let _ = at_snapshot;
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_epoch_journals_are_ignored() {
        let dir = tmpdir("epoch");
        let (mut store, _) = StateDir::open(&dir).unwrap();
        let mut live = partitioner();
        store.write_snapshot(b"", &live).unwrap();
        live.apply(&batch(0)).unwrap();
        store.append(&batch(0)).unwrap();
        // Fold the batch into a new snapshot, then simulate the crash
        // window between the two renames of the *next* rotation by
        // restoring an old-epoch journal with a record in it.
        store.write_snapshot(b"", &live).unwrap();
        let old_epoch = store.epoch() - 1;
        drop(store);
        let journal = dir.join("journal.log");
        let mut f = File::create(&journal).unwrap();
        f.write_all(JOURNAL_MAGIC).unwrap();
        f.write_all(&old_epoch.to_le_bytes()).unwrap();
        let payload = encode_batch(&batch(0));
        f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        f.write_all(&crc32(&payload).to_le_bytes()).unwrap();
        f.write_all(&payload).unwrap();
        drop(f);

        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.unwrap();
        // The stale record must NOT be applied a second time.
        assert_eq!(rec.stats.batches_replayed, 0);
        assert!(!rec.stats.torn_tail);
        assert_same(&live, &rec.partitioner);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_without_snapshot_resets_cleanly() {
        let dir = tmpdir("orphan");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.log"), b"HPJLOG01xxxxxxxx").unwrap();
        let (store, recovered) = StateDir::open(&dir).unwrap();
        assert!(recovered.is_none());
        assert!(!dir.join("journal.log").exists());
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }
}
