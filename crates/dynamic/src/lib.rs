//! Incremental repartitioning for HyperPRAW.
//!
//! The static drivers answer one question — *given this hypergraph, where
//! does every vertex go?* — and forget everything afterwards. This crate
//! answers the production follow-up: the hypergraph just changed a little,
//! and repartitioning from scratch would both waste work and wreck data
//! locality by moving vertices that had no reason to move.
//!
//! [`DynamicPartitioner`] stays resident. It owns a
//! [`MutableHypergraph`](hyperpraw_hypergraph::MutableHypergraph), the
//! current assignment with its per-part load accounting, and the
//! precomputed
//! [`NeighborAdjacency`](hyperpraw_hypergraph::NeighborAdjacency). Each
//! call to [`DynamicPartitioner::apply`] takes a batch of [`GraphUpdate`]s
//! and:
//!
//! 1. applies the mutations (atomically — a bad update rejects the whole
//!    batch),
//! 2. patches the adjacency entries of every touched vertex in place,
//!    falling back to a full rebuild once the patched fraction passes the
//!    configured staleness threshold,
//! 3. computes the **dirty set** — the touched vertices plus their
//!    distinct-neighbour ring — and restreams *only* that set through the
//!    shared restreaming engine
//!    ([`Engine::run_warm`](hyperpraw_core::engine::Engine::run_warm)),
//!    warm-started from the current assignment under the same α-tempering,
//!    tolerance and comm-cost stopping rules as a cold run,
//! 4. reports what it did as an [`UpdateOutcome`], including the paper's
//!    architecture-aware migration cost: vertices moved and
//!    cost-matrix-weighted bytes moved.
//!
//! Untouched vertices are never revisited, so an update batch touching 1%
//! of the graph costs a small fraction of a full repartition (see
//! `benches/dynamic.rs`) while the partition keeps the same quality
//! guarantees on the region that changed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod journal;
mod partitioner;
mod update;

pub use journal::{JournalError, Recovered, RecoveryStats, StateDir};
pub use partitioner::{DynamicConfig, DynamicPartitioner, MigrationStats, UpdateOutcome};
pub use update::{DynamicError, GraphUpdate};
