//! Property-based dirty-set correctness tests.
//!
//! The incremental path maintains its snapshot, adjacency and loads in
//! place across update batches; these properties pin it against an
//! independent from-scratch oracle. The oracle below deliberately does NOT
//! reuse `MutableHypergraph`: it tracks plain pin/weight vectors and
//! rebuilds the final hypergraph through `HypergraphBuilder`, so a
//! bookkeeping bug in the incremental structures cannot cancel itself out
//! of the comparison.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperpraw_core::metrics::partitioning_communication_cost;
use hyperpraw_core::{CostMatrix, HyperPraw, HyperPrawConfig};
use hyperpraw_dynamic::{DynamicConfig, DynamicPartitioner, GraphUpdate};
use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::{metrics, Hypergraph, HypergraphBuilder, VertexId};

/// From-scratch model of the evolving hypergraph: plain vectors, mutated
/// with the same tombstone semantics the dynamic layer promises.
struct Oracle {
    vertex_weights: Vec<f64>,
    vertex_alive: Vec<bool>,
    edges: Vec<(Vec<VertexId>, f64)>,
    edge_alive: Vec<bool>,
}

impl Oracle {
    fn of(hg: &Hypergraph) -> Self {
        Self {
            vertex_weights: (0..hg.num_vertices())
                .map(|v| hg.vertex_weight(v as VertexId))
                .collect(),
            vertex_alive: vec![true; hg.num_vertices()],
            edges: (0..hg.num_hyperedges())
                .map(|e| (hg.pins(e as u32).to_vec(), hg.edge_weight(e as u32)))
                .collect(),
            edge_alive: vec![true; hg.num_hyperedges()],
        }
    }

    fn apply(&mut self, update: &GraphUpdate) {
        match update {
            GraphUpdate::AddVertex { weight } => {
                self.vertex_weights.push(*weight);
                self.vertex_alive.push(true);
            }
            GraphUpdate::RemoveVertex { vertex } => {
                let v = *vertex as usize;
                self.vertex_alive[v] = false;
                self.vertex_weights[v] = 0.0;
                for (pins, _) in &mut self.edges {
                    pins.retain(|&u| u != *vertex);
                }
            }
            GraphUpdate::AddHyperedge { pins, weight } => {
                let mut pins = pins.clone();
                pins.sort_unstable();
                pins.dedup();
                self.edges.push((pins, *weight));
                self.edge_alive.push(true);
            }
            GraphUpdate::RemoveHyperedge { edge } => {
                self.edges[*edge as usize].0.clear();
                self.edge_alive[*edge as usize] = false;
            }
            GraphUpdate::AddPin { edge, vertex } => {
                let pins = &mut self.edges[*edge as usize].0;
                if !pins.contains(vertex) {
                    pins.push(*vertex);
                    pins.sort_unstable();
                }
            }
            GraphUpdate::RemovePin { edge, vertex } => {
                self.edges[*edge as usize].0.retain(|&u| u != *vertex);
            }
        }
    }

    fn build(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::with_capacity(self.vertex_weights.len(), self.edges.len());
        b.name("prop".to_string());
        for (pins, w) in &self.edges {
            b.add_weighted_hyperedge(pins.iter().copied(), *w);
        }
        for (v, &w) in self.vertex_weights.iter().enumerate() {
            if w != 1.0 {
                b.set_vertex_weight(v as VertexId, w);
            }
        }
        b.build()
    }

    fn live_vertices(&self) -> Vec<VertexId> {
        (0..self.vertex_alive.len())
            .filter(|&v| self.vertex_alive[v])
            .map(|v| v as VertexId)
            .collect()
    }

    fn live_edges(&self) -> Vec<u32> {
        (0..self.edge_alive.len())
            .filter(|&e| self.edge_alive[e])
            .map(|e| e as u32)
            .collect()
    }
}

/// Draws one valid update against the oracle's current state, then applies
/// it to the oracle so the next draw stays valid.
fn draw_update(rng: &mut StdRng, oracle: &mut Oracle) -> Option<GraphUpdate> {
    let live_v = oracle.live_vertices();
    let live_e = oracle.live_edges();
    let update = match rng.gen_range(0usize..6) {
        0 => GraphUpdate::AddVertex {
            weight: rng.gen_range(1.0f64..3.0),
        },
        1 if live_v.len() > 4 => GraphUpdate::RemoveVertex {
            vertex: live_v[rng.gen_range(0usize..live_v.len())],
        },
        2 if live_v.len() >= 2 => {
            let count = rng.gen_range(2usize..5.min(live_v.len() + 1));
            let pins = (0..count)
                .map(|_| live_v[rng.gen_range(0usize..live_v.len())])
                .collect();
            GraphUpdate::AddHyperedge { pins, weight: 1.0 }
        }
        3 if live_e.len() > 2 => GraphUpdate::RemoveHyperedge {
            edge: live_e[rng.gen_range(0usize..live_e.len())],
        },
        4 if !live_e.is_empty() && !live_v.is_empty() => GraphUpdate::AddPin {
            edge: live_e[rng.gen_range(0usize..live_e.len())],
            vertex: live_v[rng.gen_range(0usize..live_v.len())],
        },
        5 if !live_e.is_empty() => {
            let edge = live_e[rng.gen_range(0usize..live_e.len())];
            let pins = &oracle.edges[edge as usize].0;
            if pins.is_empty() {
                return None;
            }
            GraphUpdate::RemovePin {
                edge,
                vertex: pins[rng.gen_range(0usize..pins.len())],
            }
        }
        _ => return None,
    };
    oracle.apply(&update);
    Some(update)
}

fn seeded_instance(n: usize, e: usize, p: u32, seed: u64) -> (Hypergraph, DynamicPartitioner) {
    let hg = random_hypergraph(&RandomConfig {
        num_vertices: n,
        num_hyperedges: e,
        cardinality: CardinalityDist::Uniform { min: 2, max: 5 },
        seed,
        name: "prop".into(),
    });
    let cost = CostMatrix::uniform(p as usize);
    let config = HyperPrawConfig {
        max_iterations: 30,
        ..HyperPrawConfig::default().with_seed(seed)
    };
    let cold = HyperPraw::new(config, cost.clone()).partition(&hg);
    let cfg = DynamicConfig {
        config,
        ..DynamicConfig::default()
    };
    let dp = DynamicPartitioner::new(&hg, cold.partition, cost, cfg).unwrap();
    (hg, dp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn empty_batches_are_bit_identical_no_ops(
        n in 40usize..120,
        e in 20usize..80,
        p in 2u32..6,
        seed in 0u64..100,
    ) {
        let (hg, mut dp) = seeded_instance(n, e, p, seed);
        let before_assignment = dp.partition().assignment().to_vec();
        let before_loads = dp.loads().to_vec();
        let outcome = dp.apply(&[]).unwrap();
        prop_assert_eq!(outcome.migration.vertices_moved, 0);
        prop_assert_eq!(outcome.dirty_vertices, 0);
        prop_assert_eq!(outcome.iterations, 0);
        prop_assert_eq!(dp.partition().assignment(), &before_assignment[..]);
        prop_assert_eq!(dp.loads(), &before_loads[..]);
        prop_assert_eq!(dp.hypergraph(), &hg);
    }

    #[test]
    fn incremental_state_matches_the_from_scratch_oracle(
        n in 40usize..120,
        e in 20usize..80,
        p in 2u32..6,
        seed in 0u64..100,
        batches in 1usize..4,
        batch_size in 1usize..12,
    ) {
        let (hg, mut dp) = seeded_instance(n, e, p, seed);
        let mut oracle = Oracle::of(&hg);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let mut last = None;
        for _ in 0..batches {
            let mut batch = Vec::new();
            for _ in 0..batch_size {
                if let Some(u) = draw_update(&mut rng, &mut oracle) {
                    batch.push(u);
                }
            }
            last = Some(dp.apply(&batch).unwrap());
        }

        // The incrementally maintained snapshot must equal a hypergraph
        // rebuilt from scratch out of the oracle's plain vectors.
        let expected = oracle.build();
        prop_assert_eq!(dp.hypergraph(), &expected);

        // Reported quality must equal a from-scratch evaluation of the
        // final hypergraph + assignment: imbalance via exact part loads,
        // comm cost via the traversal-based metric (no adjacency reuse),
        // and the cut metrics agree on both structures by construction.
        let outcome = last.unwrap();
        let imbalance = dp.partition().imbalance(&expected).unwrap();
        prop_assert!((outcome.imbalance - imbalance).abs() < 1e-9,
            "incremental imbalance {} vs oracle {}", outcome.imbalance, imbalance);
        let cost = dp.cost().clone();
        let comm = partitioning_communication_cost(&expected, dp.partition(), &cost);
        prop_assert!((outcome.comm_cost - comm).abs() < 1e-6,
            "incremental comm cost {} vs oracle {}", outcome.comm_cost, comm);
        prop_assert_eq!(
            metrics::hyperedge_cut(dp.hypergraph(), dp.partition()),
            metrics::hyperedge_cut(&expected, dp.partition())
        );
        // Loads the partitioner carries forward are exact.
        let loads = dp.partition().part_loads(&expected).unwrap();
        prop_assert_eq!(dp.loads(), &loads[..]);
    }
}
