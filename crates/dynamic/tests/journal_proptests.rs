//! Crash-safety properties of the snapshot + write-ahead journal.
//!
//! Two invariants pin the durability layer:
//!
//! 1. **Bit-identical recovery** — after any sequence of accepted update
//!    batches, reopening the state directory reconstructs a partitioner
//!    whose assignment, loads and hypergraph equal the live one, and
//!    which stays equal under further batches (the restream is
//!    deterministic, so matching state implies matching futures).
//! 2. **Clean-prefix recovery under damage** — truncating or bit-flipping
//!    the journal tail anywhere past the header never makes recovery
//!    fail and never replays damaged data: the recovered state always
//!    equals the snapshot plus an exact *prefix* of the accepted batches,
//!    and the fold-on-recovery makes a second reopen byte-stable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

use hyperpraw_core::{CostMatrix, HyperPraw, HyperPrawConfig};
use hyperpraw_dynamic::journal::{read_snapshot, JOURNAL_HEADER_BYTES};
use hyperpraw_dynamic::{DynamicConfig, DynamicPartitioner, GraphUpdate, StateDir};
use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_storage::MemorySource;

fn tmpdir(tag: &str, a: u64, b: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hpraw-journal-prop-{}-{tag}-{a}-{b}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn seeded_instance(n: usize, e: usize, p: u32, seed: u64) -> DynamicPartitioner {
    let hg = random_hypergraph(&RandomConfig {
        num_vertices: n,
        num_hyperedges: e,
        cardinality: CardinalityDist::Uniform { min: 2, max: 5 },
        seed,
        name: "journal-prop".into(),
    });
    let cost = CostMatrix::uniform(p as usize);
    let config = HyperPrawConfig {
        max_iterations: 10,
        ..HyperPrawConfig::default().with_seed(seed)
    };
    let cold = HyperPraw::new(config, cost.clone()).partition(&hg);
    let cfg = DynamicConfig {
        config,
        ..DynamicConfig::default()
    };
    DynamicPartitioner::new(&hg, cold.partition, cost, cfg).unwrap()
}

/// Minimal liveness tracker so randomly drawn updates stay valid against
/// the evolving graph (the dynamic layer rejects whole batches on any
/// invalid update, which would starve the property of coverage).
struct LiveSets {
    vertex_alive: Vec<bool>,
    pins: Vec<Vec<u32>>,
    edge_alive: Vec<bool>,
}

impl LiveSets {
    fn of(p: &DynamicPartitioner) -> Self {
        let hg = p.hypergraph();
        Self {
            vertex_alive: vec![true; hg.num_vertices()],
            pins: (0..hg.num_hyperedges())
                .map(|e| hg.pins(e as u32).to_vec())
                .collect(),
            edge_alive: vec![true; hg.num_hyperedges()],
        }
    }

    fn live_vertices(&self) -> Vec<u32> {
        (0..self.vertex_alive.len() as u32)
            .filter(|&v| self.vertex_alive[v as usize])
            .collect()
    }

    fn live_edges(&self) -> Vec<u32> {
        (0..self.edge_alive.len() as u32)
            .filter(|&e| self.edge_alive[e as usize])
            .collect()
    }

    fn draw(&mut self, rng: &mut StdRng) -> Option<GraphUpdate> {
        let live_v = self.live_vertices();
        let live_e = self.live_edges();
        let update = match rng.gen_range(0usize..6) {
            0 => {
                self.vertex_alive.push(true);
                GraphUpdate::AddVertex {
                    weight: rng.gen_range(1.0f64..3.0),
                }
            }
            1 if live_v.len() > 8 => {
                let vertex = live_v[rng.gen_range(0usize..live_v.len())];
                self.vertex_alive[vertex as usize] = false;
                for pins in &mut self.pins {
                    pins.retain(|&u| u != vertex);
                }
                GraphUpdate::RemoveVertex { vertex }
            }
            2 if live_v.len() >= 2 => {
                let count = rng.gen_range(2usize..5.min(live_v.len() + 1));
                let mut pins: Vec<u32> = (0..count)
                    .map(|_| live_v[rng.gen_range(0usize..live_v.len())])
                    .collect();
                let raw = pins.clone();
                pins.sort_unstable();
                pins.dedup();
                self.pins.push(pins);
                self.edge_alive.push(true);
                GraphUpdate::AddHyperedge {
                    pins: raw,
                    weight: 1.0,
                }
            }
            3 if live_e.len() > 2 => {
                let edge = live_e[rng.gen_range(0usize..live_e.len())];
                self.pins[edge as usize].clear();
                self.edge_alive[edge as usize] = false;
                GraphUpdate::RemoveHyperedge { edge }
            }
            4 if !live_e.is_empty() && !live_v.is_empty() => {
                let edge = live_e[rng.gen_range(0usize..live_e.len())];
                let vertex = live_v[rng.gen_range(0usize..live_v.len())];
                let pins = &mut self.pins[edge as usize];
                if !pins.contains(&vertex) {
                    pins.push(vertex);
                    pins.sort_unstable();
                }
                GraphUpdate::AddPin { edge, vertex }
            }
            5 if !live_e.is_empty() => {
                let edge = live_e[rng.gen_range(0usize..live_e.len())];
                let pins = &mut self.pins[edge as usize];
                if pins.is_empty() {
                    return None;
                }
                let vertex = pins[rng.gen_range(0usize..pins.len())];
                pins.retain(|&u| u != vertex);
                GraphUpdate::RemovePin { edge, vertex }
            }
            _ => return None,
        };
        Some(update)
    }

    fn draw_batch(&mut self, rng: &mut StdRng, size: usize) -> Vec<GraphUpdate> {
        let mut batch = Vec::new();
        for _ in 0..size {
            if let Some(u) = self.draw(rng) {
                batch.push(u);
            }
        }
        batch
    }
}

fn assert_same(a: &DynamicPartitioner, b: &DynamicPartitioner) -> Result<(), String> {
    prop_assert_eq!(
        a.partition().assignment(),
        b.partition().assignment(),
        "assignments diverged"
    );
    prop_assert_eq!(a.loads(), b.loads(), "loads diverged");
    prop_assert!(a.graph() == b.graph(), "hypergraphs diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovery_is_bit_identical_after_arbitrary_batches(
        n in 40usize..100,
        e in 20usize..60,
        p in 2u32..5,
        seed in 0u64..40,
        batches in 1usize..5,
        batch_size in 1usize..8,
    ) {
        let dir = tmpdir("roundtrip", seed, (n * 1000 + e) as u64);
        let mut live = seeded_instance(n, e, p, seed);
        let mut sets = LiveSets::of(&live);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));

        let (mut store, recovered) = StateDir::open(&dir).unwrap();
        prop_assert!(recovered.is_none(), "fresh directory holds no session");
        store.write_snapshot(b"opaque-meta", &live).unwrap();

        let mut accepted = 0usize;
        for _ in 0..batches {
            let batch = sets.draw_batch(&mut rng, batch_size);
            live.apply(&batch).unwrap();
            store.append(&batch).unwrap();
            accepted += 1;
        }
        prop_assert_eq!(store.batches_since_snapshot(), accepted as u64);
        drop(store);

        // Recovery replays every journaled batch onto the snapshot.
        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.expect("persisted session recovered");
        prop_assert_eq!(&rec.meta[..], b"opaque-meta");
        prop_assert_eq!(rec.stats.batches_replayed, accepted);
        prop_assert!(!rec.stats.torn_tail);
        prop_assert_eq!(rec.stats.truncated_bytes, 0);
        assert_same(&live, &rec.partitioner)?;

        // Matching state implies matching futures: one more batch lands
        // identically on both (the restream is deterministic).
        let mut recovered_p = rec.partitioner;
        let batch = sets.draw_batch(&mut rng, batch_size.max(1));
        live.apply(&batch).unwrap();
        recovered_p.apply(&batch).unwrap();
        assert_same(&live, &recovered_p)?;

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_journal_tails_recover_a_clean_prefix(
        n in 40usize..100,
        e in 20usize..60,
        p in 2u32..5,
        seed in 0u64..40,
        batch_size in 1usize..8,
        damage_kind in 0usize..2,
        damage_frac in 0.0f64..1.0,
    ) {
        let dir = tmpdir("damage", seed, (n * 1000 + e + damage_kind * 7) as u64);
        let mut live = seeded_instance(n, e, p, seed);
        let mut sets = LiveSets::of(&live);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(5));

        let (mut store, _) = StateDir::open(&dir).unwrap();
        store.write_snapshot(b"m", &live).unwrap();
        let snapshot_bytes = fs::read(dir.join("snapshot.bin")).unwrap();

        let mut accepted: Vec<Vec<GraphUpdate>> = Vec::new();
        for _ in 0..4 {
            let batch = sets.draw_batch(&mut rng, batch_size);
            live.apply(&batch).unwrap();
            store.append(&batch).unwrap();
            accepted.push(batch);
        }
        drop(store);

        // Damage the journal tail anywhere strictly past the header:
        // either tear the file (partial final write) or flip one bit
        // (lying disk). Neither may ever surface damaged batches.
        let journal_path = dir.join("journal.log");
        let mut journal = fs::read(&journal_path).unwrap();
        let header = JOURNAL_HEADER_BYTES as usize;
        prop_assert!(journal.len() > header + 1);
        let offset = header
            + 1
            + ((journal.len() - header - 2) as f64 * damage_frac) as usize;
        if damage_kind == 0 {
            journal.truncate(offset);
        } else {
            journal[offset] ^= 0x10;
        }
        fs::write(&journal_path, &journal).unwrap();

        let (_store, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.expect("damage never loses the snapshot");
        prop_assert!(rec.stats.batches_replayed <= accepted.len());
        prop_assert!(
            rec.stats.batches_replayed < accepted.len(),
            "damage strictly inside the record region must drop at least the last batch"
        );

        // The recovered state is exactly snapshot + a prefix of the
        // accepted batches — never a damaged or reordered replay.
        let decoded = read_snapshot(&MemorySource::new(snapshot_bytes)).unwrap();
        let mut expected = decoded.partitioner;
        for batch in &accepted[..rec.stats.batches_replayed] {
            expected.apply(batch).unwrap();
        }
        assert_same(&expected, &rec.partitioner)?;

        // Recovery folded the surviving prefix into a fresh snapshot and
        // rotated the journal: a second reopen is clean and replays
        // nothing, yet yields the same state.
        let (_store, second) = StateDir::open(&dir).unwrap();
        let second = second.expect("folded snapshot persists");
        prop_assert_eq!(second.stats.batches_replayed, 0);
        prop_assert!(!second.stats.torn_tail);
        assert_same(&expected, &second.partitioner)?;

        let _ = fs::remove_dir_all(&dir);
    }
}
