//! The HyperPRAW restreaming driver (Algorithm 1).

use hyperpraw_hypergraph::{Hypergraph, Partition};
use hyperpraw_topology::CostMatrix;

use crate::history::{IterationRecord, PartitionHistory, StreamPhase};
use crate::metrics::partitioning_communication_cost;
use crate::state::StreamingState;
use crate::stream::{stream_order, stream_pass};
use crate::{HyperPrawConfig, RefinementPolicy};

/// Why the restreaming loop stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The imbalance tolerance was reached and the configuration requested
    /// no refinement (the GraSP-style stopping rule).
    ToleranceReached,
    /// The refinement phase stopped because the partitioning communication
    /// cost ceased to improve; the previous (better) partition is returned.
    CommCostConverged,
    /// The iteration limit `N` was exhausted.
    MaxIterations,
}

/// The output of a HyperPRAW run.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// The selected vertex-to-partition assignment.
    pub partition: Partition,
    /// Per-stream history (empty unless `track_history` is enabled).
    pub history: PartitionHistory,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of streams executed.
    pub iterations: usize,
    /// The `α` value in effect when the run stopped.
    pub final_alpha: f64,
    /// Partitioning communication cost of the returned partition.
    pub comm_cost: f64,
    /// Imbalance of the returned partition.
    pub imbalance: f64,
}

/// The HyperPRAW restreaming partitioner.
///
/// The number of partitions equals the size of the communication-cost
/// matrix: one partition per compute unit of the target machine.
/// HyperPRAW-aware is obtained by passing a profiled cost matrix
/// ([`CostMatrix::from_bandwidth`]); HyperPRAW-basic by passing
/// [`CostMatrix::uniform`].
#[derive(Clone, Debug)]
pub struct HyperPraw {
    config: HyperPrawConfig,
    cost: CostMatrix,
}

impl HyperPraw {
    /// Creates a partitioner with the given configuration and cost matrix.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: HyperPrawConfig, cost: CostMatrix) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid HyperPRAW configuration: {e}"));
        Self { config, cost }
    }

    /// The architecture-aware variant: uses a profiled cost matrix.
    pub fn aware(config: HyperPrawConfig, cost: CostMatrix) -> Self {
        Self::new(config, cost)
    }

    /// The architecture-oblivious variant: a uniform cost matrix over `p`
    /// compute units.
    pub fn basic(config: HyperPrawConfig, p: u32) -> Self {
        Self::new(config, CostMatrix::uniform(p as usize))
    }

    /// Number of partitions (compute units).
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// The configuration in use.
    pub fn config(&self) -> &HyperPrawConfig {
        &self.config
    }

    /// The communication-cost matrix in use.
    pub fn cost_matrix(&self) -> &CostMatrix {
        &self.cost
    }

    /// Runs the restreaming algorithm on a hypergraph.
    pub fn partition(&self, hg: &Hypergraph) -> PartitionResult {
        let p = self.num_partitions();
        assert!(p > 0, "cost matrix must cover at least one compute unit");
        let config = &self.config;

        // Initialise: round-robin assignment, FENNEL α.
        let mut state = StreamingState::round_robin(hg, p);
        let mut alpha = config.starting_alpha(p, hg.num_vertices(), hg.num_hyperedges());
        let order = stream_order(hg, config.stream_order, config.seed);

        let mut history = PartitionHistory::new();
        // Best feasible (within-tolerance) partition seen so far and its cost.
        let mut previous_feasible: Option<(Partition, f64)> = None;
        let mut stop_reason = StopReason::MaxIterations;
        let mut iterations = 0usize;

        for n in 1..=config.max_iterations {
            iterations = n;
            let outcome = stream_pass(hg, &mut state, &self.cost, alpha, &order);
            let imbalance = state.imbalance();
            let comm_cost = partitioning_communication_cost(hg, state.partition(), &self.cost);
            let feasible = imbalance <= config.imbalance_tolerance + 1e-12;
            let phase = if feasible {
                StreamPhase::Refinement
            } else {
                StreamPhase::Tempering
            };
            if config.track_history {
                history.push(IterationRecord {
                    iteration: n,
                    phase,
                    alpha,
                    imbalance,
                    comm_cost,
                    moved_vertices: outcome.moved,
                });
            }

            if !feasible {
                // Still outside tolerance: temper α upwards and re-stream.
                alpha *= config.tempering_factor;
                continue;
            }

            match config.refinement {
                RefinementPolicy::None => {
                    // GraSP-style: stop as soon as the tolerance is met.
                    stop_reason = StopReason::ToleranceReached;
                    previous_feasible = Some((state.partition().clone(), comm_cost));
                    break;
                }
                RefinementPolicy::Factor(factor) => {
                    // Refinement phase: keep streaming while the partitioning
                    // communication cost improves; roll back to the previous
                    // feasible partition when it gets worse (Algorithm 1's
                    // `Cost of Pⁿ > Cost of Pⁿ⁻¹` test). A stream that moved
                    // no vertex is a fixed point: further streams would
                    // repeat it verbatim, so stop there too.
                    if let Some((_, previous_cost)) = &previous_feasible {
                        if comm_cost > *previous_cost {
                            stop_reason = StopReason::CommCostConverged;
                            break;
                        }
                    }
                    previous_feasible = Some((state.partition().clone(), comm_cost));
                    if outcome.moved == 0 {
                        stop_reason = StopReason::CommCostConverged;
                        break;
                    }
                    alpha *= factor;
                }
            }
        }

        // Select the partition to return: the best feasible snapshot if one
        // exists, otherwise whatever the final stream produced.
        let (partition, comm_cost) = match previous_feasible {
            Some((partition, cost)) => (partition, cost),
            None => {
                let cost = partitioning_communication_cost(hg, state.partition(), &self.cost);
                (state.into_partition(), cost)
            }
        };
        let imbalance = partition.imbalance(hg).unwrap_or(f64::NAN);

        PartitionResult {
            partition,
            history,
            stop_reason,
            iterations,
            final_alpha: alpha,
            comm_cost,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityReport;
    use hyperpraw_hypergraph::generators::{
        mesh_hypergraph, random_hypergraph, MeshConfig, RandomConfig,
    };
    use hyperpraw_hypergraph::metrics;
    use hyperpraw_topology::{BandwidthMatrix, MachineModel};

    fn archer_cost(p: usize) -> CostMatrix {
        let machine = MachineModel::archer_like(p);
        CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1))
    }

    #[test]
    fn partitions_respect_the_imbalance_tolerance() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        assert_eq!(result.partition.num_parts(), 8);
        assert!(
            result.imbalance <= 1.1 + 1e-9,
            "imbalance {} exceeds tolerance",
            result.imbalance
        );
        assert!(result.iterations >= 1);
    }

    #[test]
    fn basic_beats_round_robin_on_cut_metrics() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        let rr = Partition::round_robin(hg.num_vertices(), 8);
        let praw_cut = metrics::soed(&hg, &result.partition);
        let rr_cut = metrics::soed(&hg, &rr);
        assert!(
            praw_cut < rr_cut,
            "HyperPRAW SOED {praw_cut} should beat round robin {rr_cut}"
        );
    }

    #[test]
    fn aware_achieves_lower_comm_cost_than_basic_on_archer() {
        let hg = mesh_hypergraph(&MeshConfig::new(1200, 10));
        let p = 24usize;
        let cost = archer_cost(p);
        let aware = HyperPraw::aware(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let basic = HyperPraw::basic(HyperPrawConfig::default(), p as u32).partition(&hg);
        // Evaluate both with the *real* (architecture) cost matrix, as the
        // paper does for Figure 4C.
        let aware_pc = partitioning_communication_cost(&hg, &aware.partition, &cost);
        let basic_pc = partitioning_communication_cost(&hg, &basic.partition, &cost);
        assert!(
            aware_pc < basic_pc,
            "aware comm cost {aware_pc} should beat basic {basic_pc}"
        );
    }

    #[test]
    fn refinement_keeps_streaming_after_tolerance_and_improves_cost() {
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let p = 8u32;
        let no_ref = HyperPraw::basic(
            HyperPrawConfig::default().with_refinement(RefinementPolicy::None),
            p,
        )
        .partition(&hg);
        let refined = HyperPraw::basic(
            HyperPrawConfig::default().with_refinement(RefinementPolicy::Factor(0.95)),
            p,
        )
        .partition(&hg);
        assert_eq!(no_ref.stop_reason, StopReason::ToleranceReached);
        assert!(refined.iterations >= no_ref.iterations);
        assert!(
            refined.comm_cost <= no_ref.comm_cost + 1e-9,
            "refined comm cost {} should not exceed unrefined {}",
            refined.comm_cost,
            no_ref.comm_cost
        );
    }

    #[test]
    fn history_tracks_phases_and_costs() {
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        assert_eq!(result.history.len(), result.iterations);
        // The run must eventually enter the refinement phase.
        assert!(result
            .history
            .records()
            .iter()
            .any(|r| r.phase == StreamPhase::Refinement));
        // Alpha grows during tempering.
        let temp: Vec<_> = result
            .history
            .records()
            .iter()
            .filter(|r| r.phase == StreamPhase::Tempering)
            .collect();
        for w in temp.windows(2) {
            assert!(w[1].alpha >= w[0].alpha);
        }
        // The returned comm cost matches the best feasible record.
        let best_feasible = result
            .history
            .records()
            .iter()
            .filter(|r| r.imbalance <= 1.1 + 1e-9)
            .map(|r| r.comm_cost)
            .fold(f64::INFINITY, f64::min);
        assert!(result.comm_cost <= best_feasible + 1e-9);
    }

    #[test]
    fn disabling_history_keeps_it_empty() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        let config = HyperPrawConfig {
            track_history: false,
            ..HyperPrawConfig::default()
        };
        let result = HyperPraw::basic(config, 4).partition(&hg);
        assert!(result.history.is_empty());
        assert!(result.iterations >= 1);
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_order() {
        let hg = random_hypergraph(&RandomConfig::with_avg_cardinality(300, 200, 6.0, 2));
        let praw = HyperPraw::basic(HyperPrawConfig::default().with_seed(3), 6);
        let a = praw.partition(&hg);
        let b = praw.partition(&hg);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn max_iterations_is_honoured() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let config = HyperPrawConfig::default()
            .with_max_iterations(3)
            .with_imbalance_tolerance(1.0000001); // effectively unreachable
        let result = HyperPraw::basic(config, 7).partition(&hg);
        assert_eq!(result.iterations, 3);
        assert_eq!(result.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn quality_report_of_result_is_finite() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        let p = 16usize;
        let cost = archer_cost(p);
        let result = HyperPraw::aware(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let report = QualityReport::compute(&hg, &result.partition, &cost);
        assert!(report.comm_cost.is_finite());
        assert!(report.imbalance.is_finite());
        assert!(report.soed >= 2 * report.hyperedge_cut || report.hyperedge_cut == 0);
    }

    #[test]
    fn single_partition_is_trivial() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        let result = HyperPraw::basic(HyperPrawConfig::default(), 1).partition(&hg);
        assert!(result.partition.assignment().iter().all(|&x| x == 0));
        assert_eq!(result.comm_cost, 0.0);
    }
}
