//! The HyperPRAW restreaming driver (Algorithm 1) — a thin instantiation
//! of the generic [`crate::engine`]: in-memory vertex source × the
//! connectivity provider selected by [`crate::Connectivity`] (precomputed
//! dedup adjacency by default, CSR traversal on request) × sequential
//! execution.

use hyperpraw_hypergraph::{Hypergraph, NeighborAdjacency, Partition};
use hyperpraw_topology::CostMatrix;

use crate::engine::{
    AdjProvider, CsrProvider, Engine, EngineConfig, EngineRun, ExactCommCost, ExecutionStrategy,
    InMemorySource,
};
use crate::history::PartitionHistory;
use crate::HyperPrawConfig;

pub use crate::engine::StopReason;

/// The output of a HyperPRAW run.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// The selected vertex-to-partition assignment.
    pub partition: Partition,
    /// Per-stream history (empty unless `track_history` is enabled).
    pub history: PartitionHistory,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of streams executed.
    pub iterations: usize,
    /// The `α` value in effect when the run stopped.
    pub final_alpha: f64,
    /// Partitioning communication cost of the returned partition.
    pub comm_cost: f64,
    /// Imbalance of the returned partition.
    pub imbalance: f64,
}

/// The HyperPRAW restreaming partitioner.
///
/// The number of partitions equals the size of the communication-cost
/// matrix: one partition per compute unit of the target machine.
/// HyperPRAW-aware is obtained by passing a profiled cost matrix
/// ([`CostMatrix::from_bandwidth`]); HyperPRAW-basic by passing
/// [`CostMatrix::uniform`].
#[derive(Clone, Debug)]
pub struct HyperPraw {
    config: HyperPrawConfig,
    cost: CostMatrix,
    registry: hyperpraw_telemetry::Registry,
}

impl HyperPraw {
    /// Creates a partitioner with the given configuration and cost matrix.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: HyperPrawConfig, cost: CostMatrix) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid HyperPRAW configuration: {e}"));
        Self {
            config,
            cost,
            registry: hyperpraw_telemetry::Registry::disabled(),
        }
    }

    /// Binds the engine's instrumentation (metrics under the `engine.`
    /// prefix) to `registry`. Recording is observation-only — partitions
    /// are bit-identical with or without a live registry.
    pub fn with_registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// The architecture-aware variant: uses a profiled cost matrix.
    pub fn aware(config: HyperPrawConfig, cost: CostMatrix) -> Self {
        Self::new(config, cost)
    }

    /// The architecture-oblivious variant: a uniform cost matrix over `p`
    /// compute units.
    pub fn basic(config: HyperPrawConfig, p: u32) -> Self {
        Self::new(config, CostMatrix::uniform(p as usize))
    }

    /// Number of partitions (compute units).
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// The configuration in use.
    pub fn config(&self) -> &HyperPrawConfig {
        &self.config
    }

    /// The communication-cost matrix in use.
    pub fn cost_matrix(&self) -> &CostMatrix {
        &self.cost
    }

    /// Runs the restreaming algorithm on a hypergraph.
    pub fn partition(&self, hg: &Hypergraph) -> PartitionResult {
        let engine =
            Engine::new(EngineConfig::restreaming(&self.config)).with_registry(&self.registry);
        run_in_memory(&engine, hg, &self.config, &self.cost, &self.registry)
    }
}

/// Shared in-memory instantiation of the engine: the [`InMemorySource`]
/// stream, the exact cost model, and the connectivity provider selected by
/// [`HyperPrawConfig::connectivity`] — the precomputed dedup adjacency
/// ([`AdjProvider`], budgeted per the selection) by default, or the epoch
/// CSR traversal ([`CsrProvider`]). Both providers produce bit-identical
/// partitions; used by [`HyperPraw`] and [`crate::ParallelHyperPraw`].
pub(crate) fn run_in_memory(
    engine: &Engine,
    hg: &Hypergraph,
    config: &HyperPrawConfig,
    cost: &CostMatrix,
    registry: &hyperpraw_telemetry::Registry,
) -> PartitionResult {
    let mut source = InMemorySource::new(hg, config.stream_order, config.seed);
    let run = match config.connectivity.adjacency_budget() {
        None => engine.run(
            cost,
            &mut source,
            &mut CsrProvider::new(hg),
            &mut ExactCommCost::new(hg),
        ),
        Some(budget) => {
            // One precomputation serves both hot consumers: the per-visit
            // X_j(v) queries and the per-pass comm-cost evaluation. The
            // build honours the driver's threading contract — the
            // sequential driver stays single-threaded end to end, the
            // bulk-synchronous driver never exceeds its worker count.
            let max_threads = match engine.config().strategy {
                ExecutionStrategy::Sequential => 1,
                ExecutionStrategy::Chunked { num_threads, .. }
                | ExecutionStrategy::WorkStealing { num_threads, .. } => num_threads,
            };
            let adj = NeighborAdjacency::build_with_threads(hg, budget, max_threads);
            engine.run(
                cost,
                &mut source,
                &mut AdjProvider::from_adjacency(hg, &adj).with_registry(registry),
                &mut ExactCommCost::with_adjacency(hg, &adj),
            )
        }
    }
    .expect("in-memory sources cannot fail");
    PartitionResult::from_engine(run)
}

impl PartitionResult {
    /// Converts an engine outcome into the driver-level result (dropping
    /// the engine's revisit-buffer counters, which the classic drivers do
    /// not use).
    pub(crate) fn from_engine(run: EngineRun) -> Self {
        Self {
            partition: run.partition,
            history: run.history,
            stop_reason: run.stop_reason,
            iterations: run.iterations,
            final_alpha: run.final_alpha,
            comm_cost: run.comm_cost,
            imbalance: run.imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::StreamPhase;
    use crate::metrics::{partitioning_communication_cost, QualityReport};
    use crate::RefinementPolicy;
    use hyperpraw_hypergraph::generators::{
        mesh_hypergraph, random_hypergraph, MeshConfig, RandomConfig,
    };
    use hyperpraw_hypergraph::metrics;
    use hyperpraw_topology::{BandwidthMatrix, MachineModel};

    fn archer_cost(p: usize) -> CostMatrix {
        let machine = MachineModel::archer_like(p);
        CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1))
    }

    #[test]
    fn partitions_respect_the_imbalance_tolerance() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        assert_eq!(result.partition.num_parts(), 8);
        assert!(
            result.imbalance <= 1.1 + 1e-9,
            "imbalance {} exceeds tolerance",
            result.imbalance
        );
        assert!(result.iterations >= 1);
    }

    #[test]
    fn basic_beats_round_robin_on_cut_metrics() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        let rr = Partition::round_robin(hg.num_vertices(), 8);
        let praw_cut = metrics::soed(&hg, &result.partition);
        let rr_cut = metrics::soed(&hg, &rr);
        assert!(
            praw_cut < rr_cut,
            "HyperPRAW SOED {praw_cut} should beat round robin {rr_cut}"
        );
    }

    #[test]
    fn aware_achieves_lower_comm_cost_than_basic_on_archer() {
        let hg = mesh_hypergraph(&MeshConfig::new(1200, 10));
        let p = 24usize;
        let cost = archer_cost(p);
        let aware = HyperPraw::aware(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let basic = HyperPraw::basic(HyperPrawConfig::default(), p as u32).partition(&hg);
        // Evaluate both with the *real* (architecture) cost matrix, as the
        // paper does for Figure 4C.
        let aware_pc = partitioning_communication_cost(&hg, &aware.partition, &cost);
        let basic_pc = partitioning_communication_cost(&hg, &basic.partition, &cost);
        assert!(
            aware_pc < basic_pc,
            "aware comm cost {aware_pc} should beat basic {basic_pc}"
        );
    }

    #[test]
    fn refinement_keeps_streaming_after_tolerance_and_improves_cost() {
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        let p = 8u32;
        let no_ref = HyperPraw::basic(
            HyperPrawConfig::default().with_refinement(RefinementPolicy::None),
            p,
        )
        .partition(&hg);
        let refined = HyperPraw::basic(
            HyperPrawConfig::default().with_refinement(RefinementPolicy::Factor(0.95)),
            p,
        )
        .partition(&hg);
        assert_eq!(no_ref.stop_reason, StopReason::ToleranceReached);
        assert!(refined.iterations >= no_ref.iterations);
        assert!(
            refined.comm_cost <= no_ref.comm_cost + 1e-9,
            "refined comm cost {} should not exceed unrefined {}",
            refined.comm_cost,
            no_ref.comm_cost
        );
    }

    #[test]
    fn history_tracks_phases_and_costs() {
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let praw = HyperPraw::basic(HyperPrawConfig::default(), 8);
        let result = praw.partition(&hg);
        assert_eq!(result.history.len(), result.iterations);
        // The run must eventually enter the refinement phase.
        assert!(result
            .history
            .records()
            .iter()
            .any(|r| r.phase == StreamPhase::Refinement));
        // Alpha grows during tempering.
        let temp: Vec<_> = result
            .history
            .records()
            .iter()
            .filter(|r| r.phase == StreamPhase::Tempering)
            .collect();
        for w in temp.windows(2) {
            assert!(w[1].alpha >= w[0].alpha);
        }
        // The returned comm cost matches the best feasible record.
        let best_feasible = result
            .history
            .records()
            .iter()
            .filter(|r| r.imbalance <= 1.1 + 1e-9)
            .map(|r| r.comm_cost)
            .fold(f64::INFINITY, f64::min);
        assert!(result.comm_cost <= best_feasible + 1e-9);
    }

    #[test]
    fn disabling_history_keeps_it_empty() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        let config = HyperPrawConfig {
            track_history: false,
            ..HyperPrawConfig::default()
        };
        let result = HyperPraw::basic(config, 4).partition(&hg);
        assert!(result.history.is_empty());
        assert!(result.iterations >= 1);
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_order() {
        let hg = random_hypergraph(&RandomConfig::with_avg_cardinality(300, 200, 6.0, 2));
        let praw = HyperPraw::basic(HyperPrawConfig::default().with_seed(3), 6);
        let a = praw.partition(&hg);
        let b = praw.partition(&hg);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn max_iterations_is_honoured() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let config = HyperPrawConfig::default()
            .with_max_iterations(3)
            .with_imbalance_tolerance(1.0000001); // effectively unreachable
        let result = HyperPraw::basic(config, 7).partition(&hg);
        assert_eq!(result.iterations, 3);
        assert_eq!(result.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn quality_report_of_result_is_finite() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        let p = 16usize;
        let cost = archer_cost(p);
        let result = HyperPraw::aware(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let report = QualityReport::compute(&hg, &result.partition, &cost);
        assert!(report.comm_cost.is_finite());
        assert!(report.imbalance.is_finite());
        assert!(report.soed >= 2 * report.hyperedge_cut || report.hyperedge_cut == 0);
    }

    #[test]
    fn single_partition_is_trivial() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        let result = HyperPraw::basic(HyperPrawConfig::default(), 1).partition(&hg);
        assert!(result.partition.assignment().iter().all(|&x| x == 0));
        assert_eq!(result.comm_cost, 0.0);
    }
}
