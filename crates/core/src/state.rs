//! Mutable state carried across streams.

use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{Hypergraph, Partition, VertexId};

/// The streaming partitioner's working state: the current assignment, the
/// per-partition workloads `W(k)` and expected workloads `E(k)`, plus the
/// scratch buffers used to compute neighbour-partition counts without
/// allocating per vertex.
#[derive(Clone, Debug)]
pub(crate) struct StreamingState {
    partition: Partition,
    loads: Vec<f64>,
    expected: Vec<f64>,
    scratch: NeighborScratch,
}

impl StreamingState {
    /// Initialises the state from an existing assignment.
    pub fn new(hg: &Hypergraph, partition: Partition) -> Self {
        let p = partition.num_parts() as usize;
        let loads = partition
            .part_loads(hg)
            .expect("partition must cover the hypergraph");
        // The paper assumes homogeneous compute units: every partition is
        // expected to carry an equal share of the total vertex weight. A
        // heterogeneous machine would simply scale these entries.
        let expected = vec![(hg.total_vertex_weight() / p as f64).max(f64::MIN_POSITIVE); p];
        Self {
            partition,
            loads,
            expected,
            scratch: NeighborScratch::new(hg.num_vertices()),
        }
    }

    /// Round-robin initial state (Algorithm 1's initialisation).
    pub fn round_robin(hg: &Hypergraph, p: u32) -> Self {
        Self::new(hg, Partition::round_robin(hg.num_vertices(), p))
    }

    /// Current assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consumes the state, returning the assignment.
    pub fn into_partition(self) -> Partition {
        self.partition
    }

    /// Current workload of each partition (`W(k)`).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Expected workload of each partition (`E(k)`).
    pub fn expected(&self) -> &[f64] {
        &self.expected
    }

    /// Total imbalance `max_k W(k) / avg_k W(k)` from the tracked loads.
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.loads.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let avg = total / self.loads.len() as f64;
        self.loads.iter().cloned().fold(f64::MIN, f64::max) / avg
    }

    /// Temporarily detaches vertex `v` from its partition (removing its
    /// weight from `W`), computes its neighbour-partition counts into
    /// `counts`, and returns the partition the vertex came from. Call
    /// [`StreamingState::assign`] afterwards to place the vertex (possibly
    /// back where it was).
    pub fn detach_and_count(&mut self, hg: &Hypergraph, v: VertexId, counts: &mut Vec<u32>) -> u32 {
        let current = self.partition.part_of(v);
        self.loads[current as usize] -= hg.vertex_weight(v);
        self.scratch
            .neighbor_partition_counts(hg, &self.partition, v, counts);
        current
    }

    /// Assigns vertex `v` to `part`, updating the workload accounting.
    /// Must be preceded by [`StreamingState::detach_and_count`] for the same
    /// vertex.
    pub fn assign(&mut self, hg: &Hypergraph, v: VertexId, part: u32) {
        self.loads[part as usize] += hg.vertex_weight(v);
        self.partition.set(v, part);
    }

    /// Recomputes the loads from the assignment (used by the parallel
    /// driver after applying a batch of moves, and by tests to cross-check
    /// the incremental accounting).
    pub fn recompute_loads(&mut self, hg: &Hypergraph) {
        self.loads = self
            .partition
            .part_loads(hg)
            .expect("partition must cover the hypergraph");
    }

    /// Replaces the assignment wholesale (parallel driver synchronisation).
    pub fn replace_partition(&mut self, hg: &Hypergraph, partition: Partition) {
        assert_eq!(partition.num_parts(), self.partition.num_parts());
        self.partition = partition;
        self.recompute_loads(hg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::HypergraphBuilder;

    fn hg6() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5]);
        b.build()
    }

    #[test]
    fn round_robin_state_has_balanced_loads() {
        let hg = hg6();
        let state = StreamingState::round_robin(&hg, 3);
        assert_eq!(state.loads(), &[2.0, 2.0, 2.0]);
        assert_eq!(state.expected(), &[2.0, 2.0, 2.0]);
        assert!((state.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(state.partition().num_parts(), 3);
    }

    #[test]
    fn detach_and_assign_keep_loads_consistent() {
        let hg = hg6();
        let mut state = StreamingState::round_robin(&hg, 3);
        let mut counts = Vec::new();
        let current = state.detach_and_count(&hg, 0, &mut counts);
        assert_eq!(current, 0);
        assert_eq!(state.loads()[0], 1.0); // weight removed
        state.assign(&hg, 0, 2);
        assert_eq!(state.loads()[0], 1.0);
        assert_eq!(state.loads()[2], 3.0);
        assert_eq!(state.partition().part_of(0), 2);

        // Incremental accounting matches a full recomputation.
        let mut copy = state.clone();
        copy.recompute_loads(&hg);
        assert_eq!(copy.loads(), state.loads());
    }

    #[test]
    fn detach_counts_exclude_the_vertex_itself() {
        let hg = hg6();
        let mut state = StreamingState::round_robin(&hg, 3);
        // Vertex 2's neighbours are {0,1,3,4} in parts {0,1,0,1}.
        let mut counts = Vec::new();
        state.detach_and_count(&hg, 2, &mut counts);
        assert_eq!(counts, &[2, 2, 0]);
        state.assign(&hg, 2, 2);
    }

    #[test]
    fn imbalance_tracks_extreme_assignments() {
        let hg = hg6();
        let mut state = StreamingState::round_robin(&hg, 3);
        // Move everything to partition 0.
        let mut counts = Vec::new();
        for v in 0..6u32 {
            state.detach_and_count(&hg, v, &mut counts);
            state.assign(&hg, v, 0);
        }
        assert!((state.imbalance() - 3.0).abs() < 1e-12);
        let part = state.into_partition();
        assert_eq!(part.part_sizes(), vec![6, 0, 0]);
    }

    #[test]
    fn replace_partition_recomputes_loads() {
        let hg = hg6();
        let mut state = StreamingState::round_robin(&hg, 2);
        let new = Partition::from_assignment(vec![0, 0, 0, 0, 1, 1], 2).unwrap();
        state.replace_partition(&hg, new);
        assert_eq!(state.loads(), &[4.0, 2.0]);
    }
}
