//! Architecture-aware partition quality metrics.
//!
//! The cut-based metrics (hyperedge cut, SOED) live in
//! [`hyperpraw_hypergraph::metrics`]; this module adds the paper's
//! *partitioning communication cost* (equation 5), which combines the cut
//! structure with the physical cost of communication between the compute
//! units hosting each partition, and a [`QualityReport`] bundling everything
//! reported in Figure 4.

use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{
    metrics as cut_metrics, Hypergraph, NeighborAdjacency, Partition, VertexId,
};
use hyperpraw_topology::CostMatrix;

/// The communication cost `T_i(v)` of hosting vertex `v` on partition `i`
/// (equation 4): the number of neighbours of `v` in every other partition
/// `j`, weighted by the cost `C(i, j)` of the link between the two compute
/// units.
///
/// `counts` must hold the neighbour-partition counts `X_j(v)` (as produced
/// by [`NeighborScratch::neighbor_partition_counts`]).
#[inline]
pub fn vertex_comm_cost(counts: &[u32], candidate: u32, cost: &CostMatrix) -> f64 {
    let row = cost.row(candidate as usize);
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(j, &c)| c as f64 * row[j])
        .sum()
}

/// The partitioning communication cost `PC(P)` (equation 5): the sum of
/// `T_i(v)` over every vertex `v`, evaluated at the partition `i` the vertex
/// is assigned to. This is the metric monitored during the refinement phase
/// and reported in Figure 4C.
pub fn partitioning_communication_cost(
    hg: &Hypergraph,
    partition: &Partition,
    cost: &CostMatrix,
) -> f64 {
    assert_eq!(
        partition.num_parts() as usize,
        cost.num_units(),
        "cost matrix size must match the partition count"
    );
    assert_eq!(
        partition.num_vertices(),
        hg.num_vertices(),
        "partition must cover the hypergraph"
    );
    let mut scratch = NeighborScratch::new(hg.num_vertices());
    let mut counts: Vec<u32> = Vec::new();
    let mut total = 0.0;
    for v in hg.vertices() {
        scratch.neighbor_partition_counts(hg, partition, v, &mut counts);
        total += vertex_comm_cost(&counts, partition.part_of(v), cost);
    }
    total
}

/// [`partitioning_communication_cost`] answered through a precomputed
/// [`NeighborAdjacency`]: every vertex's `X_j(v)` comes from a flat scan
/// of its deduplicated neighbour list (hubs fall back to epoch traversal)
/// instead of re-deduplicating the neighbourhood per vertex. Counts are
/// identical exact integers accumulated in the same vertex order, so the
/// result is **bit-identical** to the traversal-based evaluation — this is
/// what lets the refinement stopping rule run on the adjacency without
/// perturbing the engine-equivalence guarantees.
pub fn partitioning_communication_cost_with(
    hg: &Hypergraph,
    adj: &NeighborAdjacency,
    partition: &Partition,
    cost: &CostMatrix,
) -> f64 {
    assert_eq!(
        partition.num_parts() as usize,
        cost.num_units(),
        "cost matrix size must match the partition count"
    );
    assert_eq!(
        partition.num_vertices(),
        hg.num_vertices(),
        "partition must cover the hypergraph"
    );
    let mut fallback = None;
    let mut counts: Vec<u32> = Vec::new();
    let mut total = 0.0;
    for v in hg.vertices() {
        adj.neighbor_partition_counts(hg, partition, v, &mut fallback, &mut counts);
        total += vertex_comm_cost(&counts, partition.part_of(v), cost);
    }
    total
}

/// All quality metrics the paper reports for one partitioning (Figure 4
/// A/B/C plus the imbalance the tolerance is checked against).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityReport {
    /// Hyperedge cut (Figure 4A).
    pub hyperedge_cut: u64,
    /// Sum of external degrees (Figure 4B).
    pub soed: u64,
    /// Partitioning communication cost (Figure 4C).
    pub comm_cost: f64,
    /// Total imbalance `max W(k) / avg W(k)`.
    pub imbalance: f64,
}

impl QualityReport {
    /// Computes the full report.
    pub fn compute(hg: &Hypergraph, partition: &Partition, cost: &CostMatrix) -> Self {
        Self {
            hyperedge_cut: cut_metrics::hyperedge_cut(hg, partition),
            soed: cut_metrics::soed(hg, partition),
            comm_cost: partitioning_communication_cost(hg, partition, cost),
            imbalance: partition.imbalance(hg).unwrap_or(f64::NAN),
        }
    }

    /// CSV header matching [`QualityReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "hyperedge_cut,soed,comm_cost,imbalance"
    }

    /// Comma-separated row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.4},{:.4}",
            self.hyperedge_cut, self.soed, self.comm_cost, self.imbalance
        )
    }
}

/// Convenience: the communication cost of a single vertex in its assigned
/// partition, recomputed from scratch (allocates; prefer batching via
/// [`partitioning_communication_cost`] in hot code).
pub fn vertex_cost_in_place(
    hg: &Hypergraph,
    partition: &Partition,
    cost: &CostMatrix,
    v: VertexId,
) -> f64 {
    let mut scratch = NeighborScratch::new(hg.num_vertices());
    let mut counts = Vec::new();
    scratch.neighbor_partition_counts(hg, partition, v, &mut counts);
    vertex_comm_cost(&counts, partition.part_of(v), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::HypergraphBuilder;
    use hyperpraw_topology::{BandwidthMatrix, MachineModel};

    /// Two hyperedges: {0,1,2} and {2,3}.
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.build()
    }

    #[test]
    fn uncut_partition_has_zero_comm_cost() {
        let hg = sample();
        let part = Partition::all_in_one(4, 2);
        let cost = CostMatrix::uniform(2);
        assert_eq!(partitioning_communication_cost(&hg, &part, &cost), 0.0);
    }

    #[test]
    fn uniform_cost_counts_remote_neighbour_pairs() {
        let hg = sample();
        // {0,1} vs {2,3}: vertex 0 has remote neighbour {2}; 1 has {2};
        // 2 has {0,1}; 3 has none (3's only neighbour 2 is with it). Wait:
        // pins of edge {2,3} are split, so 3's neighbour 2 is remote.
        let part = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let cost = CostMatrix::uniform(2);
        // Remote neighbour counts: v0->1, v1->1, v2->2, v3->0 (2 is local to 3).
        // Actually 2 and 3 are both in part 1, so v3 has no remote neighbours
        // and v2 has remote {0,1}. Total = 1 + 1 + 2 + 0 = 4.
        let pc = partitioning_communication_cost(&hg, &part, &cost);
        assert_eq!(pc, 4.0);
    }

    #[test]
    fn comm_cost_scales_with_link_cost() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let cheap = CostMatrix::from_raw(2, vec![0.0, 1.0, 1.0, 0.0]);
        let pricey = CostMatrix::from_raw(2, vec![0.0, 2.0, 2.0, 0.0]);
        let a = partitioning_communication_cost(&hg, &part, &cheap);
        let b = partitioning_communication_cost(&hg, &part, &pricey);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn placing_cut_on_fast_links_is_cheaper() {
        let hg = sample();
        let machine = MachineModel::archer_like(48);
        let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.0, 1));
        // Same logical split, but once across a socket (fast) and once across
        // blades (slow).
        let fast = Partition::from_fn(4, 48, |v| if v < 2 { 0 } else { 1 });
        let slow = Partition::from_fn(4, 48, |v| if v < 2 { 0 } else { 40 });
        let pc_fast = partitioning_communication_cost(&hg, &fast, &cost);
        let pc_slow = partitioning_communication_cost(&hg, &slow, &cost);
        assert!(pc_fast < pc_slow);
    }

    #[test]
    fn vertex_comm_cost_ignores_own_partition() {
        let cost = CostMatrix::uniform(3);
        // Neighbour counts: 2 in part 0, 5 in part 1, 1 in part 2.
        let counts = vec![2u32, 5, 1];
        // Hosted on part 1: own partition contributes nothing.
        let c = vertex_comm_cost(&counts, 1, &cost);
        assert_eq!(c, 3.0);
    }

    #[test]
    fn quality_report_is_consistent_with_individual_metrics() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        let cost = CostMatrix::uniform(2);
        let report = QualityReport::compute(&hg, &part, &cost);
        assert_eq!(report.hyperedge_cut, cut_metrics::hyperedge_cut(&hg, &part));
        assert_eq!(report.soed, cut_metrics::soed(&hg, &part));
        assert_eq!(
            report.comm_cost,
            partitioning_communication_cost(&hg, &part, &cost)
        );
        assert_eq!(
            report.csv_row().split(',').count(),
            QualityReport::csv_header().split(',').count()
        );
    }

    #[test]
    fn vertex_cost_in_place_matches_total() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        let cost = CostMatrix::uniform(2);
        let total: f64 = hg
            .vertices()
            .map(|v| vertex_cost_in_place(&hg, &part, &cost, v))
            .sum();
        assert!((total - partitioning_communication_cost(&hg, &part, &cost)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cost matrix size must match")]
    fn mismatched_cost_matrix_is_rejected() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        let cost = CostMatrix::uniform(3);
        partitioning_communication_cost(&hg, &part, &cost);
    }
}
