//! A single greedy stream over all vertices.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use hyperpraw_hypergraph::{Hypergraph, VertexId};
use hyperpraw_topology::CostMatrix;

use crate::state::StreamingState;
use crate::value::best_partition;
use crate::StreamOrder;

/// Summary of one stream pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StreamOutcome {
    /// Number of vertices whose assignment changed during the pass.
    pub moved: usize,
}

/// Builds the vertex visit order for a stream.
pub(crate) fn stream_order(hg: &Hypergraph, order: StreamOrder, seed: u64) -> Vec<VertexId> {
    let mut vertices: Vec<VertexId> = hg.vertices().collect();
    match order {
        StreamOrder::Natural => {}
        StreamOrder::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            vertices.shuffle(&mut rng);
        }
        StreamOrder::DegreeDescending => {
            vertices.sort_by_key(|&v| std::cmp::Reverse(hg.degree(v)));
        }
    }
    vertices
}

/// Runs one greedy stream: every vertex (in `order`) is detached from its
/// current partition and re-assigned to the partition maximising the value
/// function, with the workload accounting updated after every assignment
/// (Algorithm 1's inner loop).
pub(crate) fn stream_pass(
    hg: &Hypergraph,
    state: &mut StreamingState,
    cost: &CostMatrix,
    alpha: f64,
    order: &[VertexId],
) -> StreamOutcome {
    let mut moved = 0usize;
    let mut counts: Vec<u32> = Vec::new();
    for &v in order {
        let current = state.detach_and_count(hg, v, &mut counts);
        let target = best_partition(&counts, cost, alpha, state.loads(), state.expected());
        state.assign(hg, v, target);
        if target != current {
            moved += 1;
        }
    }
    StreamOutcome { moved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::{metrics, HypergraphBuilder};

    #[test]
    fn stream_orders_cover_every_vertex_exactly_once() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        for order in [
            StreamOrder::Natural,
            StreamOrder::Random,
            StreamOrder::DegreeDescending,
        ] {
            let o = stream_order(&hg, order, 3);
            assert_eq!(o.len(), 200);
            let mut sorted = o.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 200);
        }
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let mut b = HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([0u32, 2]);
        b.add_hyperedge([0u32, 3]);
        b.add_hyperedge([3u32, 4]);
        let hg = b.build();
        let o = stream_order(&hg, StreamOrder::DegreeDescending, 0);
        assert_eq!(o[0], 0); // degree 3
        assert_eq!(o[1], 3); // degree 2
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        assert_eq!(
            stream_order(&hg, StreamOrder::Random, 5),
            stream_order(&hg, StreamOrder::Random, 5)
        );
        assert_ne!(
            stream_order(&hg, StreamOrder::Random, 5),
            stream_order(&hg, StreamOrder::Random, 6)
        );
    }

    #[test]
    fn a_single_stream_reduces_the_cut_of_a_round_robin_start() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        let p = 4u32;
        let cost = CostMatrix::uniform(p as usize);
        let mut state = StreamingState::round_robin(&hg, p);
        let before = metrics::hyperedge_cut(&hg, state.partition());
        let order = stream_order(&hg, StreamOrder::Natural, 0);
        let alpha = crate::HyperPrawConfig::fennel_alpha(p, hg.num_vertices(), hg.num_hyperedges());
        let outcome = stream_pass(&hg, &mut state, &cost, alpha, &order);
        let after = metrics::hyperedge_cut(&hg, state.partition());
        assert!(outcome.moved > 0, "the stream should move vertices");
        assert!(
            after < before,
            "cut should improve: before {before}, after {after}"
        );
    }

    #[test]
    fn zero_alpha_with_one_dominant_partition_collapses_vertices_towards_it() {
        // With no balance pressure the greedy stream chases neighbours.
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2, 3, 4, 5]);
        let hg = b.build();
        let cost = CostMatrix::uniform(2);
        let mut state = StreamingState::round_robin(&hg, 2);
        let order = stream_order(&hg, StreamOrder::Natural, 0);
        stream_pass(&hg, &mut state, &cost, 0.0, &order);
        // All pins share one hyperedge: they end up together.
        let part = state.partition();
        let first = part.part_of(0);
        assert!(hg.vertices().all(|v| part.part_of(v) == first));
    }

    #[test]
    fn loads_remain_consistent_after_a_stream() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let cost = CostMatrix::uniform(6);
        let mut state = StreamingState::round_robin(&hg, 6);
        let order = stream_order(&hg, StreamOrder::Random, 1);
        stream_pass(&hg, &mut state, &cost, 5.0, &order);
        let mut check = state.clone();
        check.recompute_loads(&hg);
        for (a, b) in state.loads().iter().zip(check.loads()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
