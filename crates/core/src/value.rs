//! The vertex assignment value function (equations 1–4 of the paper).
//!
//! This module is public because the value function is the part of
//! HyperPRAW that other partitioners reuse: the sequential restreaming
//! driver, the bulk-synchronous [`crate::parallel`] driver and the
//! out-of-core `hyperpraw-lowmem` streaming partitioner all score candidate
//! placements with [`best_partition`] / [`best_partition_with_margin`] and
//! only differ in *how they obtain* the neighbour-partition counts
//! (in-memory CSR traversal vs. sketched net connectivity).

use hyperpraw_topology::CostMatrix;

/// Evaluates the value `V_i(v)` of assigning a vertex to partition
/// `candidate` (equation 1):
///
/// ```text
/// V_i(v) = −N_i(v) · T_i(v) − α · W(i) / E(i)
/// ```
///
/// * `counts[j]` is `X_j(v)`, the number of (distinct) neighbours of the
///   vertex currently assigned to partition `j`,
/// * `N_i(v)` is the fraction of partitions other than `i` holding at least
///   one neighbour (equations 2–3; the paper writes `X_j(v) > 1`, which we
///   read as "has neighbours", i.e. `X_j(v) ≥ 1` — the strict reading would
///   ignore partitions holding exactly one neighbour, contradicting the
///   metric's intent),
/// * `T_i(v)` is the neighbour count in every partition weighted by the
///   communication cost `C(i, j)` (equation 4; `C(i,i) = 0` so local
///   neighbours are free),
/// * `W(i)` and `E(i)` are the current and expected workloads, and `α`
///   weighs the balance term.
#[inline]
pub fn value_of(
    counts: &[u32],
    candidate: u32,
    cost: &CostMatrix,
    alpha: f64,
    load: f64,
    expected: f64,
) -> f64 {
    let p = counts.len() as f64;
    let row = cost.row(candidate as usize);
    let mut t = 0.0f64;
    let mut neighbour_parts = 0u32;
    for (j, &c) in counts.iter().enumerate() {
        if c > 0 {
            neighbour_parts += 1;
            t += c as f64 * row[j];
        }
    }
    // Partitions other than the candidate holding neighbours.
    if counts[candidate as usize] > 0 {
        neighbour_parts -= 1;
    }
    let n = neighbour_parts as f64 / p;
    -n * t - alpha * load / expected
}

/// The outcome of scoring every candidate partition for one vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredPartition {
    /// The winning partition.
    pub part: u32,
    /// The winner's value `V_part(v)`.
    pub value: f64,
    /// Gap between the winner and the runner-up value (`+∞` with a single
    /// partition). A small margin means the decision was a near-tie — the
    /// signal `hyperpraw-lowmem` uses to pick re-streaming candidates.
    pub margin: f64,
}

/// Finds the partition with the highest assignment value for a vertex.
///
/// Ties are broken towards the lighter partition, and then towards the lower
/// partition id, so the stream is fully deterministic.
pub fn best_partition(
    counts: &[u32],
    cost: &CostMatrix,
    alpha: f64,
    loads: &[f64],
    expected: &[f64],
) -> u32 {
    best_partition_with_margin(counts, cost, alpha, loads, expected).part
}

/// Like [`best_partition`], additionally reporting the winner's value and
/// its margin over the runner-up. The winning partition is identical to
/// [`best_partition`]'s — the extra bookkeeping never changes tie-breaking.
pub fn best_partition_with_margin(
    counts: &[u32],
    cost: &CostMatrix,
    alpha: f64,
    loads: &[f64],
    expected: &[f64],
) -> ScoredPartition {
    debug_assert_eq!(counts.len(), loads.len());
    debug_assert_eq!(counts.len(), cost.num_units());
    let mut best = 0u32;
    let mut best_value = f64::NEG_INFINITY;
    let mut runner_up = f64::NEG_INFINITY;
    for i in 0..counts.len() {
        let v = value_of(counts, i as u32, cost, alpha, loads[i], expected[i]);
        let better = v > best_value + 1e-12
            || ((v - best_value).abs() <= 1e-12 && loads[i] < loads[best as usize] - 1e-12);
        if better {
            runner_up = best_value;
            best = i as u32;
            best_value = v;
        } else if v > runner_up {
            runner_up = v;
        }
    }
    ScoredPartition {
        part: best,
        value: best_value,
        margin: if runner_up == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            best_value - runner_up
        },
    }
}

/// Reusable buffers for [`best_partition_in`], the allocation-free scorer
/// the restreaming engine keeps per worker. One instance per thread; the
/// contents are meaningless between calls.
#[derive(Clone, Debug, Default)]
pub struct ValueScratch {
    t: Vec<f64>,
}

impl ValueScratch {
    /// Creates empty scratch space (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scores every candidate partition like [`best_partition_with_margin`]
/// but restructured for the hot loop, reusing `scratch` across calls.
///
/// The naive scorer evaluates [`value_of`] per candidate — `O(p²)` matrix
/// reads per vertex even when the vertex's neighbours touch only a handful
/// of partitions. This version accumulates the communication terms
/// `t_i = Σ_j X_j(v) · C(i,j)` one *source* partition `j` with `X_j > 0`
/// at a time over the contiguous column cache ([`CostMatrix::col`]),
/// so the work is `O(p · |{j : X_j > 0}|)`; for unit-uniform matrices
/// ([`CostMatrix::is_unit_uniform`]) the terms collapse to the exact
/// integers `Σ_j X_j − X_i` and the matrix is never touched.
///
/// For every candidate `i` the contributions are added in the same
/// ascending-`j` order [`value_of`] uses, so the result — winner, value,
/// margin and tie-breaking — is **bit-identical** to
/// [`best_partition_with_margin`]; the engine equivalence tests rely on
/// this.
pub fn best_partition_in(
    counts: &[u32],
    cost: &CostMatrix,
    alpha: f64,
    loads: &[f64],
    expected: &[f64],
    scratch: &mut ValueScratch,
) -> ScoredPartition {
    debug_assert_eq!(counts.len(), loads.len());
    debug_assert_eq!(counts.len(), cost.num_units());
    let p = counts.len();
    let t = &mut scratch.t;
    t.clear();
    t.resize(p, 0.0);
    let mut neighbour_parts_total = 0u32;
    if cost.is_unit_uniform() {
        // Exact integer shortcut: every off-diagonal cost is 1.0, so
        // t_i = Σ_j X_j − X_i. Counts are u32 integers, so the sums are
        // exact and bitwise equal to the ordered accumulation.
        let mut total = 0u64;
        for &c in counts {
            if c > 0 {
                neighbour_parts_total += 1;
                total += u64::from(c);
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            t[i] = (total - u64::from(c)) as f64;
        }
    } else {
        for (j, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            neighbour_parts_total += 1;
            let cj = c as f64;
            for (ti, &cij) in t.iter_mut().zip(cost.col(j)) {
                *ti += cj * cij;
            }
        }
    }

    let pf = p as f64;
    let mut best = 0u32;
    let mut best_value = f64::NEG_INFINITY;
    let mut runner_up = f64::NEG_INFINITY;
    for i in 0..p {
        let neighbour_parts = neighbour_parts_total - u32::from(counts[i] > 0);
        let n = neighbour_parts as f64 / pf;
        let v = -n * t[i] - alpha * loads[i] / expected[i];
        let better = v > best_value + 1e-12
            || ((v - best_value).abs() <= 1e-12 && loads[i] < loads[best as usize] - 1e-12);
        if better {
            runner_up = best_value;
            best = i as u32;
            best_value = v;
        } else if v > runner_up {
            runner_up = v;
        }
    }
    ScoredPartition {
        part: best,
        value: best_value,
        margin: if runner_up == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            best_value - runner_up
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_prefers_the_partition_with_its_neighbours() {
        let cost = CostMatrix::uniform(3);
        // All 4 neighbours in partition 1; loads equal.
        let counts = vec![0u32, 4, 0];
        let loads = vec![10.0, 10.0, 10.0];
        let expected = vec![10.0, 10.0, 10.0];
        let best = best_partition(&counts, &cost, 0.1, &loads, &expected);
        assert_eq!(best, 1);
        // Its value must beat the alternatives.
        let v1 = value_of(&counts, 1, &cost, 0.1, 10.0, 10.0);
        let v0 = value_of(&counts, 0, &cost, 0.1, 10.0, 10.0);
        assert!(v1 > v0);
    }

    #[test]
    fn large_alpha_pushes_towards_the_lightest_partition() {
        let cost = CostMatrix::uniform(3);
        let counts = vec![0u32, 4, 0];
        let loads = vec![20.0, 30.0, 5.0];
        let expected = vec![10.0, 10.0, 10.0];
        // With a huge alpha the balance term dominates: partition 2 wins even
        // though the neighbours are in partition 1.
        let best = best_partition(&counts, &cost, 1e6, &loads, &expected);
        assert_eq!(best, 2);
        // With alpha = 0 the communication term alone decides.
        let best = best_partition(&counts, &cost, 0.0, &loads, &expected);
        assert_eq!(best, 1);
    }

    #[test]
    fn architecture_awareness_prefers_cheap_links() {
        // Three units: 0 and 1 are close (cost 1), unit 2 is far from both
        // (cost 2). Neighbours live in units 0 and 1.
        let cost = CostMatrix::from_raw(
            3,
            vec![
                0.0, 1.0, 2.0, //
                1.0, 0.0, 2.0, //
                2.0, 2.0, 0.0,
            ],
        );
        let counts = vec![3u32, 3, 0];
        let loads = vec![10.0, 10.0, 0.0];
        let expected = vec![10.0, 10.0, 10.0];
        // Candidate 0 or 1: remote neighbours reachable over cost-1 links.
        // Candidate 2: everything remote over cost-2 links. Even though unit
        // 2 is empty (better balance), a small alpha keeps the vertex near
        // its neighbours.
        let best = best_partition(&counts, &cost, 0.01, &loads, &expected);
        assert!(best == 0 || best == 1);
        let v0 = value_of(&counts, 0, &cost, 0.01, 10.0, 10.0);
        let v2 = value_of(&counts, 2, &cost, 0.01, 0.0, 10.0);
        assert!(v0 > v2);
    }

    #[test]
    fn own_partition_neighbours_are_excluded_from_n_and_cost() {
        let cost = CostMatrix::uniform(2);
        // 5 neighbours in partition 0, 1 in partition 1.
        let counts = vec![5u32, 1];
        // Hosted on 0: only the single remote neighbour contributes, and only
        // one remote partition counts.
        let v_home = value_of(&counts, 0, &cost, 0.0, 0.0, 1.0);
        assert!((v_home - (-(1.0 / 2.0) * 1.0)).abs() < 1e-12);
        // Hosted on 1: five remote neighbours over one remote partition.
        let v_away = value_of(&counts, 1, &cost, 0.0, 0.0, 1.0);
        assert!((v_away - (-(1.0 / 2.0) * 5.0)).abs() < 1e-12);
        assert!(v_home > v_away);
    }

    #[test]
    fn ties_break_towards_the_lighter_partition() {
        let cost = CostMatrix::uniform(3);
        let counts = vec![0u32, 0, 0]; // isolated vertex: communication is moot
        let loads = vec![5.0, 3.0, 5.0];
        let expected = vec![4.0, 4.0, 4.0];
        let best = best_partition(&counts, &cost, 1.0, &loads, &expected);
        assert_eq!(best, 1);
        // Full tie (identical loads) goes to the lowest id.
        let best = best_partition(&counts, &cost, 1.0, &[2.0, 2.0, 2.0], &expected);
        assert_eq!(best, 0);
    }

    #[test]
    fn value_is_monotone_in_load() {
        let cost = CostMatrix::uniform(2);
        let counts = vec![1u32, 1];
        let light = value_of(&counts, 0, &cost, 2.0, 1.0, 10.0);
        let heavy = value_of(&counts, 0, &cost, 2.0, 9.0, 10.0);
        assert!(light > heavy);
    }

    #[test]
    fn scratch_scorer_is_bit_identical_to_the_reference_scorer() {
        // Pseudo-random but deterministic instances over both a unit-uniform
        // and a genuinely heterogeneous cost matrix.
        let p = 7usize;
        let mut raw = vec![0.0f64; p * p];
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for v in raw.iter_mut() {
            *v = 0.5 + next() * 1.5;
        }
        let aware = CostMatrix::from_raw(p, raw);
        let uniform = CostMatrix::uniform(p);
        let mut scratch = ValueScratch::new();
        for cost in [&uniform, &aware] {
            for case in 0..200 {
                let counts: Vec<u32> = (0..p)
                    .map(|i| {
                        if (case + i) % 3 == 0 {
                            0
                        } else {
                            (next() * 9.0) as u32
                        }
                    })
                    .collect();
                let loads: Vec<f64> = (0..p).map(|_| next() * 20.0).collect();
                let expected = vec![10.0f64; p];
                let alpha = next() * 50.0;
                let reference = best_partition_with_margin(&counts, cost, alpha, &loads, &expected);
                let fast = best_partition_in(&counts, cost, alpha, &loads, &expected, &mut scratch);
                assert_eq!(fast.part, reference.part, "case {case}");
                assert_eq!(
                    fast.value.to_bits(),
                    reference.value.to_bits(),
                    "case {case}"
                );
                assert_eq!(
                    fast.margin.to_bits(),
                    reference.margin.to_bits(),
                    "case {case}"
                );
            }
        }
    }
}
