//! Simple architecture-oblivious partitioning baselines.
//!
//! These are the "naive parallelism" strategies the paper's introduction
//! contrasts against (Figure 1B shows the traffic of such a placement), used
//! by the experiment harness and the tests as lower bounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperpraw_hypergraph::{Hypergraph, Partition};

/// Round-robin assignment `v → v mod p` — the default data decomposition of
/// many parallel applications and HyperPRAW's own starting point.
pub fn round_robin(hg: &Hypergraph, p: u32) -> Partition {
    Partition::round_robin(hg.num_vertices(), p)
}

/// Uniformly random assignment.
pub fn random(hg: &Hypergraph, p: u32, seed: u64) -> Partition {
    assert!(p > 0, "need at least one partition");
    let mut rng = StdRng::seed_from_u64(seed);
    Partition::from_fn(hg.num_vertices(), p, |_| rng.gen_range(0..p))
}

/// Deterministic hash-based assignment (splitmix64 of the vertex id), the
/// strategy used by hash-partitioned distributed data stores.
pub fn hashed(hg: &Hypergraph, p: u32) -> Partition {
    assert!(p > 0, "need at least one partition");
    Partition::from_fn(hg.num_vertices(), p, |v| {
        let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % p as u64) as u32
    })
}

/// Contiguous block assignment: the first `|V|/p` vertices to partition 0,
/// the next block to partition 1, and so on. For file orders with locality
/// (meshes) this is a surprisingly strong cut baseline, but it ignores the
/// architecture entirely.
pub fn blocks(hg: &Hypergraph, p: u32) -> Partition {
    assert!(p > 0, "need at least one partition");
    let n = hg.num_vertices();
    let block = n.div_ceil(p as usize).max(1);
    Partition::from_fn(n, p, |v| ((v as usize / block) as u32).min(p - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::metrics;

    fn hg() -> Hypergraph {
        mesh_hypergraph(&MeshConfig::new(600, 8))
    }

    #[test]
    fn all_baselines_produce_full_valid_partitions() {
        let hg = hg();
        for part in [
            round_robin(&hg, 6),
            random(&hg, 6, 1),
            hashed(&hg, 6),
            blocks(&hg, 6),
        ] {
            assert_eq!(part.num_parts(), 6);
            assert_eq!(part.num_vertices(), 600);
            assert_eq!(part.used_parts(), 6);
        }
    }

    #[test]
    fn round_robin_and_blocks_are_perfectly_balanced() {
        let hg = hg();
        assert!((round_robin(&hg, 6).imbalance(&hg).unwrap() - 1.0).abs() < 1e-9);
        assert!(blocks(&hg, 6).imbalance(&hg).unwrap() <= 1.01);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let hg = hg();
        assert_eq!(random(&hg, 4, 7), random(&hg, 4, 7));
        assert_ne!(random(&hg, 4, 7), random(&hg, 4, 8));
    }

    #[test]
    fn hashed_spreads_vertices_roughly_evenly() {
        let hg = hg();
        let part = hashed(&hg, 6);
        let sizes = part.part_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min < 60, "hash sizes too uneven: {sizes:?}");
    }

    #[test]
    fn blocks_beat_round_robin_on_mesh_cut() {
        // Mesh vertex ids are laid out with spatial locality, so contiguous
        // blocks cut far fewer hyperedges than round robin.
        let hg = hg();
        let b = metrics::hyperedge_cut(&hg, &blocks(&hg, 6));
        let r = metrics::hyperedge_cut(&hg, &round_robin(&hg, 6));
        assert!(b < r);
    }
}
