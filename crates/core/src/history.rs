//! Per-iteration records of a restreaming run (the data behind Figure 3).

/// Which phase of the restreaming process an iteration belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamPhase {
    /// Imbalance still above tolerance: `α` is being tempered upwards.
    Tempering,
    /// Within tolerance: the refinement phase is running.
    Refinement,
}

impl StreamPhase {
    /// Name as printed in reports and CSV/JSON serialisations.
    pub fn name(&self) -> &'static str {
        match self {
            StreamPhase::Tempering => "tempering",
            StreamPhase::Refinement => "refinement",
        }
    }
}

/// Measurements taken after one complete stream over all vertices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// 1-based stream number.
    pub iteration: usize,
    /// Phase the stream was executed in.
    pub phase: StreamPhase,
    /// Value of `α` used during the stream.
    pub alpha: f64,
    /// Total imbalance `max_k W(k) / avg_k W(k)` after the stream.
    pub imbalance: f64,
    /// Partitioning communication cost `PC(P)` after the stream.
    pub comm_cost: f64,
    /// Number of vertices that changed partition during the stream.
    pub moved_vertices: usize,
}

/// The full history of a restreaming run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionHistory {
    records: Vec<IterationRecord>,
}

impl PartitionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of streams recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no streams were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The final (latest) record, if any.
    pub fn last(&self) -> Option<&IterationRecord> {
        self.records.last()
    }

    /// Iteration at which the imbalance first dropped within `tolerance`,
    /// if it ever did.
    pub fn first_feasible_iteration(&self, tolerance: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.imbalance <= tolerance)
            .map(|r| r.iteration)
    }

    /// The lowest communication cost seen over the whole run.
    pub fn best_comm_cost(&self) -> Option<f64> {
        self.records
            .iter()
            .map(|r| r.comm_cost)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The series `(iteration, comm_cost)` — the curve plotted in Figure 3.
    pub fn comm_cost_series(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .map(|r| (r.iteration, r.comm_cost))
            .collect()
    }

    /// CSV header matching [`PartitionHistory::to_csv`].
    pub fn csv_header() -> &'static str {
        "iteration,phase,alpha,imbalance,comm_cost,moved_vertices"
    }

    /// Serialises the history as CSV rows (without header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let phase = r.phase.name();
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{}\n",
                r.iteration, phase, r.alpha, r.imbalance, r.comm_cost, r.moved_vertices
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iter: usize, imb: f64, cost: f64, phase: StreamPhase) -> IterationRecord {
        IterationRecord {
            iteration: iter,
            phase,
            alpha: 1.0,
            imbalance: imb,
            comm_cost: cost,
            moved_vertices: 10,
        }
    }

    #[test]
    fn push_and_query() {
        let mut h = PartitionHistory::new();
        assert!(h.is_empty());
        h.push(record(1, 2.0, 100.0, StreamPhase::Tempering));
        h.push(record(2, 1.05, 80.0, StreamPhase::Refinement));
        h.push(record(3, 1.08, 85.0, StreamPhase::Refinement));
        assert_eq!(h.len(), 3);
        assert_eq!(h.last().unwrap().iteration, 3);
        assert_eq!(h.first_feasible_iteration(1.1), Some(2));
        assert_eq!(h.first_feasible_iteration(1.01), None);
        assert_eq!(h.best_comm_cost(), Some(80.0));
    }

    #[test]
    fn comm_cost_series_matches_records() {
        let mut h = PartitionHistory::new();
        h.push(record(1, 2.0, 100.0, StreamPhase::Tempering));
        h.push(record(2, 1.5, 90.0, StreamPhase::Tempering));
        assert_eq!(h.comm_cost_series(), vec![(1, 100.0), (2, 90.0)]);
    }

    #[test]
    fn csv_rows_match_header_field_count() {
        let mut h = PartitionHistory::new();
        h.push(record(1, 2.0, 100.0, StreamPhase::Tempering));
        let header_fields = PartitionHistory::csv_header().split(',').count();
        for line in h.to_csv().lines() {
            assert_eq!(line.split(',').count(), header_fields);
        }
        assert!(h.to_csv().contains("tempering"));
    }
}
