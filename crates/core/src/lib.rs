//! HyperPRAW: architecture-aware restreaming hypergraph partitioning.
//!
//! This crate implements the primary contribution of
//! *"HyperPRAW: Architecture-Aware Hypergraph Restreaming Partition to
//! Improve Performance of Parallel Applications Running on High Performance
//! Computing Systems"* (Fernandez Musoles, Coca, Richmond — ICPP 2019):
//!
//! * a **streaming** hypergraph partitioner that assigns one vertex at a
//!   time using only local information (the vertex's neighbourhood, the
//!   current partition loads and a communication-cost matrix),
//! * a **restreaming** driver that repeats the stream, tempering the
//!   workload-imbalance weight `α` FENNEL-style (×1.7 per stream) until the
//!   imbalance tolerance is met,
//! * a **refinement phase** that keeps streaming after the tolerance is met
//!   (optionally relaxing `α` by 0.95 per stream) and stops when the
//!   *partitioning communication cost* stops improving — the paper's third
//!   contribution,
//! * the **architecture-aware** vertex value function
//!   `V_i(v) = −N_i(v)·T_i(v) − α·W(i)/E(i)` where the communication term
//!   `T_i(v)` weighs remote neighbours by the profiled cost matrix `C(i,j)`.
//!
//! The two paper variants are selected by the cost matrix:
//! **HyperPRAW-basic** uses [`CostMatrix::uniform`]
//! (architecture-oblivious), **HyperPRAW-aware** uses a matrix derived from
//! bandwidth profiling ([`CostMatrix::from_bandwidth`]).
//!
//! ## Architecture: one engine, pluggable axes
//!
//! Algorithm 1 is implemented exactly once, by the generic restreaming
//! [`engine`]; every driver is a thin instantiation of it along three
//! orthogonal axes:
//!
//! * **vertex source** ([`engine::VertexSource`]) — where the vertices
//!   come from: an in-memory hypergraph in natural/shuffled/degree order
//!   ([`engine::InMemorySource`]), or any on-disk
//!   `hypergraph::io::stream::VertexStream` via [`engine::StreamSource`];
//! * **connectivity provider** ([`engine::ConnectivityProvider`]) — where
//!   the neighbour-partition counts `X_j(v)` come from: a precomputed
//!   deduplicated neighbour adjacency ([`engine::AdjProvider`], the
//!   in-memory default, selected by [`Connectivity`]), exact CSR
//!   traversal ([`engine::CsrProvider`]), or `hyperpraw-lowmem`'s
//!   budget-bounded exact/sketched connectivity indices — the in-memory
//!   providers are interchangeable bit for bit;
//! * **execution strategy** ([`engine::ExecutionStrategy`]) — sequential
//!   decisions with fresh information, deterministic bulk-synchronous
//!   windows scored by worker threads against a frozen snapshot, or
//!   lock-free work stealing against live atomic shared state with
//!   bounded staleness (the fast mode).
//!
//! [`HyperPraw`] is `InMemorySource × AdjProvider × Sequential`,
//! [`ParallelHyperPraw`] swaps in the chunked or work-stealing strategy
//! (selected by [`ParallelMode`]), and the `hyperpraw-lowmem` crate
//! instantiates the streamed source with the sketched providers — in any
//! strategy, which yields parallel out-of-core partitioning without a
//! fourth copy of the loop.
//!
//! ```
//! use hyperpraw_core::{HyperPraw, HyperPrawConfig};
//! use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
//! use hyperpraw_topology::{BandwidthMatrix, CostMatrix, MachineModel};
//!
//! let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
//! let machine = MachineModel::archer_like(16);
//! let bandwidth = BandwidthMatrix::from_machine(&machine, 0.05, 1);
//! let cost = CostMatrix::from_bandwidth(&bandwidth);
//!
//! let partitioner = HyperPraw::aware(HyperPrawConfig::default(), cost);
//! let result = partitioner.partition(&hg);
//! assert_eq!(result.partition.num_parts(), 16);
//! assert!(result.partition.imbalance(&hg).unwrap() <= 1.2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod restream;

pub mod baselines;
pub mod engine;
pub mod history;
pub mod metrics;
pub mod parallel;
pub mod value;

pub use config::{Connectivity, HyperPrawConfig, RefinementPolicy, StreamOrder};
pub use history::{IterationRecord, PartitionHistory, StreamPhase};
pub use parallel::{ParallelConfig, ParallelHyperPraw, ParallelMode};
pub use restream::{HyperPraw, PartitionResult, StopReason};

// Re-export the cost matrix type so downstream users do not need to depend
// on the topology crate for the common case.
pub use hyperpraw_topology::CostMatrix;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::metrics::{partitioning_communication_cost, QualityReport};
    pub use crate::{
        CostMatrix, HyperPraw, HyperPrawConfig, ParallelHyperPraw, PartitionResult,
        RefinementPolicy, StopReason, StreamOrder,
    };
}
