//! HyperPRAW: architecture-aware restreaming hypergraph partitioning.
//!
//! This crate implements the primary contribution of
//! *"HyperPRAW: Architecture-Aware Hypergraph Restreaming Partition to
//! Improve Performance of Parallel Applications Running on High Performance
//! Computing Systems"* (Fernandez Musoles, Coca, Richmond — ICPP 2019):
//!
//! * a **streaming** hypergraph partitioner that assigns one vertex at a
//!   time using only local information (the vertex's neighbourhood, the
//!   current partition loads and a communication-cost matrix),
//! * a **restreaming** driver that repeats the stream, tempering the
//!   workload-imbalance weight `α` FENNEL-style (×1.7 per stream) until the
//!   imbalance tolerance is met,
//! * a **refinement phase** that keeps streaming after the tolerance is met
//!   (optionally relaxing `α` by 0.95 per stream) and stops when the
//!   *partitioning communication cost* stops improving — the paper's third
//!   contribution,
//! * the **architecture-aware** vertex value function
//!   `V_i(v) = −N_i(v)·T_i(v) − α·W(i)/E(i)` where the communication term
//!   `T_i(v)` weighs remote neighbours by the profiled cost matrix `C(i,j)`.
//!
//! The two paper variants are selected by the cost matrix:
//! **HyperPRAW-basic** uses [`CostMatrix::uniform`]
//! (architecture-oblivious), **HyperPRAW-aware** uses a matrix derived from
//! bandwidth profiling ([`CostMatrix::from_bandwidth`]).
//!
//! ```
//! use hyperpraw_core::{HyperPraw, HyperPrawConfig};
//! use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
//! use hyperpraw_topology::{BandwidthMatrix, CostMatrix, MachineModel};
//!
//! let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
//! let machine = MachineModel::archer_like(16);
//! let bandwidth = BandwidthMatrix::from_machine(&machine, 0.05, 1);
//! let cost = CostMatrix::from_bandwidth(&bandwidth);
//!
//! let partitioner = HyperPraw::aware(HyperPrawConfig::default(), cost);
//! let result = partitioner.partition(&hg);
//! assert_eq!(result.partition.num_parts(), 16);
//! assert!(result.partition.imbalance(&hg).unwrap() <= 1.2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod restream;
mod state;
mod stream;

pub mod baselines;
pub mod history;
pub mod metrics;
pub mod parallel;
pub mod value;

pub use config::{HyperPrawConfig, RefinementPolicy, StreamOrder};
pub use history::{IterationRecord, PartitionHistory, StreamPhase};
pub use parallel::{ParallelConfig, ParallelHyperPraw};
pub use restream::{HyperPraw, PartitionResult, StopReason};

// Re-export the cost matrix type so downstream users do not need to depend
// on the topology crate for the common case.
pub use hyperpraw_topology::CostMatrix;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::metrics::{partitioning_communication_cost, QualityReport};
    pub use crate::{
        CostMatrix, HyperPraw, HyperPrawConfig, ParallelHyperPraw, PartitionResult,
        RefinementPolicy, StopReason, StreamOrder,
    };
}
