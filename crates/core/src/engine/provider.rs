//! How neighbour-partition counts are obtained — the engine's state axis.
//!
//! For each visited vertex the engine needs the counts `X_j(v)` consumed by
//! the value function ([`crate::value`]). A [`ConnectivityProvider`]
//! answers that query and absorbs assignment updates; implementations
//! differ only in *where the connectivity state lives*:
//!
//! * [`CsrProvider`] — traverses an in-memory CSR [`Hypergraph`] with a
//!   per-worker [`NeighborScratch`], counting **distinct neighbour
//!   vertices** per partition against the assignment the engine passes in.
//!   Holds no state of its own, so detach/attach are no-ops.
//! * [`AdjProvider`] — answers the same query from a precomputed
//!   deduplicated neighbour adjacency ([`NeighborAdjacency`]): one flat,
//!   cache-linear scan per visit instead of re-deduplicating the
//!   neighbourhood through the epoch array on every pass. Budget-aware
//!   and hybrid — hub vertices above the adjacency's degree cutover fall
//!   back to epoch traversal — and **bit-identical** to [`CsrProvider`]
//!   (both paths produce the same exact integer counts). This is the
//!   default in-memory provider.
//! * `hyperpraw-lowmem`'s `IndexProvider` — answers from a budgeted
//!   `ConnectivityIndex` (exact hash maps, or Bloom/MinHash sketches),
//!   counting **connected nets** per partition; attach/detach record and
//!   (when supported) forget net incidences.
//!
//! Scoring reads take `&self` plus a worker-local
//! [`ConnectivityProvider::Scratch`], so the bulk-synchronous execution
//! strategy can fan the same provider out across worker threads; all
//! mutation happens on the engine thread at synchronisation points.
//! [`AdjProvider`]'s scratch is O(1) until a hub is met (the traversal
//! scratch materialises lazily), which keeps per-worker memory flat as
//! the bulk-synchronous strategy scales out.

use hyperpraw_hypergraph::io::stream::VertexRecord;
use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{AdjacencyBudget, AssignmentRef, Hypergraph, NeighborAdjacency};

/// Supplies neighbour-partition counts to the restreaming engine and
/// tracks assignment changes, when the implementation keeps its own
/// connectivity state.
pub trait ConnectivityProvider: Sync {
    /// Worker-local scratch handed to every [`ConnectivityProvider::count`]
    /// call; one instance per worker thread, reused across windows and
    /// passes.
    type Scratch: Send;

    /// Creates one worker's scratch space.
    fn new_scratch(&self) -> Self::Scratch;

    /// Whether the provider reads [`VertexRecord::nets`]. CSR traversal
    /// does not, which lets in-memory sources skip copying incidence
    /// lists into each record.
    fn needs_nets(&self) -> bool {
        true
    }

    /// Whether [`ConnectivityProvider::count`] reads the `assignment`
    /// argument (true for the in-memory providers, whose counts therefore
    /// track the work-stealing strategy's live atomic view), or answers
    /// from internal state that only changes at
    /// [`ConnectivityProvider::attach`]/[`ConnectivityProvider::detach`]
    /// (the index providers). The work-stealing strategy keeps its batches
    /// small for non-live providers so that state never falls more than a
    /// bounded window behind the stream.
    fn live_counts(&self) -> bool {
        true
    }

    /// Called once at the start of every stream. `rebuild` asks the
    /// provider to drop accumulated state it cannot forget incrementally
    /// (sketch staleness shedding); providers with exact, reversible state
    /// ignore it.
    fn begin_pass(&mut self, pass: usize, rebuild: bool) {
        let _ = (pass, rebuild);
    }

    /// Writes the neighbour-partition counts `X_j(v)` for `record` into
    /// `counts` (cleared and resized), evaluated against `assignment` —
    /// the live assignment in sequential execution, a frozen snapshot in
    /// bulk-synchronous execution, or a live atomic view (with bounded
    /// staleness) in work-stealing execution, which is why the parameter
    /// is any [`AssignmentRef`] rather than a concrete `Partition`. The
    /// vertex's own contribution must be excluded when the provider can
    /// tell (CSR traversal excludes the vertex itself; index providers
    /// rely on the engine detaching first).
    fn count<A: AssignmentRef>(
        &self,
        record: &VertexRecord,
        assignment: &A,
        scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    );

    /// Removes `record`'s contribution to `part` from the provider's own
    /// state, where supported (sketches cannot forget and accept the
    /// staleness). Stateless providers do nothing.
    fn detach(&mut self, record: &VertexRecord, part: u32) {
        let _ = (record, part);
    }

    /// Records that `record` is now assigned to `part` in the provider's
    /// own state. Stateless providers do nothing.
    fn attach(&mut self, record: &VertexRecord, part: u32) {
        let _ = (record, part);
    }

    /// Confidence in a decision with the given value `margin`, in
    /// `[margin / 2, margin]`. Providers that can estimate how similar the
    /// vertex's nets are to the chosen partition discount near-ties whose
    /// connectivity evidence is weak; the default trusts the margin.
    fn confidence(&self, record: &VertexRecord, part: u32, margin: f64) -> f64 {
        let _ = (record, part);
        margin
    }
}

/// [`ConnectivityProvider`] over an in-memory CSR hypergraph: counts
/// distinct neighbour vertices per partition, the exact `X_j(v)` of the
/// paper. All state is the assignment itself, so the provider is free to
/// share across worker threads.
#[derive(Clone, Copy, Debug)]
pub struct CsrProvider<'a> {
    hg: &'a Hypergraph,
}

impl<'a> CsrProvider<'a> {
    /// Creates a provider traversing `hg`.
    pub fn new(hg: &'a Hypergraph) -> Self {
        Self { hg }
    }
}

impl ConnectivityProvider for CsrProvider<'_> {
    type Scratch = NeighborScratch;

    fn new_scratch(&self) -> Self::Scratch {
        NeighborScratch::new(self.hg.num_vertices())
    }

    fn needs_nets(&self) -> bool {
        false
    }

    fn count<A: AssignmentRef>(
        &self,
        record: &VertexRecord,
        assignment: &A,
        scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    ) {
        scratch.neighbor_partition_counts(self.hg, assignment, record.vertex, counts);
    }
}

/// [`ConnectivityProvider`] over a precomputed [`NeighborAdjacency`]:
/// distinct-neighbour partition counts answered by one flat scan of the
/// vertex's deduplicated neighbour list — no epoch array, no nested pin
/// loop. Hub vertices above the adjacency's degree cutover traverse the
/// hypergraph through a lazily created per-worker [`NeighborScratch`]
/// instead, so dense instances degrade gracefully rather than exploding
/// the adjacency quadratically.
///
/// Counts are exact integers on both paths, making the provider
/// bit-identical to [`CsrProvider`] — it slots under the engine's
/// equivalence guarantees (f64 history bit-equality) unchanged.
///
/// The adjacency is either owned ([`AdjProvider::new`] builds it) or
/// borrowed ([`AdjProvider::from_adjacency`]), so one precomputation can
/// be shared with other consumers — the in-memory drivers reuse it for
/// the per-pass comm-cost evaluation
/// ([`crate::engine::ExactCommCost::with_adjacency`]).
#[derive(Clone, Debug)]
pub struct AdjProvider<'a> {
    hg: &'a Hypergraph,
    adj: std::borrow::Cow<'a, NeighborAdjacency>,
    /// Counts hub vertices answered through the traversal fallback; a
    /// no-op unless bound via [`AdjProvider::with_registry`]. Shared by
    /// clones, so worker threads all bump the same cell.
    hub_fallbacks: hyperpraw_telemetry::Counter,
}

/// Worker-local scratch of [`AdjProvider`]: empty (O(1)) until the worker
/// meets a hub vertex, at which point the `O(|V|)` epoch scratch for the
/// traversal fallback is created once and reused.
#[derive(Debug, Default)]
pub struct AdjScratch {
    fallback: Option<NeighborScratch>,
}

impl<'a> AdjProvider<'a> {
    /// Builds the adjacency for `hg` under `budget` and owns it.
    pub fn new(hg: &'a Hypergraph, budget: AdjacencyBudget) -> Self {
        Self {
            hg,
            adj: std::borrow::Cow::Owned(NeighborAdjacency::build(hg, budget)),
            hub_fallbacks: hyperpraw_telemetry::Counter::noop(),
        }
    }

    /// Borrows an adjacency built elsewhere (shared across consumers).
    pub fn from_adjacency(hg: &'a Hypergraph, adj: &'a NeighborAdjacency) -> Self {
        Self {
            hg,
            adj: std::borrow::Cow::Borrowed(adj),
            hub_fallbacks: hyperpraw_telemetry::Counter::noop(),
        }
    }

    /// Binds the `engine.hub_fallbacks` counter to `registry`: every
    /// connectivity count answered through the hub traversal fallback
    /// (rather than the flat adjacency list) increments it.
    pub fn with_registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.hub_fallbacks = registry.counter("engine.hub_fallbacks");
        self
    }

    /// The precomputed adjacency in use.
    pub fn adjacency(&self) -> &NeighborAdjacency {
        &self.adj
    }
}

impl ConnectivityProvider for AdjProvider<'_> {
    type Scratch = AdjScratch;

    fn new_scratch(&self) -> Self::Scratch {
        AdjScratch::default()
    }

    fn needs_nets(&self) -> bool {
        false
    }

    fn count<A: AssignmentRef>(
        &self,
        record: &VertexRecord,
        assignment: &A,
        scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    ) {
        if self.hub_fallbacks.is_enabled() && self.adj.is_hub(record.vertex) {
            self.hub_fallbacks.inc();
        }
        self.adj.neighbor_partition_counts(
            self.hg,
            assignment,
            record.vertex,
            &mut scratch.fallback,
            counts,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::{HypergraphBuilder, Partition};

    #[test]
    fn csr_provider_counts_distinct_neighbours_excluding_self() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5]);
        let hg = b.build();
        let provider = CsrProvider::new(&hg);
        assert!(!provider.needs_nets());
        let part = Partition::round_robin(6, 3);
        let mut scratch = provider.new_scratch();
        let mut counts = Vec::new();
        let record = VertexRecord {
            vertex: 2,
            weight: 1.0,
            nets: vec![],
        };
        provider.count(&record, &part, &mut scratch, &mut counts);
        // Neighbours of 2 are {0,1,3,4} in parts {0,1,0,1}.
        assert_eq!(counts, vec![2, 2, 0]);
        // Confidence defaults to the margin.
        assert_eq!(provider.confidence(&record, 0, 0.25), 0.25);
    }

    #[test]
    fn adj_provider_matches_csr_provider_counts() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5]);
        let hg = b.build();
        let csr = CsrProvider::new(&hg);
        let part = Partition::round_robin(6, 3);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for budget in [
            AdjacencyBudget::Unbounded,
            AdjacencyBudget::Auto,
            AdjacencyBudget::DegreeCutoff(2), // forces hubs onto the fallback
            AdjacencyBudget::DegreeCutoff(0), // every connected vertex is a hub
        ] {
            let adj = AdjProvider::new(&hg, budget);
            assert!(!adj.needs_nets());
            let mut csr_scratch = csr.new_scratch();
            let mut adj_scratch = adj.new_scratch();
            for v in hg.vertices() {
                let record = VertexRecord {
                    vertex: v,
                    weight: 1.0,
                    nets: vec![],
                };
                csr.count(&record, &part, &mut csr_scratch, &mut expected);
                adj.count(&record, &part, &mut adj_scratch, &mut got);
                assert_eq!(got, expected, "budget {budget:?}, vertex {v}");
            }
            // The O(|V|) fallback scratch only exists when hubs exist.
            assert_eq!(
                adj_scratch.fallback.is_some(),
                adj.adjacency().num_hubs() > 0,
                "budget {budget:?}"
            );
        }
    }

    #[test]
    fn adj_provider_reuses_an_external_adjacency() {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1, 2, 3]);
        let hg = b.build();
        let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        let provider = AdjProvider::from_adjacency(&hg, &adj);
        assert_eq!(provider.adjacency().num_vertices(), 4);
        assert_eq!(provider.adjacency().distinct_degree(0), 3);
    }
}
