//! How neighbour-partition counts are obtained — the engine's state axis.
//!
//! For each visited vertex the engine needs the counts `X_j(v)` consumed by
//! the value function ([`crate::value`]). A [`ConnectivityProvider`]
//! answers that query and absorbs assignment updates; implementations
//! differ only in *where the connectivity state lives*:
//!
//! * [`CsrProvider`] — traverses an in-memory CSR [`Hypergraph`] with a
//!   per-worker [`NeighborScratch`], counting **distinct neighbour
//!   vertices** per partition against the assignment the engine passes in.
//!   Holds no state of its own, so detach/attach are no-ops.
//! * `hyperpraw-lowmem`'s `IndexProvider` — answers from a budgeted
//!   `ConnectivityIndex` (exact hash maps, or Bloom/MinHash sketches),
//!   counting **connected nets** per partition; attach/detach record and
//!   (when supported) forget net incidences.
//!
//! Scoring reads take `&self` plus a worker-local
//! [`ConnectivityProvider::Scratch`], so the bulk-synchronous execution
//! strategy can fan the same provider out across worker threads; all
//! mutation happens on the engine thread at synchronisation points.

use hyperpraw_hypergraph::io::stream::VertexRecord;
use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{Hypergraph, Partition};

/// Supplies neighbour-partition counts to the restreaming engine and
/// tracks assignment changes, when the implementation keeps its own
/// connectivity state.
pub trait ConnectivityProvider: Sync {
    /// Worker-local scratch handed to every [`ConnectivityProvider::count`]
    /// call; one instance per worker thread, reused across windows and
    /// passes.
    type Scratch: Send;

    /// Creates one worker's scratch space.
    fn new_scratch(&self) -> Self::Scratch;

    /// Whether the provider reads [`VertexRecord::nets`]. CSR traversal
    /// does not, which lets in-memory sources skip copying incidence
    /// lists into each record.
    fn needs_nets(&self) -> bool {
        true
    }

    /// Called once at the start of every stream. `rebuild` asks the
    /// provider to drop accumulated state it cannot forget incrementally
    /// (sketch staleness shedding); providers with exact, reversible state
    /// ignore it.
    fn begin_pass(&mut self, pass: usize, rebuild: bool) {
        let _ = (pass, rebuild);
    }

    /// Writes the neighbour-partition counts `X_j(v)` for `record` into
    /// `counts` (cleared and resized), evaluated against `assignment` —
    /// the live assignment in sequential execution, a frozen snapshot in
    /// bulk-synchronous execution. The vertex's own contribution must be
    /// excluded when the provider can tell (CSR traversal excludes the
    /// vertex itself; index providers rely on the engine detaching first).
    fn count(
        &self,
        record: &VertexRecord,
        assignment: &Partition,
        scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    );

    /// Removes `record`'s contribution to `part` from the provider's own
    /// state, where supported (sketches cannot forget and accept the
    /// staleness). Stateless providers do nothing.
    fn detach(&mut self, record: &VertexRecord, part: u32) {
        let _ = (record, part);
    }

    /// Records that `record` is now assigned to `part` in the provider's
    /// own state. Stateless providers do nothing.
    fn attach(&mut self, record: &VertexRecord, part: u32) {
        let _ = (record, part);
    }

    /// Confidence in a decision with the given value `margin`, in
    /// `[margin / 2, margin]`. Providers that can estimate how similar the
    /// vertex's nets are to the chosen partition discount near-ties whose
    /// connectivity evidence is weak; the default trusts the margin.
    fn confidence(&self, record: &VertexRecord, part: u32, margin: f64) -> f64 {
        let _ = (record, part);
        margin
    }
}

/// [`ConnectivityProvider`] over an in-memory CSR hypergraph: counts
/// distinct neighbour vertices per partition, the exact `X_j(v)` of the
/// paper. All state is the assignment itself, so the provider is free to
/// share across worker threads.
#[derive(Clone, Copy, Debug)]
pub struct CsrProvider<'a> {
    hg: &'a Hypergraph,
}

impl<'a> CsrProvider<'a> {
    /// Creates a provider traversing `hg`.
    pub fn new(hg: &'a Hypergraph) -> Self {
        Self { hg }
    }
}

impl ConnectivityProvider for CsrProvider<'_> {
    type Scratch = NeighborScratch;

    fn new_scratch(&self) -> Self::Scratch {
        NeighborScratch::new(self.hg.num_vertices())
    }

    fn needs_nets(&self) -> bool {
        false
    }

    fn count(
        &self,
        record: &VertexRecord,
        assignment: &Partition,
        scratch: &mut Self::Scratch,
        counts: &mut Vec<u32>,
    ) {
        scratch.neighbor_partition_counts(self.hg, assignment, record.vertex, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::HypergraphBuilder;

    #[test]
    fn csr_provider_counts_distinct_neighbours_excluding_self() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5]);
        let hg = b.build();
        let provider = CsrProvider::new(&hg);
        assert!(!provider.needs_nets());
        let part = Partition::round_robin(6, 3);
        let mut scratch = provider.new_scratch();
        let mut counts = Vec::new();
        let record = VertexRecord {
            vertex: 2,
            weight: 1.0,
            nets: vec![],
        };
        provider.count(&record, &part, &mut scratch, &mut counts);
        // Neighbours of 2 are {0,1,3,4} in parts {0,1,0,1}.
        assert_eq!(counts, vec![2, 2, 0]);
        // Confidence defaults to the margin.
        assert_eq!(provider.confidence(&record, 0, 0.25), 0.25);
    }
}
