//! The generic restreaming engine — one implementation of the paper's
//! Algorithm 1 shared by every partitioning driver in the workspace.
//!
//! HyperPRAW's restreaming loop is a single algorithm: visit every vertex,
//! score each candidate partition with the value function of
//! [`crate::value`], assign greedily, temper the balance weight `α` until
//! the imbalance tolerance holds, then refine while the partitioning
//! communication cost improves. What varies between deployment scenarios
//! is *where the vertices come from*, *where the connectivity state
//! lives*, and *how the stream is executed*. The engine factors those
//! three axes into pluggable traits and keeps the loop itself in one
//! place:
//!
//! ```text
//!                       ┌──────────────────────────────┐
//!                       │          Engine::run         │
//!                       │  stream order · α tempering  │
//!                       │  tolerance / comm-cost stop  │
//!                       │  PartitionHistory · doubts   │
//!                       └──────┬───────┬───────┬───────┘
//!            ┌─────────────────┘       │       └──────────────────┐
//!            ▼                         ▼                          ▼
//!   VertexSource             ConnectivityProvider        ExecutionStrategy
//!   "which vertex next?"     "who are its neighbours?"   "who decides when?"
//!   ├ InMemorySource         ├ AdjProvider (default:     ├ Sequential
//!   │  (natural/shuffled/    │   precomputed dedup CSR,  │   (fresh info per
//!   │   degree order)        │   flat scan; budgeted,    │    vertex,
//!   └ StreamSource over any  │   hubs fall back to       │    deterministic)
//!      io::stream source     │   epoch traversal)        ├ Chunked BSP
//!      (on-disk transpose,   ├ CsrProvider (epoch        │   (frozen snapshot
//!       InMemoryVertexStream)│   scratch over the CSR)   │    + local deltas,
//!                            ├ lowmem ExactIndex         │    deterministic)
//!                            │   (hash maps, exact,      └ WorkStealing
//!                            │    reversible)                (atomic cursor,
//!                            └ lowmem SketchIndex            live shared
//!                                (Bloom + MinHash,           state, bounded
//!                                 budget-bounded)            staleness, fast)
//! ```
//!
//! The three strategies trade information freshness against wall-clock:
//! **Sequential** is the paper's Algorithm 1 and the determinism anchor;
//! **Chunked** (bulk-synchronous) keeps bit-reproducible parallel results
//! by scoring frozen snapshots and applying at window boundaries;
//! **WorkStealing** drops the barrier entirely — one thread team per
//! batch claims fixed-size vertex chunks off a shared atomic cursor
//! ([`hyperpraw_hypergraph::ChunkCursor`]) and scores against *live*
//! shared state (the assignment as an atomic slice, per-part loads as
//! fixed-point atomics), accepting bounded staleness in exchange for
//! near-linear scaling. Both parallel strategies degenerate to the exact
//! sequential placement loop at one worker.
//!
//! Every combination is valid: [`crate::HyperPraw`] is
//! `InMemorySource × AdjProvider × Sequential` (the
//! [`crate::Connectivity`] config axis swaps `CsrProvider` back in),
//! [`crate::ParallelHyperPraw`] swaps in `Chunked`, `hyperpraw-lowmem`
//! runs `StreamSource × IndexProvider` in either strategy — which is how
//! bulk-synchronous *out-of-core* partitioning (a scenario none of the
//! original drivers supported) falls out for free.
//!
//! `AdjProvider` and `CsrProvider` answer the identical distinct-neighbour
//! query with exact integer counts, so switching between them never
//! changes a partition: the engine-equivalence suite holds bit for bit
//! (f64 history equality) under either. What changes is the cost model —
//! `CsrProvider` re-deduplicates `O(Σ_{e∋v}|e|)` pins per visit on every
//! pass through an `O(|V|)` epoch scratch per worker, while `AdjProvider`
//! pays one parallel dedup up front, scans a flat list per visit, and
//! needs only O(1) worker scratch until a budget-capped *hub* vertex
//! falls back to traversal.
//!
//! The engine also owns the two cross-cutting quality devices the drivers
//! used to duplicate: the bounded **doubt buffer** (the `k`
//! lowest-confidence placements are revisited once against the final
//! state) and **sketch rebuilding** (providers that cannot forget are
//! reset between restreaming passes to shed staleness).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering as AtomicOrdering};
use std::thread;

use hyperpraw_hypergraph::io::stream::VertexRecord;
use hyperpraw_hypergraph::io::IoResult;
use hyperpraw_hypergraph::{
    AssignmentRef, ChunkCursor, HyperedgeId, Hypergraph, NeighborAdjacency, Partition, VertexId,
};
use hyperpraw_telemetry::{Counter, Gauge, Histogram, Registry};
use hyperpraw_topology::CostMatrix;

use crate::history::{IterationRecord, PartitionHistory, StreamPhase};
use crate::metrics::{partitioning_communication_cost, partitioning_communication_cost_with};
use crate::value::{best_partition_in, ScoredPartition, ValueScratch};
use crate::{HyperPrawConfig, RefinementPolicy};

mod provider;
mod source;

pub use provider::{AdjProvider, AdjScratch, ConnectivityProvider, CsrProvider};
pub use source::{stream_order, DirtySetSource, InMemorySource, StreamSource, VertexSource};

/// Why the restreaming loop stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The imbalance tolerance was reached and the configuration requested
    /// no refinement (the GraSP-style stopping rule).
    ToleranceReached,
    /// The refinement phase stopped because the partitioning communication
    /// cost ceased to improve; the previous (better) partition is returned.
    CommCostConverged,
    /// The iteration limit `N` was exhausted.
    MaxIterations,
}

impl StopReason {
    /// Name as printed in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StopReason::ToleranceReached => "tolerance-reached",
            StopReason::CommCostConverged => "comm-cost-converged",
            StopReason::MaxIterations => "max-iterations",
        }
    }
}

/// How the engine executes one stream over the vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// One decision at a time with fully fresh information — the paper's
    /// sequential Algorithm 1.
    Sequential,
    /// Bulk-synchronous chunked streaming (the GraSP-style extension): the
    /// stream is processed in windows of `sync_interval` vertices; within
    /// a window, worker threads propose assignments for their slices
    /// against a frozen snapshot of the assignment (tracking their own
    /// load deltas, scaled by the worker count to anticipate concurrent
    /// placements), and all proposals are applied at the window boundary.
    Chunked {
        /// Number of worker threads. A single worker degenerates to
        /// [`ExecutionStrategy::Sequential`] (no snapshot is needed when
        /// nobody races you).
        num_threads: usize,
        /// Vertices per synchronisation window; smaller windows mean
        /// fresher information at the price of synchronisation overhead.
        sync_interval: usize,
    },
    /// Lock-free work-stealing streaming: one thread team per batch claims
    /// fixed-size vertex chunks off a shared atomic cursor and scores
    /// against *live* shared state — the assignment as an `AtomicU32`
    /// slice, per-part loads as fixed-point `AtomicI64` counters — with
    /// bounded staleness instead of full synchronisation windows. Fast and
    /// valid at any thread count, but (unlike [`ExecutionStrategy::Chunked`])
    /// not bit-reproducible across runs for more than one worker; a single
    /// worker degenerates to [`ExecutionStrategy::Sequential`] exactly.
    WorkStealing {
        /// Number of worker threads.
        num_threads: usize,
        /// Vertices per claimed chunk — the staleness granularity of the
        /// *provider* state (the atomic assignment and load views are
        /// updated per vertex). [`DEFAULT_STEAL_CHUNK`] suits most runs.
        chunk: usize,
    },
}

/// Default vertex-chunk size claimed per cursor hit by
/// [`ExecutionStrategy::WorkStealing`] workers: small enough to
/// self-balance across heterogeneous vertex degrees, large enough that the
/// claim `fetch_add` never shows up in a profile.
pub const DEFAULT_STEAL_CHUNK: usize = 64;

/// How the partition is initialised before the first stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialAssignment {
    /// Algorithm 1's round-robin start: every vertex begins on partition
    /// `v mod p` and the first stream already *re*-assigns. Requires one
    /// seeding pass over the source (to push the prior into index-backed
    /// providers and accumulate the initial loads).
    RoundRobin,
    /// True one-pass streaming: vertices are unassigned until first
    /// visited, contribute no load, and unseen vertices contribute no
    /// connectivity.
    Unassigned,
}

/// The bounded buffer of lowest-confidence placements revisited after the
/// final stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoubtConfig {
    /// Maximum number of buffered placements (`0` disables the buffer).
    pub capacity: usize,
    /// Byte bound on the buffer: whatever the entry count, high-degree
    /// entries cannot hold more than this many heap bytes.
    pub byte_bound: usize,
}

impl Default for DoubtConfig {
    fn default() -> Self {
        Self {
            capacity: 0,
            byte_bound: usize::MAX,
        }
    }
}

/// Configuration of the generic restreaming engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Initial `α`; `None` uses the FENNEL-derived starting point.
    pub initial_alpha: Option<f64>,
    /// Multiplicative `α` update while the imbalance is above tolerance.
    pub tempering_factor: f64,
    /// Behaviour once the imbalance tolerance has been reached.
    pub refinement: RefinementPolicy,
    /// Maximum allowed total imbalance `max_k W(k) / avg_k W(k)`.
    pub imbalance_tolerance: f64,
    /// Maximum number of streams.
    pub max_iterations: usize,
    /// Record per-iteration history.
    pub track_history: bool,
    /// Sequential or bulk-synchronous execution.
    pub strategy: ExecutionStrategy,
    /// Round-robin restreaming start or one-pass streaming start.
    pub initial: InitialAssignment,
    /// Ask the provider to drop irreversible connectivity state at the
    /// start of every pass after the first, shedding sketch staleness at
    /// the price of a cold start for the early vertices of the pass.
    /// Providers with exact, reversible state ignore this.
    pub rebuild_between_passes: bool,
    /// Bounded low-confidence revisit buffer.
    pub doubts: DoubtConfig,
}

impl EngineConfig {
    /// The classic in-memory restreaming configuration of
    /// [`crate::HyperPraw`], derived from a [`HyperPrawConfig`] (stream
    /// order and seed are consumed by the [`InMemorySource`] instead).
    pub fn restreaming(config: &HyperPrawConfig) -> Self {
        Self {
            initial_alpha: config.initial_alpha,
            tempering_factor: config.tempering_factor,
            refinement: config.refinement,
            imbalance_tolerance: config.imbalance_tolerance,
            max_iterations: config.max_iterations,
            track_history: config.track_history,
            strategy: ExecutionStrategy::Sequential,
            initial: InitialAssignment::RoundRobin,
            rebuild_between_passes: false,
            doubts: DoubtConfig::default(),
        }
    }

    /// A one-pass streaming configuration with a frozen `α` (the
    /// `hyperpraw-lowmem` regime): no tolerance gate, `passes` streams,
    /// refinement-style stopping when a pass moves nothing.
    pub fn streaming(alpha: Option<f64>, passes: usize) -> Self {
        Self {
            initial_alpha: alpha,
            tempering_factor: 1.7,
            refinement: if passes > 1 {
                RefinementPolicy::Factor(1.0)
            } else {
                RefinementPolicy::None
            },
            imbalance_tolerance: f64::INFINITY,
            max_iterations: passes.max(1),
            track_history: false,
            strategy: ExecutionStrategy::Sequential,
            initial: InitialAssignment::Unassigned,
            rebuild_between_passes: false,
            doubts: DoubtConfig::default(),
        }
    }

    /// Replaces the execution strategy.
    pub fn with_strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Validates parameter ranges, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tempering_factor <= 1.0 {
            return Err(format!(
                "tempering factor must exceed 1.0 (got {})",
                self.tempering_factor
            ));
        }
        if self.imbalance_tolerance < 1.0 {
            return Err("imbalance tolerance below 1.0 is unsatisfiable".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".into());
        }
        if let RefinementPolicy::Factor(f) = self.refinement {
            if f <= 0.0 || f > 1.5 {
                return Err(format!("refinement factor {f} out of (0, 1.5]"));
            }
        }
        match self.strategy {
            ExecutionStrategy::Sequential => {}
            ExecutionStrategy::Chunked { num_threads, .. } => {
                if num_threads == 0 {
                    return Err("need at least one worker thread".into());
                }
            }
            ExecutionStrategy::WorkStealing { num_threads, chunk } => {
                if num_threads == 0 {
                    return Err("need at least one worker thread".into());
                }
                if chunk == 0 {
                    return Err("work-stealing chunk must be at least 1".into());
                }
            }
        }
        Ok(())
    }
}

/// How the engine evaluates the partitioning communication cost after each
/// pass — the refinement phase's stopping signal. Out-of-core runs cannot
/// afford the evaluation and return `None`, which disables cost-based
/// rollback (the loop then stops on fixed points or the iteration limit).
pub trait CommCostModel {
    /// Cost of `partition` under `cost`, when computable.
    fn comm_cost(&mut self, partition: &Partition, cost: &CostMatrix) -> Option<f64>;
}

/// Cost model for out-of-core runs: never evaluates.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCommCost;

impl CommCostModel for NoCommCost {
    fn comm_cost(&mut self, _partition: &Partition, _cost: &CostMatrix) -> Option<f64> {
        None
    }
}

/// Exact evaluation over an in-memory hypergraph
/// ([`partitioning_communication_cost`]). When a precomputed
/// [`NeighborAdjacency`] is supplied — the in-memory drivers share the
/// provider's — every per-pass evaluation scans flat neighbour lists
/// instead of re-deduplicating each neighbourhood, with bit-identical
/// results ([`partitioning_communication_cost_with`]).
#[derive(Clone, Copy, Debug)]
pub struct ExactCommCost<'a> {
    hg: &'a Hypergraph,
    adj: Option<&'a NeighborAdjacency>,
}

impl<'a> ExactCommCost<'a> {
    /// Creates a model evaluating against `hg` by neighbourhood traversal.
    pub fn new(hg: &'a Hypergraph) -> Self {
        Self { hg, adj: None }
    }

    /// Creates a model answering from a precomputed adjacency.
    pub fn with_adjacency(hg: &'a Hypergraph, adj: &'a NeighborAdjacency) -> Self {
        Self { hg, adj: Some(adj) }
    }
}

impl CommCostModel for ExactCommCost<'_> {
    fn comm_cost(&mut self, partition: &Partition, cost: &CostMatrix) -> Option<f64> {
        Some(match self.adj {
            Some(adj) => partitioning_communication_cost_with(self.hg, adj, partition, cost),
            None => partitioning_communication_cost(self.hg, partition, cost),
        })
    }
}

/// The outcome of an [`Engine::run`].
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// The selected vertex-to-partition assignment.
    pub partition: Partition,
    /// Per-stream history (empty unless tracking is enabled).
    pub history: PartitionHistory,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of streams executed.
    pub iterations: usize,
    /// The `α` in effect when the run stopped.
    pub final_alpha: f64,
    /// Communication cost of the returned partition (`NaN` when the cost
    /// model cannot evaluate).
    pub comm_cost: f64,
    /// Imbalance of the returned partition, taken from the engine's
    /// incrementally tracked workloads — the same value the stopping rule
    /// compared against the tolerance. Out-of-core sources cannot afford
    /// an exact recomputation; in-memory callers that need one can always
    /// evaluate `partition.imbalance(hg)` on the result.
    pub imbalance: f64,
    /// Number of buffered low-confidence placements revisited at the end.
    pub restreamed: usize,
    /// How many revisited placements changed partition.
    pub moved_in_restream: usize,
}

/// A buffered low-confidence placement awaiting the revisit pass.
#[derive(Clone, Debug)]
struct Doubt {
    confidence: f64,
    vertex: VertexId,
    weight: f64,
    nets: Vec<HyperedgeId>,
}

impl PartialEq for Doubt {
    fn eq(&self, other: &Self) -> bool {
        self.confidence == other.confidence && self.vertex == other.vertex
    }
}

impl Eq for Doubt {}

impl PartialOrd for Doubt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Doubt {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by confidence: the most confident buffered entry is
        // evicted first, keeping the k *least* confident. Vertex id breaks
        // ties deterministically.
        self.confidence
            .total_cmp(&other.confidence)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl Doubt {
    /// Approximate heap bytes held by one buffered entry.
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nets.capacity() * std::mem::size_of::<HyperedgeId>()
    }
}

/// The byte-bounded max-heap of doubts collected during a pass.
#[derive(Debug, Default)]
struct DoubtBuffer {
    heap: BinaryHeap<Doubt>,
    bytes: usize,
}

impl DoubtBuffer {
    fn clear(&mut self) {
        self.heap.clear();
        self.bytes = 0;
    }

    /// Records a placement unless its confidence floor already exceeds the
    /// buffer's current maximum (in which case it would be evicted right
    /// back out — skip the net-list clone entirely).
    fn offer<P: ConnectivityProvider>(
        &mut self,
        config: &DoubtConfig,
        provider: &P,
        record: &VertexRecord,
        part: u32,
        margin: f64,
    ) {
        if config.capacity == 0 {
            return;
        }
        // The provider's confidence stays within [margin / 2, margin].
        let hopeless = self.heap.len() >= config.capacity
            && self
                .heap
                .peek()
                .is_some_and(|max| 0.5 * margin > max.confidence);
        if hopeless {
            return;
        }
        let doubt = Doubt {
            confidence: provider.confidence(record, part, margin),
            vertex: record.vertex,
            weight: record.weight,
            nets: record.nets.clone(),
        };
        self.bytes += doubt.heap_bytes();
        self.heap.push(doubt);
        while self.heap.len() > config.capacity
            || (self.bytes > config.byte_bound && self.heap.len() > 1)
        {
            if let Some(evicted) = self.heap.pop() {
                self.bytes -= evicted.heap_bytes();
            }
        }
    }
}

/// Mutable state shared by every strategy: the assignment, the workloads
/// `W(k)` and the expected workloads `E(k)`.
#[derive(Clone, Debug)]
struct EngineState {
    partition: Partition,
    loads: Vec<f64>,
    expected: Vec<f64>,
}

impl EngineState {
    /// Total imbalance `max_k W(k) / avg_k W(k)` from the tracked loads.
    fn imbalance(&self) -> f64 {
        let total: f64 = self.loads.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let avg = total / self.loads.len() as f64;
        self.loads.iter().cloned().fold(f64::MIN, f64::max) / avg
    }
}

/// Per-worker scratch buffers, created once per run and reused across
/// windows and passes.
struct WorkerSlot<T> {
    scratch: T,
    counts: Vec<u32>,
    value: ValueScratch,
    delta: Vec<f64>,
    loads_view: Vec<f64>,
}

/// One live (fresh-information) placement — the shared inner step of the
/// sequential strategy, the single-worker chunked fallback and the doubt
/// revisit: detach `record` from `current`, count against the live
/// assignment, score, assign, attach. The caller handles move accounting
/// and doubt collection.
#[allow(clippy::too_many_arguments)] // the engine's hot path shares one state bundle
fn place_live<P: ConnectivityProvider>(
    cost: &CostMatrix,
    provider: &mut P,
    state: &mut EngineState,
    alpha: f64,
    record: &VertexRecord,
    current: Option<u32>,
    scratch: &mut P::Scratch,
    counts: &mut Vec<u32>,
    value: &mut ValueScratch,
) -> ScoredPartition {
    let w = record.weight;
    if let Some(cur) = current {
        state.loads[cur as usize] -= w;
        provider.detach(record, cur);
    }
    provider.count(record, &state.partition, scratch, counts);
    let scored = best_partition_in(counts, cost, alpha, &state.loads, &state.expected, value);
    state.partition.set(record.vertex, scored.part);
    state.loads[scored.part as usize] += w;
    provider.attach(record, scored.part);
    scored
}

/// A prior assignment handed to [`Engine::run_warm`]: the engine refines
/// it in place instead of seeding round-robin, so incremental callers can
/// restream only a dirty subset of vertices against full-graph state.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// The full-graph assignment to refine. Its part count must match the
    /// cost matrix and its vertex count must cover every vertex any
    /// connectivity query can reach.
    pub partition: Partition,
    /// Per-part vertex weight of `partition` (one entry per part) — the
    /// balance state the value function scores against from pass one.
    pub loads: Vec<f64>,
}

/// The generic restreaming engine. See the [module docs](self) for the
/// architecture; [`Engine::run`] is the single implementation of the
/// restreaming loop every driver delegates to.
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    metrics: EngineMetrics,
}

/// Telemetry handles bound by [`Engine::with_registry`]. The default
/// (disabled) handles make every recording below a no-op branch, and all
/// recording happens at pass, window or batch granularity — never per
/// vertex — so instrumentation cannot perturb placement decisions or
/// determinism.
#[derive(Clone, Debug, Default)]
struct EngineMetrics {
    /// Wall-clock of each streaming pass, microseconds.
    pass_time_us: Histogram,
    /// Vertices scored across all passes (each pass streams the source once).
    vertices_scored: Counter,
    /// Doubt-buffer entries at the end of the latest pass.
    doubt_entries: Gauge,
    /// Doubt-buffer payload bytes at the end of the latest pass.
    doubt_bytes: Gauge,
    /// Chunks claimed off the shared cursor (work-stealing strategy).
    steal_chunk_claims: Counter,
    /// Batch-boundary applies (work-stealing strategy).
    steal_batch_applies: Counter,
}

impl EngineMetrics {
    fn bind(registry: &Registry) -> Self {
        EngineMetrics {
            pass_time_us: registry.histogram("engine.pass_time_us"),
            vertices_scored: registry.counter("engine.vertices_scored"),
            doubt_entries: registry.gauge("engine.doubt.entries"),
            doubt_bytes: registry.gauge("engine.doubt.bytes"),
            steal_chunk_claims: registry.counter("engine.steal.chunk_claims"),
            steal_batch_applies: registry.counter("engine.steal.batch_applies"),
        }
    }
}

impl Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: EngineConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid engine configuration: {e}"));
        Self {
            config,
            metrics: EngineMetrics::default(),
        }
    }

    /// Binds this engine's instrumentation to `registry` (metrics under
    /// the `engine.` prefix). Engines record nothing until bound.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = EngineMetrics::bind(registry);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the restreaming loop: `source × provider × strategy` under the
    /// communication-cost matrix `cost`, with per-pass costs evaluated by
    /// `cost_model`.
    pub fn run<S, P, C>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        cost_model: &mut C,
    ) -> IoResult<EngineRun>
    where
        S: VertexSource,
        P: ConnectivityProvider,
        C: CommCostModel,
    {
        let p = cost.num_units();
        assert!(p > 0, "cost matrix must cover at least one compute unit");
        let config = &self.config;
        let n = source.num_vertices();
        let e = source.num_nets();
        source.set_nets_enabled(provider.needs_nets() || config.doubts.capacity > 0);

        let total_weight = source.total_vertex_weight().unwrap_or(n as f64);
        let expected_load = (total_weight / p as f64).max(f64::MIN_POSITIVE);
        let mut state = EngineState {
            partition: Partition::round_robin(n, p as u32),
            loads: vec![0.0f64; p],
            expected: vec![expected_load; p],
        };
        let assigned = match config.initial {
            InitialAssignment::RoundRobin => {
                self.seed_round_robin(source, provider, &mut state)?;
                true
            }
            InitialAssignment::Unassigned => false,
        };
        self.run_loop(cost, source, provider, cost_model, state, assigned, n, e)
    }

    /// Runs the restreaming loop warm-started from an existing assignment
    /// instead of a fresh seed pass — the entry point of the dynamic
    /// repartitioning layer. `source` supplies the vertex stream to
    /// revisit, which may cover only part of the graph (a dirty set);
    /// `warm.partition` must still cover the *full* graph so connectivity
    /// counts against untouched vertices stay exact, and `warm.loads` must
    /// be that full assignment's per-part vertex weights. No seed pass
    /// runs, so providers must already answer for the current graph (the
    /// precomputed-adjacency and CSR providers both do).
    ///
    /// # Panics
    ///
    /// Panics when the cost matrix is empty or `warm`'s part count or load
    /// vector length disagree with it.
    pub fn run_warm<S, P, C>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        cost_model: &mut C,
        warm: WarmStart,
    ) -> IoResult<EngineRun>
    where
        S: VertexSource,
        P: ConnectivityProvider,
        C: CommCostModel,
    {
        let p = cost.num_units();
        assert!(p > 0, "cost matrix must cover at least one compute unit");
        assert_eq!(
            warm.partition.num_parts() as usize,
            p,
            "warm-start partition must match the cost matrix"
        );
        assert_eq!(
            warm.loads.len(),
            p,
            "warm-start loads must cover every part"
        );
        source.set_nets_enabled(provider.needs_nets() || self.config.doubts.capacity > 0);

        // α is sized from the full graph, not the dirty subset: the value
        // function balances against full-graph loads, so the tempering
        // scale must match what a cold run over the whole instance uses.
        let n = warm.partition.num_vertices();
        let e = source.num_nets();
        let total_weight: f64 = warm.loads.iter().sum();
        let expected_load = (total_weight / p as f64).max(f64::MIN_POSITIVE);
        let state = EngineState {
            partition: warm.partition,
            loads: warm.loads,
            expected: vec![expected_load; p],
        };
        self.run_loop(cost, source, provider, cost_model, state, true, n, e)
    }

    /// The shared restreaming loop behind [`Engine::run`] and
    /// [`Engine::run_warm`]: α tempering until the tolerance is met, then
    /// refinement with comm-cost rollback, then the doubt revisit.
    #[allow(clippy::too_many_arguments)] // one state bundle, two public entries
    fn run_loop<S, P, C>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        cost_model: &mut C,
        mut state: EngineState,
        mut assigned: bool,
        n: usize,
        e: usize,
    ) -> IoResult<EngineRun>
    where
        S: VertexSource,
        P: ConnectivityProvider,
        C: CommCostModel,
    {
        let p = state.loads.len();
        let config = &self.config;

        let mut alpha = config
            .initial_alpha
            .unwrap_or_else(|| HyperPrawConfig::fennel_alpha(p as u32, n, e));

        let mut history = PartitionHistory::new();
        // Best feasible (within-tolerance) partition seen so far, with its
        // cost and imbalance. Only tracked when the cost model can
        // evaluate — without costs there is nothing to roll back to.
        let mut previous_feasible: Option<(Partition, f64, f64)> = None;
        let mut stop_reason = StopReason::MaxIterations;
        let mut iterations = 0usize;
        let mut doubts = DoubtBuffer::default();
        let mut slots: Vec<WorkerSlot<P::Scratch>> = Vec::new();
        let mut window: Vec<VertexRecord> = Vec::new();
        let mut record = VertexRecord::default();

        for pass in 1..=config.max_iterations {
            iterations = pass;
            provider.begin_pass(pass, config.rebuild_between_passes && pass > 1);
            doubts.clear();
            source.reset()?;
            let pass_span = self.metrics.pass_time_us.span();
            let moved = match config.strategy {
                ExecutionStrategy::Sequential => self.sequential_pass(
                    cost,
                    source,
                    provider,
                    &mut state,
                    alpha,
                    assigned,
                    &mut doubts,
                    &mut record,
                )?,
                ExecutionStrategy::Chunked {
                    num_threads,
                    sync_interval,
                } => self.chunked_pass(
                    cost,
                    source,
                    provider,
                    &mut state,
                    alpha,
                    assigned,
                    num_threads,
                    sync_interval,
                    &mut doubts,
                    &mut slots,
                    &mut window,
                )?,
                // A single stealing worker has nobody to race: run the
                // live sequential loop so the result is bit-identical to
                // `Sequential` (the n=1 determinism anchor).
                ExecutionStrategy::WorkStealing { num_threads: 1, .. } => self.sequential_pass(
                    cost,
                    source,
                    provider,
                    &mut state,
                    alpha,
                    assigned,
                    &mut doubts,
                    &mut record,
                )?,
                ExecutionStrategy::WorkStealing { num_threads, chunk } => self.steal_pass(
                    cost,
                    source,
                    provider,
                    &mut state,
                    alpha,
                    assigned,
                    num_threads,
                    chunk,
                    &mut doubts,
                    &mut slots,
                    &mut window,
                )?,
            };
            pass_span.finish();
            self.metrics.doubt_entries.set(doubts.heap.len() as i64);
            self.metrics.doubt_bytes.set(doubts.bytes as i64);
            assigned = true;

            let imbalance = state.imbalance();
            let comm_cost = cost_model.comm_cost(&state.partition, cost);
            let feasible = imbalance <= config.imbalance_tolerance + 1e-12;
            if config.track_history {
                history.push(IterationRecord {
                    iteration: pass,
                    phase: if feasible {
                        StreamPhase::Refinement
                    } else {
                        StreamPhase::Tempering
                    },
                    alpha,
                    imbalance,
                    comm_cost: comm_cost.unwrap_or(f64::NAN),
                    moved_vertices: moved,
                });
            }

            if !feasible {
                // Still outside tolerance: temper α upwards and re-stream.
                alpha *= config.tempering_factor;
                continue;
            }

            match config.refinement {
                RefinementPolicy::None => {
                    // GraSP-style: stop as soon as the tolerance is met.
                    stop_reason = StopReason::ToleranceReached;
                    if let Some(c) = comm_cost {
                        previous_feasible = Some((state.partition.clone(), c, imbalance));
                    }
                    break;
                }
                RefinementPolicy::Factor(factor) => {
                    // Refinement phase: keep streaming while the
                    // partitioning communication cost improves; roll back
                    // to the previous feasible partition when it gets
                    // worse (Algorithm 1's `Cost of Pⁿ > Cost of Pⁿ⁻¹`
                    // test). A stream that moved no vertex is a fixed
                    // point: further streams would repeat it verbatim, so
                    // stop there too. Without a cost model only the
                    // fixed-point and iteration-limit rules apply.
                    if let (Some(c), Some((_, previous_cost, _))) = (comm_cost, &previous_feasible)
                    {
                        if c > *previous_cost {
                            stop_reason = StopReason::CommCostConverged;
                            break;
                        }
                    }
                    if let Some(c) = comm_cost {
                        previous_feasible = Some((state.partition.clone(), c, imbalance));
                    }
                    if moved == 0 {
                        stop_reason = StopReason::CommCostConverged;
                        break;
                    }
                    alpha *= factor;
                }
            }
        }

        // Revisit the buffered low-confidence placements against the final
        // state, in vertex order for determinism. Only meaningful when the
        // live state is what will be returned — a cost-based rollback
        // discards the state the doubts were collected on.
        let mut restreamed = 0usize;
        let mut moved_in_restream = 0usize;
        if previous_feasible.is_none() && !doubts.heap.is_empty() {
            let mut revisit: Vec<Doubt> = std::mem::take(&mut doubts.heap).into_vec();
            revisit.sort_unstable_by_key(|d| d.vertex);
            restreamed = revisit.len();
            let mut scratch = provider.new_scratch();
            let mut counts: Vec<u32> = Vec::with_capacity(p);
            let mut value = ValueScratch::new();
            for doubt in revisit {
                record.vertex = doubt.vertex;
                record.weight = doubt.weight;
                record.nets.clear();
                record.nets.extend_from_slice(&doubt.nets);
                let old = state.partition.part_of(doubt.vertex);
                let scored = place_live(
                    cost,
                    provider,
                    &mut state,
                    alpha,
                    &record,
                    Some(old),
                    &mut scratch,
                    &mut counts,
                    &mut value,
                );
                if scored.part != old {
                    moved_in_restream += 1;
                }
            }
        }

        // Select the partition to return: the best feasible snapshot if
        // one exists, otherwise whatever the final stream produced.
        let (partition, comm_cost, imbalance) = match previous_feasible {
            Some((partition, c, imb)) => (partition, c, imb),
            None => {
                let c = cost_model
                    .comm_cost(&state.partition, cost)
                    .unwrap_or(f64::NAN);
                let imb = state.imbalance();
                (state.partition, c, imb)
            }
        };

        Ok(EngineRun {
            partition,
            history,
            stop_reason,
            iterations,
            final_alpha: alpha,
            comm_cost,
            imbalance,
            restreamed,
            moved_in_restream,
        })
    }

    /// Pushes Algorithm 1's round-robin initial assignment into the
    /// provider and the workload accounting with one pass over the source.
    fn seed_round_robin<S, P>(
        &self,
        source: &mut S,
        provider: &mut P,
        state: &mut EngineState,
    ) -> IoResult<()>
    where
        S: VertexSource,
        P: ConnectivityProvider,
    {
        let p = state.loads.len() as u32;
        let mut record = VertexRecord::default();
        while source.next_into(&mut record)? {
            let part = record.vertex % p;
            state.loads[part as usize] += record.weight;
            provider.attach(&record, part);
        }
        source.reset()
    }

    /// One sequential stream: every vertex is detached from its current
    /// partition and re-assigned with fully fresh information (Algorithm
    /// 1's inner loop). Returns the number of moved vertices.
    #[allow(clippy::too_many_arguments)] // the engine's hot path shares one state bundle
    fn sequential_pass<S, P>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        state: &mut EngineState,
        alpha: f64,
        assigned: bool,
        doubts: &mut DoubtBuffer,
        record: &mut VertexRecord,
    ) -> IoResult<usize>
    where
        S: VertexSource,
        P: ConnectivityProvider,
    {
        let mut moved = 0usize;
        let mut scored_n = 0u64;
        let mut scratch = provider.new_scratch();
        let mut counts: Vec<u32> = Vec::with_capacity(state.loads.len());
        let mut value = ValueScratch::new();
        while source.next_into(record)? {
            scored_n += 1;
            let current = assigned.then(|| state.partition.part_of(record.vertex));
            let scored = place_live(
                cost,
                provider,
                state,
                alpha,
                record,
                current,
                &mut scratch,
                &mut counts,
                &mut value,
            );
            if current != Some(scored.part) {
                moved += 1;
            }
            doubts.offer(
                &self.config.doubts,
                provider,
                record,
                scored.part,
                scored.margin,
            );
        }
        self.metrics.vertices_scored.add(scored_n);
        Ok(moved)
    }

    /// One bulk-synchronous stream: windows of `sync_interval` vertices
    /// are scored by worker threads against a frozen snapshot and applied
    /// at the window boundary. Returns the number of moved vertices.
    #[allow(clippy::too_many_arguments)] // the engine's hot path shares one state bundle
    fn chunked_pass<S, P>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        state: &mut EngineState,
        alpha: f64,
        assigned: bool,
        num_threads: usize,
        sync_interval: usize,
        doubts: &mut DoubtBuffer,
        slots: &mut Vec<WorkerSlot<P::Scratch>>,
        window: &mut Vec<VertexRecord>,
    ) -> IoResult<usize>
    where
        S: VertexSource,
        P: ConnectivityProvider,
    {
        let p = state.loads.len();
        let window_len = sync_interval.max(num_threads).max(1);
        while slots.len() < num_threads {
            slots.push(WorkerSlot {
                scratch: provider.new_scratch(),
                counts: Vec::with_capacity(p),
                value: ValueScratch::new(),
                delta: vec![0.0f64; p],
                loads_view: Vec::with_capacity(p),
            });
        }
        let mut moved = 0usize;

        loop {
            // Fill the window, reusing the record allocations.
            let mut len = 0usize;
            while len < window_len {
                if window.len() == len {
                    window.push(VertexRecord::default());
                }
                if !source.next_into(&mut window[len])? {
                    break;
                }
                len += 1;
            }
            if len == 0 {
                break;
            }
            let records = &window[..len];
            self.metrics.vertices_scored.add(len as u64);
            let workers = num_threads.min(len).max(1);

            if workers == 1 {
                // No concurrency — decide with live information, exactly
                // like the sequential strategy.
                let slot = &mut slots[0];
                for record in records {
                    let current = assigned.then(|| state.partition.part_of(record.vertex));
                    let scored = place_live(
                        cost,
                        provider,
                        state,
                        alpha,
                        record,
                        current,
                        &mut slot.scratch,
                        &mut slot.counts,
                        &mut slot.value,
                    );
                    if current != Some(scored.part) {
                        moved += 1;
                    }
                    doubts.offer(
                        &self.config.doubts,
                        provider,
                        record,
                        scored.part,
                        scored.margin,
                    );
                }
                continue;
            }

            let chunk_size = len.div_ceil(workers);
            let chunks: Vec<&[VertexRecord]> = records.chunks(chunk_size).collect();
            // Scale worker-local load deltas by the number of *live*
            // chunks: each worker assumes its peers fill partitions at a
            // similar rate, which prevents the herd effect where every
            // worker dumps its slice into the same globally-lightest
            // partition. A trailing window smaller than the worker count
            // spawns fewer chunks and must scale by that smaller number,
            // or its published deltas would overshoot.
            let scale = chunks.len() as f64;
            let snapshot = &state.partition;
            let snapshot_loads = &state.loads;
            let expected = &state.expected;
            let provider_ref: &P = provider;
            let config_alpha = alpha;

            let proposals: Vec<Vec<(u32, f64)>> = thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .zip(slots.iter_mut())
                    .map(|(chunk, slot)| {
                        let chunk: &[VertexRecord] = chunk;
                        scope.spawn(move || {
                            slot.delta.iter_mut().for_each(|d| *d = 0.0);
                            slot.loads_view.clear();
                            slot.loads_view.extend_from_slice(snapshot_loads);
                            let mut local: Vec<(u32, f64)> = Vec::with_capacity(chunk.len());
                            for record in chunk {
                                let w = record.weight;
                                if assigned {
                                    let current = snapshot.part_of(record.vertex) as usize;
                                    slot.delta[current] -= w;
                                    slot.loads_view[current] =
                                        snapshot_loads[current] + slot.delta[current] * scale;
                                }
                                provider_ref.count(
                                    record,
                                    snapshot,
                                    &mut slot.scratch,
                                    &mut slot.counts,
                                );
                                let scored = best_partition_in(
                                    &slot.counts,
                                    cost,
                                    config_alpha,
                                    &slot.loads_view,
                                    expected,
                                    &mut slot.value,
                                );
                                let t = scored.part as usize;
                                slot.delta[t] += w;
                                slot.loads_view[t] = snapshot_loads[t] + slot.delta[t] * scale;
                                local.push((scored.part, scored.margin));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            });

            // Synchronise: apply every chunk's proposals in deterministic
            // (chunk, in-chunk) order, publishing all load deltas —
            // including the final partial window's — before the pass-end
            // metrics are computed.
            for (chunk, results) in chunks.iter().zip(&proposals) {
                for (record, &(target, margin)) in chunk.iter().zip(results) {
                    let v = record.vertex;
                    let w = record.weight;
                    let current = assigned.then(|| state.partition.part_of(v));
                    if let Some(cur) = current {
                        state.loads[cur as usize] -= w;
                        provider.detach(record, cur);
                    }
                    state.partition.set(v, target);
                    state.loads[target as usize] += w;
                    provider.attach(record, target);
                    if current != Some(target) {
                        moved += 1;
                    }
                    doubts.offer(&self.config.doubts, provider, record, target, margin);
                }
            }
        }
        Ok(moved)
    }

    /// One lock-free work-stealing stream: the engine thread fills a large
    /// batch of records, a thread team spawned **once per batch** claims
    /// fixed-size chunks of it off a shared [`ChunkCursor`], and every
    /// worker scores against *live* shared state — the full assignment as
    /// an atomic slice, the per-part loads as fixed-point atomics — so
    /// placements become visible to peers per vertex instead of per
    /// synchronisation window. Provider mutation, authoritative `f64` load
    /// accounting, move counting and doubt collection happen on the engine
    /// thread at the batch boundary (the bounded-staleness window for
    /// index-backed providers). Returns the number of moved vertices.
    #[allow(clippy::too_many_arguments)] // the engine's hot path shares one state bundle
    fn steal_pass<S, P>(
        &self,
        cost: &CostMatrix,
        source: &mut S,
        provider: &mut P,
        state: &mut EngineState,
        alpha: f64,
        assigned: bool,
        num_threads: usize,
        chunk: usize,
        doubts: &mut DoubtBuffer,
        slots: &mut Vec<WorkerSlot<P::Scratch>>,
        batch: &mut Vec<VertexRecord>,
    ) -> IoResult<usize>
    where
        S: VertexSource,
        P: ConnectivityProvider,
    {
        let p = state.loads.len();
        while slots.len() < num_threads {
            slots.push(WorkerSlot {
                scratch: provider.new_scratch(),
                counts: Vec::with_capacity(p),
                value: ValueScratch::new(),
                delta: vec![0.0f64; p],
                loads_view: Vec::with_capacity(p),
            });
        }
        // The live assignment view covers the *full* graph — connectivity
        // counts read arbitrary neighbours, not just batch members.
        let view = AtomicAssignment::from_partition(&state.partition);
        let shared_loads: Vec<AtomicI64> = state
            .loads
            .iter()
            .map(|&load| AtomicI64::new(to_fixed(load)))
            .collect();
        // Stream sources stay memory-bounded: a batch holds at most this
        // many records. Providers whose counts track the live atomic
        // assignment can take huge batches — in-memory sources usually fit
        // in one, so the thread team is spawned once per pass. Providers
        // answering from internal state only mutated at batch boundaries
        // (the lowmem indices) get small batches instead, bounding how far
        // their counts lag behind the stream.
        let batch_cap = if provider.live_counts() {
            (chunk * num_threads * 16).max(8192)
        } else {
            (chunk * num_threads).max(256)
        };
        let mut moved = 0usize;
        let mut proposals: Vec<(u32, f64)> = Vec::new();

        loop {
            // Fill the batch on the engine thread (reusing allocations) so
            // IO errors surface before any worker is spawned.
            let mut len = 0usize;
            while len < batch_cap {
                if batch.len() == len {
                    batch.push(VertexRecord::default());
                }
                if !source.next_into(&mut batch[len])? {
                    break;
                }
                len += 1;
            }
            if len == 0 {
                break;
            }
            let records = &batch[..len];
            self.metrics.vertices_scored.add(len as u64);
            let workers = num_threads.min(len.div_ceil(chunk)).max(1);

            // Re-sync the fixed-point counters from the authoritative f64
            // loads so rounding drift cannot accumulate across batches.
            for (shared, &load) in shared_loads.iter().zip(&state.loads) {
                shared.store(to_fixed(load), AtomicOrdering::Relaxed);
            }

            {
                let cursor = ChunkCursor::new(len, chunk);
                let cursor = &cursor;
                let view = &view;
                let shared = &shared_loads[..];
                let expected = &state.expected[..];
                let provider_ref: &P = provider;
                let chunk_claims = &self.metrics.steal_chunk_claims;

                let run_worker =
                    |slot: &mut WorkerSlot<P::Scratch>, out: &mut Vec<(usize, u32, f64)>| {
                        slot.loads_view.clear();
                        slot.loads_view.resize(p, 0.0);
                        while let Some(range) = cursor.claim() {
                            chunk_claims.inc();
                            out.reserve(range.len());
                            for i in range {
                                let record = &records[i];
                                let w = to_fixed(record.weight);
                                if assigned {
                                    let old = view.part_of(record.vertex) as usize;
                                    shared[old].fetch_sub(w, AtomicOrdering::Relaxed);
                                }
                                for (local, counter) in slot.loads_view.iter_mut().zip(shared) {
                                    *local = from_fixed(counter.load(AtomicOrdering::Relaxed));
                                }
                                provider_ref.count(
                                    record,
                                    view,
                                    &mut slot.scratch,
                                    &mut slot.counts,
                                );
                                let scored = best_partition_in(
                                    &slot.counts,
                                    cost,
                                    alpha,
                                    &slot.loads_view,
                                    expected,
                                    &mut slot.value,
                                );
                                shared[scored.part as usize].fetch_add(w, AtomicOrdering::Relaxed);
                                view.set(record.vertex, scored.part);
                                out.push((i, scored.part, scored.margin));
                            }
                        }
                    };

                // Spawn the team once per batch: workers 1.. on scoped
                // threads, worker 0 on the engine thread itself.
                let mut outs: Vec<Vec<(usize, u32, f64)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                if workers == 1 {
                    run_worker(&mut slots[0], &mut outs[0]);
                } else {
                    let (first_slot, rest_slots) = slots.split_at_mut(1);
                    let (first_out, rest_outs) = outs.split_at_mut(1);
                    thread::scope(|scope| {
                        let handles: Vec<_> = rest_slots
                            .iter_mut()
                            .take(workers - 1)
                            .zip(rest_outs.iter_mut())
                            .map(|(slot, out)| {
                                let run_worker = &run_worker;
                                scope.spawn(move || run_worker(slot, out))
                            })
                            .collect();
                        run_worker(&mut first_slot[0], &mut first_out[0]);
                        handles
                            .into_iter()
                            .for_each(|h| h.join().expect("engine worker panicked"));
                    });
                }

                // Merge the per-worker proposals back into batch order —
                // every index was claimed exactly once, so this is a
                // scatter, not a sort.
                proposals.clear();
                proposals.resize(len, (0u32, 0.0));
                for out in &outs {
                    for &(i, part, margin) in out {
                        proposals[i] = (part, margin);
                    }
                }
            }

            // Apply at the batch boundary, in batch order: provider
            // detach/attach, authoritative f64 loads, move accounting and
            // doubt collection all run on the engine thread.
            for (record, &(target, margin)) in records.iter().zip(&proposals) {
                let v = record.vertex;
                let w = record.weight;
                let current = assigned.then(|| state.partition.part_of(v));
                if let Some(cur) = current {
                    state.loads[cur as usize] -= w;
                    provider.detach(record, cur);
                }
                state.partition.set(v, target);
                state.loads[target as usize] += w;
                provider.attach(record, target);
                if current != Some(target) {
                    moved += 1;
                }
                doubts.offer(&self.config.doubts, provider, record, target, margin);
            }
            self.metrics.steal_batch_applies.inc();
        }
        Ok(moved)
    }
}

/// The work-stealing strategy's live shared assignment: one `AtomicU32`
/// per vertex, read by worker-side connectivity counts (through
/// [`AssignmentRef`]) and updated per placement with relaxed ordering —
/// workers tolerate reading a peer's placement a few instructions late,
/// which is exactly the bounded staleness the strategy trades for the
/// missing barrier.
struct AtomicAssignment {
    parts: Vec<AtomicU32>,
    num_parts: u32,
}

impl AtomicAssignment {
    fn from_partition(partition: &Partition) -> Self {
        Self {
            parts: partition
                .assignment()
                .iter()
                .map(|&part| AtomicU32::new(part))
                .collect(),
            num_parts: Partition::num_parts(partition),
        }
    }

    fn set(&self, v: VertexId, part: u32) {
        self.parts[v as usize].store(part, AtomicOrdering::Relaxed);
    }
}

impl AssignmentRef for AtomicAssignment {
    fn part_of(&self, v: VertexId) -> u32 {
        self.parts[v as usize].load(AtomicOrdering::Relaxed)
    }

    fn num_parts(&self) -> u32 {
        self.num_parts
    }
}

/// Fractional bits of the shared fixed-point load counters: resolution
/// `2^-24` is far below any weight difference the value function can
/// distinguish, while the `2^39` integer range is far above any total
/// weight that fits in memory.
const LOAD_FRACTION_BITS: u32 = 24;

fn to_fixed(load: f64) -> i64 {
    (load * (1i64 << LOAD_FRACTION_BITS) as f64).round() as i64
}

fn from_fixed(load: i64) -> f64 {
    load as f64 / (1i64 << LOAD_FRACTION_BITS) as f64
}
