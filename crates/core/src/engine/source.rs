//! Where the vertices of a stream come from — the engine's input axis.
//!
//! A [`VertexSource`] delivers every vertex of the hypergraph exactly once
//! per pass as a [`VertexRecord`], in a deterministic per-source order, and
//! can be rewound for the next restreaming pass. Three families exist:
//!
//! * [`InMemorySource`] — walks an in-memory [`Hypergraph`] in any
//!   [`StreamOrder`] (natural / seeded shuffle / degree-descending). This
//!   is what the classic [`crate::HyperPraw`] drivers use.
//! * any [`hyperpraw_hypergraph::io::stream::VertexStream`] — the on-disk
//!   transpose readers (`stream_hgr_file`, `stream_edgelist_file`) and
//!   `InMemoryVertexStream` implement `VertexStream`, and a blanket impl
//!   lifts every `VertexStream` into a `VertexSource` (natural vertex
//!   order, one disk pass per engine pass). This is the out-of-core axis
//!   `hyperpraw-lowmem` instantiates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use hyperpraw_hypergraph::io::stream::{VertexRecord, VertexStream};
use hyperpraw_hypergraph::io::IoResult;
use hyperpraw_hypergraph::{Hypergraph, VertexId};

use crate::StreamOrder;

/// Builds the vertex visit order for an in-memory stream.
pub fn stream_order(hg: &Hypergraph, order: StreamOrder, seed: u64) -> Vec<VertexId> {
    let mut vertices: Vec<VertexId> = hg.vertices().collect();
    match order {
        StreamOrder::Natural => {}
        StreamOrder::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            vertices.shuffle(&mut rng);
        }
        StreamOrder::DegreeDescending => {
            vertices.sort_by_key(|&v| std::cmp::Reverse(hg.degree(v)));
        }
    }
    vertices
}

/// A restartable, one-vertex-at-a-time input to the restreaming engine.
///
/// Every vertex id in `0..num_vertices()` is yielded exactly once per pass
/// in a deterministic order; [`VertexSource::reset`] rewinds for the next
/// pass. Sources that never touch IO simply return `Ok` everywhere.
pub trait VertexSource {
    /// Number of vertices yielded per pass.
    fn num_vertices(&self) -> usize;

    /// Number of nets (hyperedges) of the underlying hypergraph.
    fn num_nets(&self) -> usize;

    /// Fills `record` with the next vertex. Returns `false` at end of pass.
    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool>;

    /// Rewinds to the beginning of the pass.
    fn reset(&mut self) -> IoResult<()>;

    /// Sum of all vertex weights when known up front (consumers fall back
    /// to unit weights otherwise).
    fn total_vertex_weight(&self) -> Option<f64> {
        None
    }

    /// Hints that the consumer does not read [`VertexRecord::nets`]
    /// (CSR-backed connectivity providers traverse the hypergraph
    /// directly), letting the source skip copying incidence lists.
    /// Sources are free to ignore the hint and fill the nets anyway.
    fn set_nets_enabled(&mut self, _enabled: bool) {}
}

/// Adapter lifting any [`VertexStream`] (the on-disk transpose readers,
/// `InMemoryVertexStream`, or a `&mut` borrow of either) into a
/// [`VertexSource`] in natural vertex order — the plug that connects
/// `hypergraph::io::stream` to the engine.
#[derive(Clone, Debug)]
pub struct StreamSource<S>(pub S);

impl<S: VertexStream> VertexSource for StreamSource<S> {
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    fn num_nets(&self) -> usize {
        self.0.num_nets()
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        self.0.next_into(record)
    }

    fn reset(&mut self) -> IoResult<()> {
        self.0.reset()
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        self.0.total_vertex_weight()
    }
}

/// [`VertexSource`] over an in-memory [`Hypergraph`] honouring a
/// [`StreamOrder`], used by the classic restreaming drivers.
#[derive(Clone, Debug)]
pub struct InMemorySource<'a> {
    hg: &'a Hypergraph,
    order: Vec<VertexId>,
    cursor: usize,
    nets_enabled: bool,
}

impl<'a> InMemorySource<'a> {
    /// Creates a source visiting `hg` in the given order (the seed matters
    /// only for [`StreamOrder::Random`]).
    pub fn new(hg: &'a Hypergraph, order: StreamOrder, seed: u64) -> Self {
        Self {
            hg,
            order: stream_order(hg, order, seed),
            cursor: 0,
            nets_enabled: true,
        }
    }

    /// The visit order in use.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }
}

impl VertexSource for InMemorySource<'_> {
    fn num_vertices(&self) -> usize {
        self.hg.num_vertices()
    }

    fn num_nets(&self) -> usize {
        self.hg.num_hyperedges()
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        let Some(&v) = self.order.get(self.cursor) else {
            return Ok(false);
        };
        self.cursor += 1;
        record.vertex = v;
        record.weight = self.hg.vertex_weight(v);
        record.nets.clear();
        if self.nets_enabled {
            record.nets.extend_from_slice(self.hg.incident_edges(v));
        }
        Ok(true)
    }

    fn reset(&mut self) -> IoResult<()> {
        self.cursor = 0;
        Ok(())
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        Some(self.hg.total_vertex_weight())
    }

    fn set_nets_enabled(&mut self, enabled: bool) {
        self.nets_enabled = enabled;
    }
}

/// [`VertexSource`] over an explicit subset of an in-memory
/// [`Hypergraph`]'s vertices — the *dirty set* an incremental
/// repartitioner wants to restream after a batch of graph updates, in the
/// (typically sorted) order given.
///
/// Intended for [`crate::engine::Engine::run_warm`] only: `num_vertices`
/// and `total_vertex_weight` describe the *subset*, so a cold
/// [`crate::engine::Engine::run`] would size its initial partition and
/// expected loads from the dirty set rather than the full graph.
#[derive(Clone, Debug)]
pub struct DirtySetSource<'a> {
    hg: &'a Hypergraph,
    dirty: Vec<VertexId>,
    cursor: usize,
    nets_enabled: bool,
}

impl<'a> DirtySetSource<'a> {
    /// Creates a source yielding exactly `dirty` (ids into `hg`), in the
    /// given order, once per pass.
    pub fn new(hg: &'a Hypergraph, dirty: Vec<VertexId>) -> Self {
        debug_assert!(
            dirty.iter().all(|&v| (v as usize) < hg.num_vertices()),
            "dirty ids must be vertices of the hypergraph"
        );
        Self {
            hg,
            dirty,
            cursor: 0,
            nets_enabled: true,
        }
    }

    /// The dirty vertex ids this source yields per pass.
    pub fn dirty(&self) -> &[VertexId] {
        &self.dirty
    }
}

impl VertexSource for DirtySetSource<'_> {
    fn num_vertices(&self) -> usize {
        self.dirty.len()
    }

    fn num_nets(&self) -> usize {
        self.hg.num_hyperedges()
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        let Some(&v) = self.dirty.get(self.cursor) else {
            return Ok(false);
        };
        self.cursor += 1;
        record.vertex = v;
        record.weight = self.hg.vertex_weight(v);
        record.nets.clear();
        if self.nets_enabled {
            record.nets.extend_from_slice(self.hg.incident_edges(v));
        }
        Ok(true)
    }

    fn reset(&mut self) -> IoResult<()> {
        self.cursor = 0;
        Ok(())
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        Some(self.dirty.iter().map(|&v| self.hg.vertex_weight(v)).sum())
    }

    fn set_nets_enabled(&mut self, enabled: bool) {
        self.nets_enabled = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::io::stream::InMemoryVertexStream;
    use hyperpraw_hypergraph::HypergraphBuilder;

    fn collect<S: VertexSource>(source: &mut S) -> Vec<VertexRecord> {
        let mut record = VertexRecord::default();
        let mut out = Vec::new();
        while source.next_into(&mut record).unwrap() {
            out.push(record.clone());
        }
        out
    }

    #[test]
    fn stream_orders_cover_every_vertex_exactly_once() {
        let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
        for order in [
            StreamOrder::Natural,
            StreamOrder::Random,
            StreamOrder::DegreeDescending,
        ] {
            let o = stream_order(&hg, order, 3);
            assert_eq!(o.len(), 200);
            let mut sorted = o.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 200);
        }
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let mut b = HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([0u32, 2]);
        b.add_hyperedge([0u32, 3]);
        b.add_hyperedge([3u32, 4]);
        let hg = b.build();
        let o = stream_order(&hg, StreamOrder::DegreeDescending, 0);
        assert_eq!(o[0], 0); // degree 3
        assert_eq!(o[1], 3); // degree 2
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        assert_eq!(
            stream_order(&hg, StreamOrder::Random, 5),
            stream_order(&hg, StreamOrder::Random, 5)
        );
        assert_ne!(
            stream_order(&hg, StreamOrder::Random, 5),
            stream_order(&hg, StreamOrder::Random, 6)
        );
    }

    #[test]
    fn in_memory_source_matches_the_vertex_stream_adapter() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([0u32, 3, 4]);
        let hg = b.build();
        let mut source = InMemorySource::new(&hg, StreamOrder::Natural, 0);
        let mut stream = StreamSource(InMemoryVertexStream::new(&hg));
        assert_eq!(collect(&mut source), collect(&mut stream));
        // Reset rewinds both.
        source.reset().unwrap();
        stream.reset().unwrap();
        assert_eq!(collect(&mut source), collect(&mut stream));
    }

    #[test]
    fn dirty_set_source_yields_exactly_the_subset_per_pass() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([0u32, 3, 4]);
        let hg = b.build();
        let mut source = DirtySetSource::new(&hg, vec![1, 3, 4]);
        assert_eq!(source.num_vertices(), 3);
        assert_eq!(source.num_nets(), 3);
        assert_eq!(source.total_vertex_weight(), Some(3.0));
        let records = collect(&mut source);
        assert_eq!(
            records.iter().map(|r| r.vertex).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert_eq!(records[1].nets, vec![1, 2]); // vertex 3's incidence
                                                 // Reset rewinds for the next pass; nets can be skipped.
        source.reset().unwrap();
        source.set_nets_enabled(false);
        let records = collect(&mut source);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.nets.is_empty()));
    }

    #[test]
    fn disabling_nets_skips_the_incidence_copy() {
        let mut b = HypergraphBuilder::new(3);
        b.add_hyperedge([0u32, 1, 2]);
        let hg = b.build();
        let mut source = InMemorySource::new(&hg, StreamOrder::Natural, 0);
        source.set_nets_enabled(false);
        let records = collect(&mut source);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.nets.is_empty()));
        assert_eq!(records[1].weight, 1.0);
    }
}
