//! Configuration of the HyperPRAW restreaming partitioner.

use hyperpraw_hypergraph::AdjacencyBudget;

/// Which in-memory connectivity provider answers the `X_j(v)` queries of
/// the restreaming engine. Both providers return identical exact integer
/// counts — partitions and f64 histories are bit-identical under either —
/// so this knob trades build-time and memory against per-visit cost, not
/// quality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// Epoch-marked CSR traversal ([`crate::engine::CsrProvider`]): no
    /// precomputation, `O(Σ_{e∋v}|e|)` re-deduplication per visit, and an
    /// `O(|V|)` scratch per worker.
    Csr,
    /// Precomputed deduplicated adjacency ([`crate::engine::AdjProvider`])
    /// with *unbounded* flat lists: fastest restreaming, but adjacency
    /// memory can go quadratic on dense instances.
    Adjacency,
    /// Precomputed adjacency under the automatic budget
    /// ([`AdjacencyBudget::Auto`], derived from the hypergraph's pin
    /// count): flat lists for everything that keeps memory linear in the
    /// input, epoch-traversal fallback for hub vertices above the
    /// cutover. The default.
    #[default]
    Auto,
}

impl Connectivity {
    /// The adjacency budget this selection implies, or `None` for the CSR
    /// traversal provider.
    pub fn adjacency_budget(&self) -> Option<AdjacencyBudget> {
        match self {
            Connectivity::Csr => None,
            Connectivity::Adjacency => Some(AdjacencyBudget::Unbounded),
            Connectivity::Auto => Some(AdjacencyBudget::Auto),
        }
    }

    /// Name as printed in reports and bench ids.
    pub fn name(&self) -> &'static str {
        match self {
            Connectivity::Csr => "csr",
            Connectivity::Adjacency => "adjacency",
            Connectivity::Auto => "auto",
        }
    }

    /// The accepted `parse` spellings, for error messages and CLI usage
    /// text — one definition so the two cannot drift apart.
    pub fn expected_names() -> &'static str {
        "csr | adjacency | auto"
    }

    /// Parses the names accepted by [`Connectivity::name`] (plus the `adj`
    /// shorthand), as used by the CLI and the facade job API.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "csr" => Ok(Connectivity::Csr),
            "adjacency" | "adj" => Ok(Connectivity::Adjacency),
            "auto" => Ok(Connectivity::Auto),
            other => Err(format!(
                "unknown connectivity provider '{other}' (expected {})",
                Self::expected_names()
            )),
        }
    }
}

/// What happens once the workload imbalance drops below the tolerance
/// (the paper's §6.1 comparison, Figure 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefinementPolicy {
    /// Stop restreaming as soon as the imbalance tolerance is reached (the
    /// behaviour of prior restreamers such as GraSP — "no refinement").
    None,
    /// Keep restreaming with the `α` update replaced by this factor until
    /// the partitioning communication cost stops improving.
    /// `Factor(1.0)` freezes `α` ("refinement 1.0"); `Factor(0.95)` relaxes
    /// the balance pressure each stream ("refinement 0.95", the paper's
    /// best-performing setting).
    Factor(f64),
}

impl RefinementPolicy {
    /// The paper's recommended refinement setting.
    pub fn paper_default() -> Self {
        RefinementPolicy::Factor(0.95)
    }
}

/// Order in which vertices are visited by each stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOrder {
    /// Natural vertex-id order (the order the hypergraph file lists them) —
    /// what the reference implementation uses.
    Natural,
    /// A seeded random permutation, re-used by every stream.
    Random,
    /// Decreasing vertex degree (high-impact vertices placed first).
    DegreeDescending,
}

impl StreamOrder {
    /// Name as printed in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StreamOrder::Natural => "natural",
            StreamOrder::Random => "random",
            StreamOrder::DegreeDescending => "degree-descending",
        }
    }
}

/// Tuning parameters of HyperPRAW (Algorithm 1 in the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperPrawConfig {
    /// Initial value of the workload-imbalance weight `α`. `None` uses the
    /// FENNEL-derived starting point `√p · |E| / √|V|` recommended by the
    /// paper.
    pub initial_alpha: Option<f64>,
    /// Multiplicative `α` update applied after each stream while the
    /// imbalance is above tolerance (`t_α`, paper value 1.7).
    pub tempering_factor: f64,
    /// Behaviour once the imbalance tolerance has been reached.
    pub refinement: RefinementPolicy,
    /// Maximum allowed total imbalance `max_k W(k) / avg_k W(k)`
    /// (paper experiments use 1.1).
    pub imbalance_tolerance: f64,
    /// Maximum number of streams (`N` in Algorithm 1).
    pub max_iterations: usize,
    /// Vertex visit order.
    pub stream_order: StreamOrder,
    /// RNG seed (used by [`StreamOrder::Random`] and tie-breaking).
    pub seed: u64,
    /// Record per-iteration history (needed for Figure 3; a small cost per
    /// stream).
    pub track_history: bool,
    /// Which in-memory connectivity provider serves the `X_j(v)` queries.
    /// Quality-neutral (bit-identical partitions); see [`Connectivity`].
    pub connectivity: Connectivity,
}

impl Default for HyperPrawConfig {
    fn default() -> Self {
        Self {
            initial_alpha: None,
            tempering_factor: 1.7,
            refinement: RefinementPolicy::paper_default(),
            imbalance_tolerance: 1.1,
            max_iterations: 100,
            stream_order: StreamOrder::Natural,
            seed: 0,
            track_history: true,
            connectivity: Connectivity::default(),
        }
    }
}

impl HyperPrawConfig {
    /// The FENNEL-style starting `α` for a hypergraph with `num_vertices`
    /// vertices and `num_hyperedges` hyperedges split into `p` partitions:
    /// `√p · |E| / √|V|`.
    pub fn fennel_alpha(p: u32, num_vertices: usize, num_hyperedges: usize) -> f64 {
        if num_vertices == 0 {
            return 1.0;
        }
        (p as f64).sqrt() * num_hyperedges as f64 / (num_vertices as f64).sqrt()
    }

    /// The starting `α` this configuration will use for a given instance.
    pub fn starting_alpha(&self, p: u32, num_vertices: usize, num_hyperedges: usize) -> f64 {
        self.initial_alpha
            .unwrap_or_else(|| Self::fennel_alpha(p, num_vertices, num_hyperedges))
    }

    /// Overrides the refinement policy.
    pub fn with_refinement(mut self, refinement: RefinementPolicy) -> Self {
        self.refinement = refinement;
        self
    }

    /// Overrides the imbalance tolerance.
    pub fn with_imbalance_tolerance(mut self, tol: f64) -> Self {
        assert!(tol >= 1.0, "imbalance tolerance must be >= 1.0");
        self.imbalance_tolerance = tol;
        self
    }

    /// Overrides the maximum number of streams.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one stream is required");
        self.max_iterations = n;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the stream order.
    pub fn with_stream_order(mut self, order: StreamOrder) -> Self {
        self.stream_order = order;
        self
    }

    /// Overrides the connectivity provider selection.
    pub fn with_connectivity(mut self, connectivity: Connectivity) -> Self {
        self.connectivity = connectivity;
        self
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tempering_factor <= 1.0 {
            return Err(format!(
                "tempering factor must exceed 1.0 (got {}): α must grow while imbalanced",
                self.tempering_factor
            ));
        }
        if self.imbalance_tolerance < 1.0 {
            return Err("imbalance tolerance below 1.0 is unsatisfiable".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".into());
        }
        if let RefinementPolicy::Factor(f) = self.refinement {
            if f <= 0.0 || f > 1.5 {
                return Err(format!(
                    "refinement factor {f} out of the sensible range (0, 1.5]"
                ));
            }
        }
        if let Some(a) = self.initial_alpha {
            if !(a.is_finite() && a > 0.0) {
                return Err("initial alpha must be positive and finite".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = HyperPrawConfig::default();
        assert_eq!(c.tempering_factor, 1.7);
        assert_eq!(c.imbalance_tolerance, 1.1);
        assert_eq!(c.refinement, RefinementPolicy::Factor(0.95));
        assert!(c.initial_alpha.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fennel_alpha_matches_formula() {
        // √p * |E| / √|V| with p=4, E=100, V=400 -> 2*100/20 = 10.
        let a = HyperPrawConfig::fennel_alpha(4, 400, 100);
        assert!((a - 10.0).abs() < 1e-12);
        // Degenerate case.
        assert_eq!(HyperPrawConfig::fennel_alpha(4, 0, 100), 1.0);
    }

    #[test]
    fn starting_alpha_prefers_explicit_value() {
        let c = HyperPrawConfig {
            initial_alpha: Some(3.5),
            ..HyperPrawConfig::default()
        };
        assert_eq!(c.starting_alpha(8, 100, 100), 3.5);
        let d = HyperPrawConfig::default();
        assert_eq!(
            d.starting_alpha(8, 100, 100),
            HyperPrawConfig::fennel_alpha(8, 100, 100)
        );
    }

    #[test]
    fn builders_override_fields() {
        let c = HyperPrawConfig::default()
            .with_refinement(RefinementPolicy::None)
            .with_imbalance_tolerance(1.05)
            .with_max_iterations(20)
            .with_seed(9)
            .with_stream_order(StreamOrder::Random)
            .with_connectivity(Connectivity::Csr);
        assert_eq!(c.refinement, RefinementPolicy::None);
        assert_eq!(c.imbalance_tolerance, 1.05);
        assert_eq!(c.max_iterations, 20);
        assert_eq!(c.seed, 9);
        assert_eq!(c.stream_order, StreamOrder::Random);
        assert_eq!(c.connectivity, Connectivity::Csr);
    }

    #[test]
    fn connectivity_defaults_to_auto_and_maps_to_budgets() {
        assert_eq!(HyperPrawConfig::default().connectivity, Connectivity::Auto);
        assert_eq!(Connectivity::Csr.adjacency_budget(), None);
        assert_eq!(
            Connectivity::Adjacency.adjacency_budget(),
            Some(AdjacencyBudget::Unbounded)
        );
        assert_eq!(
            Connectivity::Auto.adjacency_budget(),
            Some(AdjacencyBudget::Auto)
        );
        assert_eq!(Connectivity::Auto.name(), "auto");
        assert_eq!(Connectivity::Csr.name(), "csr");
        assert_eq!(Connectivity::Adjacency.name(), "adjacency");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = HyperPrawConfig {
            tempering_factor: 0.9,
            ..HyperPrawConfig::default()
        };
        assert!(c.validate().is_err());
        c.tempering_factor = 1.7;
        c.refinement = RefinementPolicy::Factor(-1.0);
        assert!(c.validate().is_err());
        c.refinement = RefinementPolicy::Factor(0.95);
        c.initial_alpha = Some(f64::NAN);
        assert!(c.validate().is_err());
        c.initial_alpha = None;
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_iterations_panics_in_builder() {
        HyperPrawConfig::default().with_max_iterations(0);
    }
}
