//! Parallel (multi-stream) restreaming — the paper's future-work extension.
//!
//! The paper notes (§8.2) that sequential restreaming limits scalability and
//! points to Battaglino et al.'s GraSP as evidence that *parallel* streaming
//! with periodic synchronisation loses little quality. This module
//! implements that extension as a bulk-synchronous scheme:
//!
//! * the vertex stream is split into one chunk per worker thread,
//! * within a stream, every worker re-assigns the vertices of its chunk
//!   against a frozen snapshot of the global assignment, tracking its own
//!   load deltas (so it sees its *local* moves immediately but other
//!   workers' moves only at the next synchronisation),
//! * at the end of the stream all proposed assignments are applied and the
//!   global workloads are recomputed — this is the "periodically
//!   synchronising workload and partition assignments" step of GraSP,
//! * the restreaming loop (α tempering, tolerance check, refinement on the
//!   partitioning communication cost) is identical to the sequential driver.
//!
//! The trade-off is the classic one: wall-clock time per stream drops with
//! the number of workers while the partition quality degrades slightly
//! because decisions are made against stale information. The
//! `parallel_vs_sequential` bench quantifies this.
//!
//! Like the sequential driver and the out-of-core `hyperpraw-lowmem`
//! streamer, the workers score candidate placements with the shared value
//! function in [`crate::value`]; see [`crate::value::best_partition`] for
//! the contract all three partitioners rely on.

use std::sync::Mutex;
use std::thread;

use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{Hypergraph, Partition, VertexId};
use hyperpraw_topology::CostMatrix;

use crate::history::{IterationRecord, PartitionHistory, StreamPhase};
use crate::metrics::partitioning_communication_cost;
use crate::state::StreamingState;
use crate::stream::stream_order;
use crate::value::best_partition;
use crate::{HyperPrawConfig, PartitionResult, RefinementPolicy, StopReason};

/// Configuration of the parallel driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (streams). 1 reproduces the sequential
    /// behaviour up to floating-point tie-breaking.
    pub num_threads: usize,
    /// How many vertices are processed between global synchronisations.
    /// Smaller intervals give fresher information (quality closer to the
    /// sequential stream) at the price of more synchronisation overhead —
    /// the knob GraSP calls the synchronisation period.
    pub sync_interval: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            num_threads: 4,
            sync_interval: 512,
        }
    }
}

impl ParallelConfig {
    /// Convenience constructor with the default synchronisation period.
    pub fn with_threads(num_threads: usize) -> Self {
        Self {
            num_threads,
            ..Self::default()
        }
    }
}

/// The parallel (bulk-synchronous) restreaming partitioner.
///
/// As with [`crate::HyperPraw`], the number of partitions equals the size
/// of the communication-cost matrix, and the aware/basic paper variants
/// are selected purely by that matrix — this driver adds only the
/// multi-worker streaming schedule on top.
#[derive(Clone, Debug)]
pub struct ParallelHyperPraw {
    config: HyperPrawConfig,
    parallel: ParallelConfig,
    cost: CostMatrix,
}

impl ParallelHyperPraw {
    /// Creates a parallel partitioner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation or `num_threads == 0`.
    pub fn new(config: HyperPrawConfig, parallel: ParallelConfig, cost: CostMatrix) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid HyperPRAW configuration: {e}"));
        assert!(parallel.num_threads > 0, "need at least one worker thread");
        Self {
            config,
            parallel,
            cost,
        }
    }

    /// Number of partitions (compute units).
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// One parallel stream: the vertex order is processed in synchronisation
    /// windows of `sync_interval` vertices; within a window the worker
    /// threads propose assignments for their slices against the window's
    /// frozen snapshot (tracking their own load deltas), and all proposals
    /// are applied at the window boundary. Returns the number of moved
    /// vertices.
    fn parallel_stream(
        &self,
        hg: &Hypergraph,
        state: &mut StreamingState,
        alpha: f64,
        order: &[VertexId],
    ) -> usize {
        let p = self.num_partitions() as usize;
        let workers = self.parallel.num_threads.min(order.len()).max(1);
        let window = self.parallel.sync_interval.max(workers);
        let cost = &self.cost;
        let expected: Vec<f64> = state.expected().to_vec();
        let mut moved = 0usize;

        for sync_window in order.chunks(window) {
            let snapshot: Partition = state.partition().clone();
            let snapshot_loads: Vec<f64> = state.loads().to_vec();
            let chunk_size = sync_window.len().div_ceil(workers).max(1);
            let proposals: Mutex<Vec<(VertexId, u32)>> =
                Mutex::new(Vec::with_capacity(sync_window.len()));

            thread::scope(|scope| {
                for chunk in sync_window.chunks(chunk_size) {
                    let snapshot = &snapshot;
                    let snapshot_loads = &snapshot_loads;
                    let expected = &expected;
                    let proposals = &proposals;
                    scope.spawn(move || {
                        let mut scratch = NeighborScratch::new(hg.num_vertices());
                        let mut counts: Vec<u32> = Vec::with_capacity(p);
                        // Worker-local view of the loads: the global snapshot
                        // plus this worker's own deltas *scaled by the worker
                        // count*. The scaling anticipates that the other
                        // workers are filling partitions at a similar rate,
                        // which prevents the herd effect where every worker
                        // dumps its vertices into the same globally-lightest
                        // partition and the synchronised result oscillates.
                        let mut delta = vec![0.0f64; p];
                        let mut loads_view = snapshot_loads.clone();
                        let scale = workers as f64;
                        let mut local: Vec<(VertexId, u32)> = Vec::with_capacity(chunk.len());
                        for &v in chunk {
                            let current = snapshot.part_of(v) as usize;
                            let w = hg.vertex_weight(v);
                            delta[current] -= w;
                            loads_view[current] = snapshot_loads[current] + delta[current] * scale;
                            scratch.neighbor_partition_counts(hg, snapshot, v, &mut counts);
                            let target =
                                best_partition(&counts, cost, alpha, &loads_view, expected);
                            let t = target as usize;
                            delta[t] += w;
                            loads_view[t] = snapshot_loads[t] + delta[t] * scale;
                            local.push((v, target));
                        }
                        proposals
                            .lock()
                            .expect("proposal mutex poisoned")
                            .extend(local);
                    });
                }
            });

            // Synchronise: apply this window's proposals, rebuild workloads.
            let mut assignment = snapshot.into_assignment();
            for (v, target) in proposals.into_inner().expect("proposal mutex poisoned") {
                if assignment[v as usize] != target {
                    moved += 1;
                }
                assignment[v as usize] = target;
            }
            let new_partition = Partition::from_assignment(assignment, self.num_partitions())
                .expect("workers only propose valid partitions");
            state.replace_partition(hg, new_partition);
        }
        moved
    }

    /// Runs the parallel restreaming algorithm.
    pub fn partition(&self, hg: &Hypergraph) -> PartitionResult {
        let p = self.num_partitions();
        let config = &self.config;
        let mut state = StreamingState::round_robin(hg, p);
        let mut alpha = config.starting_alpha(p, hg.num_vertices(), hg.num_hyperedges());
        let order = stream_order(hg, config.stream_order, config.seed);

        let mut history = PartitionHistory::new();
        let mut previous_feasible: Option<(Partition, f64)> = None;
        let mut stop_reason = StopReason::MaxIterations;
        let mut iterations = 0usize;

        for n in 1..=config.max_iterations {
            iterations = n;
            let moved = self.parallel_stream(hg, &mut state, alpha, &order);
            let imbalance = state.imbalance();
            let comm_cost = partitioning_communication_cost(hg, state.partition(), &self.cost);
            let feasible = imbalance <= config.imbalance_tolerance + 1e-12;
            if config.track_history {
                history.push(IterationRecord {
                    iteration: n,
                    phase: if feasible {
                        StreamPhase::Refinement
                    } else {
                        StreamPhase::Tempering
                    },
                    alpha,
                    imbalance,
                    comm_cost,
                    moved_vertices: moved,
                });
            }
            if !feasible {
                alpha *= config.tempering_factor;
                continue;
            }
            match config.refinement {
                RefinementPolicy::None => {
                    stop_reason = StopReason::ToleranceReached;
                    previous_feasible = Some((state.partition().clone(), comm_cost));
                    break;
                }
                RefinementPolicy::Factor(factor) => {
                    if let Some((_, previous_cost)) = &previous_feasible {
                        if comm_cost > *previous_cost {
                            stop_reason = StopReason::CommCostConverged;
                            break;
                        }
                    }
                    previous_feasible = Some((state.partition().clone(), comm_cost));
                    if moved == 0 {
                        stop_reason = StopReason::CommCostConverged;
                        break;
                    }
                    alpha *= factor;
                }
            }
        }

        let (partition, comm_cost) = match previous_feasible {
            Some((partition, cost)) => (partition, cost),
            None => {
                let cost = partitioning_communication_cost(hg, state.partition(), &self.cost);
                (state.into_partition(), cost)
            }
        };
        let imbalance = partition.imbalance(hg).unwrap_or(f64::NAN);
        PartitionResult {
            partition,
            history,
            stop_reason,
            iterations,
            final_alpha: alpha,
            comm_cost,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HyperPraw;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::metrics;
    use hyperpraw_topology::{BandwidthMatrix, MachineModel};

    fn archer_cost(p: usize) -> CostMatrix {
        let machine = MachineModel::archer_like(p);
        CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1))
    }

    #[test]
    fn parallel_partition_is_valid_and_balanced() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(4),
            CostMatrix::uniform(8),
        );
        let result = praw.partition(&hg);
        assert_eq!(result.partition.num_parts(), 8);
        assert_eq!(result.partition.num_vertices(), 900);
        assert!(
            result.imbalance <= 1.1 + 1e-9,
            "imbalance {}",
            result.imbalance
        );
    }

    #[test]
    fn parallel_quality_is_close_to_sequential() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 8));
        let p = 8u32;
        let seq = HyperPraw::basic(HyperPrawConfig::default(), p).partition(&hg);
        let par = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(4),
            CostMatrix::uniform(p as usize),
        )
        .partition(&hg);
        let seq_soed = metrics::soed(&hg, &seq.partition) as f64;
        let par_soed = metrics::soed(&hg, &par.partition) as f64;
        // GraSP-style result: parallel streaming should stay within ~2x of the
        // sequential quality (it is usually much closer).
        assert!(
            par_soed <= 2.0 * seq_soed.max(1.0),
            "parallel SOED {par_soed} too far from sequential {seq_soed}"
        );
        // And it must still beat round robin comfortably.
        let rr = metrics::soed(&hg, &Partition::round_robin(1000, p)) as f64;
        assert!(par_soed < rr);
    }

    #[test]
    fn single_thread_matches_the_bulk_synchronous_semantics() {
        // One worker still synchronises per stream (not per vertex), so it is
        // not bit-identical to the sequential driver — but it must produce a
        // valid, feasible result deterministically.
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(1),
            CostMatrix::uniform(4),
        );
        let a = praw.partition(&hg);
        let b = praw.partition(&hg);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn aware_parallel_still_beats_basic_parallel_on_comm_cost() {
        let hg = mesh_hypergraph(&MeshConfig::new(1600, 10));
        let p = 24usize;
        let cost = archer_cost(p);
        // Start with a small α so the early streams are communication-driven
        // (the FENNEL default is so balance-heavy for p=24 on a small mesh
        // that the first couple of bulk-synchronous streams are identical for
        // any cost matrix, and the parallel driver may converge before the
        // refinement phase has relaxed α enough to tell them apart).
        let config = HyperPrawConfig {
            initial_alpha: Some(2.0),
            ..HyperPrawConfig::default()
        };
        let aware = ParallelHyperPraw::new(config, ParallelConfig::with_threads(2), cost.clone())
            .partition(&hg);
        let basic = ParallelHyperPraw::new(
            config,
            ParallelConfig::with_threads(2),
            CostMatrix::uniform(p),
        )
        .partition(&hg);
        let aware_pc = partitioning_communication_cost(&hg, &aware.partition, &cost);
        let basic_pc = partitioning_communication_cost(&hg, &basic.partition, &cost);
        assert!(
            aware_pc < basic_pc,
            "aware {aware_pc} should beat basic {basic_pc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(0),
            CostMatrix::uniform(4),
        );
    }
}
