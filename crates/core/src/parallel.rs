//! Parallel (multi-stream) restreaming — the paper's future-work extension.
//!
//! The paper notes (§8.2) that sequential restreaming limits scalability and
//! points to Battaglino et al.'s GraSP as evidence that *parallel* streaming
//! with periodic synchronisation loses little quality. This driver is a
//! thin instantiation of the generic [`crate::engine`]: the in-memory
//! vertex source and CSR connectivity provider of [`crate::HyperPraw`],
//! executed under the engine's bulk-synchronous
//! [`crate::engine::ExecutionStrategy::Chunked`] strategy —
//!
//! * the vertex stream is processed in synchronisation windows,
//! * within a window, worker threads re-assign the vertices of their
//!   chunks against a frozen snapshot of the global assignment, tracking
//!   their own load deltas (so each sees its *local* moves immediately but
//!   other workers' moves only at the next synchronisation),
//! * at the window boundary all proposals are applied and the global
//!   workloads updated — GraSP's "periodically synchronising workload and
//!   partition assignments" step,
//! * the restreaming loop (α tempering, tolerance check, refinement on the
//!   partitioning communication cost) is the engine's, identical to the
//!   sequential driver.
//!
//! The trade-off is the classic one: wall-clock time per stream drops with
//! the number of workers while the partition quality degrades slightly
//! because decisions are made against stale information. The
//! `parallel_vs_sequential` bench quantifies this. With a single worker no
//! information is stale and the engine degenerates to the sequential
//! strategy, so `num_threads = 1` reproduces [`crate::HyperPraw`] exactly.

use hyperpraw_hypergraph::Hypergraph;
use hyperpraw_topology::CostMatrix;

use crate::engine::{Engine, EngineConfig, ExecutionStrategy, DEFAULT_STEAL_CHUNK};
use crate::restream::run_in_memory;
use crate::{HyperPrawConfig, PartitionResult};

/// How the parallel drivers schedule their worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelMode {
    /// Bulk-synchronous windows against frozen snapshots
    /// ([`ExecutionStrategy::Chunked`]): deterministic for any thread
    /// count, the reproducibility mode.
    #[default]
    Bsp,
    /// Lock-free chunk claiming against live atomic state
    /// ([`ExecutionStrategy::WorkStealing`]): near-linear scaling, valid
    /// at any thread count, but not bit-reproducible above one worker —
    /// the throughput mode.
    WorkStealing,
}

impl ParallelMode {
    /// Name as written on the command line and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ParallelMode::Bsp => "bsp",
            ParallelMode::WorkStealing => "steal",
        }
    }

    /// Parses a command-line spelling (`bsp` | `steal`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "bsp" => Some(ParallelMode::Bsp),
            "steal" | "work-stealing" | "worksteal" => Some(ParallelMode::WorkStealing),
            _ => None,
        }
    }

    /// The engine strategy this mode selects at `num_threads` workers
    /// synchronising every `sync_interval` vertices (BSP only; the
    /// stealing strategy claims [`DEFAULT_STEAL_CHUNK`]-vertex chunks).
    pub fn strategy(&self, num_threads: usize, sync_interval: usize) -> ExecutionStrategy {
        match self {
            ParallelMode::Bsp => ExecutionStrategy::Chunked {
                num_threads,
                sync_interval,
            },
            ParallelMode::WorkStealing => ExecutionStrategy::WorkStealing {
                num_threads,
                chunk: DEFAULT_STEAL_CHUNK,
            },
        }
    }
}

/// Configuration of the parallel driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (streams). 1 reproduces the sequential
    /// driver exactly.
    pub num_threads: usize,
    /// How many vertices are processed between global synchronisations.
    /// Smaller intervals give fresher information (quality closer to the
    /// sequential stream) at the price of more synchronisation overhead —
    /// the knob GraSP calls the synchronisation period. Ignored by
    /// [`ParallelMode::WorkStealing`], which has no synchronisation
    /// windows.
    pub sync_interval: usize,
    /// Worker scheduling: deterministic bulk-synchronous windows or
    /// lock-free work stealing.
    pub mode: ParallelMode,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            num_threads: 4,
            sync_interval: 512,
            mode: ParallelMode::Bsp,
        }
    }
}

impl ParallelConfig {
    /// Convenience constructor with the default synchronisation period.
    pub fn with_threads(num_threads: usize) -> Self {
        Self {
            num_threads,
            ..Self::default()
        }
    }

    /// Convenience constructor for the work-stealing mode.
    pub fn stealing(num_threads: usize) -> Self {
        Self {
            num_threads,
            mode: ParallelMode::WorkStealing,
            ..Self::default()
        }
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_threads == 0 {
            return Err("need at least one worker thread".into());
        }
        if self.sync_interval == 0 {
            return Err("synchronisation interval must be at least 1 vertex".into());
        }
        Ok(())
    }
}

/// The parallel (bulk-synchronous) restreaming partitioner.
///
/// As with [`crate::HyperPraw`], the number of partitions equals the size
/// of the communication-cost matrix, and the aware/basic paper variants
/// are selected purely by that matrix — this driver adds only the
/// multi-worker streaming schedule on top.
#[derive(Clone, Debug)]
pub struct ParallelHyperPraw {
    config: HyperPrawConfig,
    parallel: ParallelConfig,
    cost: CostMatrix,
    registry: hyperpraw_telemetry::Registry,
}

impl ParallelHyperPraw {
    /// Creates a parallel partitioner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation or `num_threads == 0`.
    pub fn new(config: HyperPrawConfig, parallel: ParallelConfig, cost: CostMatrix) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid HyperPRAW configuration: {e}"));
        parallel
            .validate()
            .unwrap_or_else(|e| panic!("invalid parallel configuration: {e}"));
        Self {
            config,
            parallel,
            cost,
            registry: hyperpraw_telemetry::Registry::disabled(),
        }
    }

    /// Number of partitions (compute units).
    pub fn num_partitions(&self) -> u32 {
        self.cost.num_units() as u32
    }

    /// Binds the engine's instrumentation (metrics under the `engine.`
    /// prefix) to `registry`. Recording is observation-only — partitions
    /// are bit-identical with or without a live registry.
    pub fn with_registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Runs the parallel restreaming algorithm.
    pub fn partition(&self, hg: &Hypergraph) -> PartitionResult {
        let engine = Engine::new(
            EngineConfig::restreaming(&self.config).with_strategy(
                self.parallel
                    .mode
                    .strategy(self.parallel.num_threads, self.parallel.sync_interval),
            ),
        )
        .with_registry(&self.registry);
        run_in_memory(&engine, hg, &self.config, &self.cost, &self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::partitioning_communication_cost;
    use crate::HyperPraw;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::{metrics, Partition};
    use hyperpraw_topology::{BandwidthMatrix, MachineModel};

    fn archer_cost(p: usize) -> CostMatrix {
        let machine = MachineModel::archer_like(p);
        CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1))
    }

    #[test]
    fn parallel_partition_is_valid_and_balanced() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(4),
            CostMatrix::uniform(8),
        );
        let result = praw.partition(&hg);
        assert_eq!(result.partition.num_parts(), 8);
        assert_eq!(result.partition.num_vertices(), 900);
        assert!(
            result.imbalance <= 1.1 + 1e-9,
            "imbalance {}",
            result.imbalance
        );
    }

    #[test]
    fn parallel_quality_is_close_to_sequential() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 8));
        let p = 8u32;
        let seq = HyperPraw::basic(HyperPrawConfig::default(), p).partition(&hg);
        let par = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(4),
            CostMatrix::uniform(p as usize),
        )
        .partition(&hg);
        let seq_soed = metrics::soed(&hg, &seq.partition) as f64;
        let par_soed = metrics::soed(&hg, &par.partition) as f64;
        // GraSP-style result: parallel streaming should stay within ~2x of the
        // sequential quality (it is usually much closer).
        assert!(
            par_soed <= 2.0 * seq_soed.max(1.0),
            "parallel SOED {par_soed} too far from sequential {seq_soed}"
        );
        // And it must still beat round robin comfortably.
        let rr = metrics::soed(&hg, &Partition::round_robin(1000, p)) as f64;
        assert!(par_soed < rr);
    }

    #[test]
    fn single_worker_reproduces_the_sequential_driver_exactly() {
        // One worker has nothing to race: the engine decides with live
        // information, so the run is bit-identical to HyperPraw.
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(1),
            CostMatrix::uniform(4),
        );
        let a = praw.partition(&hg);
        let b = praw.partition(&hg);
        assert_eq!(a.partition, b.partition);
        let seq = HyperPraw::basic(HyperPrawConfig::default(), 4).partition(&hg);
        assert_eq!(a.partition, seq.partition);
        assert_eq!(a.iterations, seq.iterations);
        assert_eq!(a.history, seq.history);
    }

    #[test]
    fn final_partial_window_publishes_its_load_deltas() {
        // 901 vertices with a 300-vertex window leaves a trailing window of
        // one vertex: its assignment and load delta must land in the global
        // state before the pass-end metrics are computed.
        let hg = mesh_hypergraph(&MeshConfig::new(901, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig {
                num_threads: 4,
                sync_interval: 300,
                mode: ParallelMode::Bsp,
            },
            CostMatrix::uniform(6),
        );
        let result = praw.partition(&hg);
        assert_eq!(result.partition.num_vertices(), 901);
        // The loads-based imbalance the stopping rule saw must agree with a
        // recomputation from the final assignment.
        let recomputed = result.partition.imbalance(&hg).unwrap();
        assert!(
            (result.imbalance - recomputed).abs() < 1e-9,
            "tracked imbalance {} diverged from recomputed {recomputed}",
            result.imbalance
        );
        assert!(result.imbalance <= 1.1 + 1e-9);
    }

    #[test]
    fn aware_parallel_still_beats_basic_parallel_on_comm_cost() {
        let hg = mesh_hypergraph(&MeshConfig::new(1600, 10));
        let p = 24usize;
        let cost = archer_cost(p);
        // Start with a small α so the early streams are communication-driven
        // (the FENNEL default is so balance-heavy for p=24 on a small mesh
        // that the first couple of bulk-synchronous streams are identical for
        // any cost matrix, and the parallel driver may converge before the
        // refinement phase has relaxed α enough to tell them apart).
        let config = HyperPrawConfig {
            initial_alpha: Some(2.0),
            ..HyperPrawConfig::default()
        };
        let aware = ParallelHyperPraw::new(config, ParallelConfig::with_threads(2), cost.clone())
            .partition(&hg);
        let basic = ParallelHyperPraw::new(
            config,
            ParallelConfig::with_threads(2),
            CostMatrix::uniform(p),
        )
        .partition(&hg);
        let aware_pc = partitioning_communication_cost(&hg, &aware.partition, &cost);
        let basic_pc = partitioning_communication_cost(&hg, &basic.partition, &cost);
        assert!(
            aware_pc < basic_pc,
            "aware {aware_pc} should beat basic {basic_pc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(0),
            CostMatrix::uniform(4),
        );
    }

    #[test]
    fn single_stealing_worker_reproduces_the_sequential_driver_exactly() {
        // The work-stealing strategy at one worker runs the live
        // sequential loop: bit-identical partitions, iterations and
        // history against HyperPraw — the determinism anchor of the
        // three-strategy split.
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let praw = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::stealing(1),
            CostMatrix::uniform(4),
        );
        let a = praw.partition(&hg);
        let seq = HyperPraw::basic(HyperPrawConfig::default(), 4).partition(&hg);
        assert_eq!(a.partition, seq.partition);
        assert_eq!(a.iterations, seq.iterations);
        assert_eq!(a.history, seq.history);
    }

    #[test]
    fn stealing_partition_is_valid_and_balanced_at_any_thread_count() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        for threads in [2usize, 4, 8] {
            let praw = ParallelHyperPraw::new(
                HyperPrawConfig::default(),
                ParallelConfig::stealing(threads),
                CostMatrix::uniform(8),
            );
            let result = praw.partition(&hg);
            assert_eq!(result.partition.num_parts(), 8);
            assert_eq!(result.partition.num_vertices(), 900);
            assert!(
                result.imbalance <= 1.1 + 1e-9,
                "threads {threads}: imbalance {}",
                result.imbalance
            );
            // The loads the stopping rule tracked must agree exactly with
            // a recount from the returned assignment.
            let recomputed = result.partition.imbalance(&hg).unwrap();
            assert!(
                (result.imbalance - recomputed).abs() < 1e-9,
                "threads {threads}: tracked {} vs recomputed {recomputed}",
                result.imbalance
            );
        }
    }

    #[test]
    fn parallel_mode_round_trips_names() {
        for mode in [ParallelMode::Bsp, ParallelMode::WorkStealing] {
            assert_eq!(ParallelMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(
            ParallelMode::parse("work-stealing"),
            Some(ParallelMode::WorkStealing)
        );
        assert_eq!(ParallelMode::parse("nope"), None);
    }
}
