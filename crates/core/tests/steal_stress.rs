//! Race-hunting stress test for the work-stealing execution strategy.
//!
//! A small hypergraph keeps each individual run cheap, eight workers on few
//! vertices maximises contention on the shared cursor / atomic assignment /
//! fixed-point load counters, and many repetitions with fresh seeds give
//! interleavings plenty of chances to go wrong. CI runs this with
//! `RUST_BACKTRACE=1` so a torn invariant names its culprit.

use hyperpraw_core::{CostMatrix, HyperPrawConfig, ParallelConfig, ParallelHyperPraw};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

#[test]
fn hammer_the_work_stealing_strategy_with_eight_threads() {
    let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
    let p = 5u32;
    for seed in 0..40u64 {
        let config = HyperPrawConfig {
            max_iterations: 12,
            ..HyperPrawConfig::default().with_seed(seed)
        };
        let result = ParallelHyperPraw::new(
            config,
            ParallelConfig::stealing(8),
            CostMatrix::uniform(p as usize),
        )
        .partition(&hg);

        assert_eq!(result.partition.num_vertices(), hg.num_vertices());
        assert!(
            result.partition.assignment().iter().all(|&x| x < p),
            "seed {seed}: part id out of range"
        );
        let mut recount = vec![0usize; p as usize];
        for &x in result.partition.assignment() {
            recount[x as usize] += 1;
        }
        assert_eq!(
            result.partition.part_sizes(),
            recount,
            "seed {seed}: part-size bookkeeping drifted from the assignment"
        );
        let imbalance = result.partition.imbalance(&hg).unwrap();
        assert!(
            (result.imbalance - imbalance).abs() < 1e-9,
            "seed {seed}: reported imbalance {} vs recomputed {}",
            result.imbalance,
            imbalance
        );
    }
}
