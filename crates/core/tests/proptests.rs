//! Property-based tests for the HyperPRAW partitioner.

use proptest::prelude::*;

use hyperpraw_core::metrics::partitioning_communication_cost;
use hyperpraw_core::{
    CostMatrix, HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw, RefinementPolicy,
    StreamOrder,
};
use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::{metrics, Hypergraph};
use hyperpraw_topology::{BandwidthMatrix, MachineModel};

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (30usize..150, 15usize..100, 0u64..500).prop_map(|(n, e, seed)| {
        random_hypergraph(&RandomConfig {
            num_vertices: n,
            num_hyperedges: e,
            cardinality: CardinalityDist::Uniform { min: 2, max: 6 },
            seed,
            name: "prop".into(),
        })
    })
}

fn quick_config(seed: u64) -> HyperPrawConfig {
    HyperPrawConfig {
        max_iterations: 30,
        track_history: true,
        ..HyperPrawConfig::default().with_seed(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitions_are_always_complete_and_in_range(
        hg in arb_hypergraph(),
        p in 2u32..8,
        seed in 0u64..20,
    ) {
        let result = HyperPraw::basic(quick_config(seed), p).partition(&hg);
        prop_assert_eq!(result.partition.num_vertices(), hg.num_vertices());
        prop_assert_eq!(result.partition.num_parts(), p);
        prop_assert!(result.partition.assignment().iter().all(|&x| x < p));
        // Vertex-count conservation: part sizes sum to |V|.
        let total: usize = result.partition.part_sizes().iter().sum();
        prop_assert_eq!(total, hg.num_vertices());
    }

    #[test]
    fn reported_metrics_match_recomputation(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..20,
    ) {
        let cost = CostMatrix::uniform(p as usize);
        let result = HyperPraw::new(quick_config(seed), cost.clone()).partition(&hg);
        let recomputed = partitioning_communication_cost(&hg, &result.partition, &cost);
        prop_assert!((result.comm_cost - recomputed).abs() < 1e-6);
        let imbalance = result.partition.imbalance(&hg).unwrap();
        prop_assert!((result.imbalance - imbalance).abs() < 1e-9);
    }

    #[test]
    fn history_invariants_hold(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..20,
    ) {
        let result = HyperPraw::basic(quick_config(seed), p).partition(&hg);
        let records = result.history.records();
        prop_assert_eq!(records.len(), result.iterations);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.iteration, i + 1);
            prop_assert!(r.alpha > 0.0);
            prop_assert!(r.imbalance >= 1.0 - 1e-9);
            prop_assert!(r.comm_cost >= 0.0);
            prop_assert!(r.moved_vertices <= hg.num_vertices());
        }
    }

    #[test]
    fn uniform_cost_comm_cost_lower_bounds_relate_to_soed(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..20,
    ) {
        // With a uniform cost matrix, every remote neighbour pair costs 1, so
        // PC(P) equals the number of ordered remote neighbour pairs, which is
        // at least twice the number of cut hyperedges (each cut hyperedge has
        // at least one remote pair counted from both sides).
        let cost = CostMatrix::uniform(p as usize);
        let result = HyperPraw::new(quick_config(seed), cost.clone()).partition(&hg);
        let cut = metrics::hyperedge_cut(&hg, &result.partition);
        if cut == 0 {
            prop_assert!(result.comm_cost.abs() < 1e-9);
        } else {
            // Each cut hyperedge contributes at least one remote neighbour
            // pair, counted once from each side.
            prop_assert!(result.comm_cost + 1e-9 >= 2.0);
        }
    }

    #[test]
    fn refinement_never_ends_worse_than_no_refinement(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..10,
    ) {
        let machine = MachineModel::archer_like(p as usize);
        let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, seed));
        let none = HyperPraw::new(
            quick_config(seed).with_refinement(RefinementPolicy::None),
            cost.clone(),
        )
        .partition(&hg);
        let refined = HyperPraw::new(
            quick_config(seed).with_refinement(RefinementPolicy::Factor(0.95)),
            cost,
        )
        .partition(&hg);
        prop_assert!(refined.comm_cost <= none.comm_cost + 1e-6);
    }

    #[test]
    fn stream_order_does_not_break_feasibility(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..10,
    ) {
        for order in [StreamOrder::Natural, StreamOrder::Random, StreamOrder::DegreeDescending] {
            let config = quick_config(seed).with_stream_order(order);
            let result = HyperPraw::basic(config, p).partition(&hg);
            // Either the tolerance was met, or the iteration limit was hit
            // (tiny instances with huge hyperedges can be unsplittable).
            if result.history.first_feasible_iteration(1.1).is_some() {
                prop_assert!(result.imbalance <= 1.1 + 1e-9);
            }
        }
    }

    #[test]
    fn better_partitions_exist_than_the_worst_baseline(
        hg in arb_hypergraph(),
        p in 2u32..5,
        seed in 0u64..10,
    ) {
        // HyperPRAW should never be worse (in SOED) than assigning vertices
        // uniformly at random, provided it reached feasibility.
        let result = HyperPraw::basic(quick_config(seed), p).partition(&hg);
        if result.imbalance <= 1.1 + 1e-9 {
            let random = hyperpraw_core::baselines::random(&hg, p, seed);
            let praw = metrics::soed(&hg, &result.partition);
            let rnd = metrics::soed(&hg, &random);
            prop_assert!(praw <= rnd + (0.15 * rnd as f64) as u64 + 2,
                "HyperPRAW SOED {} much worse than random {}", praw, rnd);
        }
    }

    #[test]
    fn work_stealing_is_valid_at_any_thread_count(
        hg in arb_hypergraph(),
        p in 2u32..8,
        threads in 1usize..9,
        seed in 0u64..10,
    ) {
        // The work-stealing strategy races workers over live shared state,
        // so the *partition* is not reproducible above one thread — but it
        // must always be a complete, consistently-bookkept partition.
        let result = ParallelHyperPraw::new(
            quick_config(seed),
            ParallelConfig::stealing(threads),
            CostMatrix::uniform(p as usize),
        )
        .partition(&hg);
        // Every vertex assigned, every part id in range.
        prop_assert_eq!(result.partition.num_vertices(), hg.num_vertices());
        prop_assert_eq!(result.partition.num_parts(), p);
        prop_assert!(result.partition.assignment().iter().all(|&x| x < p));
        // Per-part sizes exactly equal a from-scratch recount.
        let mut recount = vec![0usize; p as usize];
        for &x in result.partition.assignment() {
            recount[x as usize] += 1;
        }
        prop_assert_eq!(result.partition.part_sizes(), recount);
        // Imbalance bookkeeping survives the concurrent load updates.
        let imbalance = result.partition.imbalance(&hg).unwrap();
        prop_assert!((result.imbalance - imbalance).abs() < 1e-9,
            "reported imbalance {} drifted from recomputed {}", result.imbalance, imbalance);
        // Reported comm cost matches a recomputation on the final partition.
        let recomputed = partitioning_communication_cost(
            &hg, &result.partition, &CostMatrix::uniform(p as usize));
        prop_assert!((result.comm_cost - recomputed).abs() < 1e-6);
    }

    #[test]
    fn partition_is_invariant_to_cost_matrix_scaling(
        hg in arb_hypergraph(),
        p in 2u32..6,
        scale_num in 1u32..20,
    ) {
        // The normalisation argument of §4.2: scaling all off-diagonal costs
        // by a constant multiplies T_i(v) uniformly... note this is NOT a
        // no-op for the value function because the balance term is not
        // scaled; but scaling bandwidths (not costs) leaves the normalised
        // cost matrix unchanged, hence the partition too.
        let machine = MachineModel::archer_like(p as usize);
        let base = BandwidthMatrix::from_machine(&machine, 0.0, 1);
        let factor = scale_num as f64;
        let n = base.num_units();
        let scaled_raw: Vec<f64> = (0..n * n)
            .map(|idx| base.get(idx / n, idx % n) * factor)
            .collect();
        let scaled = BandwidthMatrix::from_raw(n, scaled_raw);
        let a = HyperPraw::new(quick_config(1), CostMatrix::from_bandwidth(&base)).partition(&hg);
        let b = HyperPraw::new(quick_config(1), CostMatrix::from_bandwidth(&scaled)).partition(&hg);
        prop_assert_eq!(a.partition, b.partition);
    }
}
