//! The unified engine must reproduce the pre-refactor drivers bit for bit.
//!
//! `reference_restream` below is a frozen, independent transcription of the
//! seed repository's sequential Algorithm 1 loop (`HyperPraw::partition`
//! before the engine refactor): it scores candidates one [`value_of`] call
//! at a time — the O(p²) specification path — and replicates the original
//! tie-breaking, α tempering, tolerance gate, refinement stopping rule and
//! history bookkeeping. The engine-backed [`HyperPraw`] must match its
//! assignment and per-iteration history exactly (f64 bit equality), which
//! pins down both the refactored control flow and the restructured fast
//! scorer ([`hyperpraw_core::value::best_partition_in`]).

use hyperpraw_core::history::{IterationRecord, PartitionHistory, StreamPhase};
use hyperpraw_core::metrics::partitioning_communication_cost;
use hyperpraw_core::value::value_of;
use hyperpraw_core::{
    Connectivity, CostMatrix, HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw,
    RefinementPolicy, StopReason, StreamOrder,
};
use hyperpraw_hypergraph::generators::{
    mesh_hypergraph, powerlaw_hypergraph, random_hypergraph, MeshConfig, PowerLawConfig,
    RandomConfig,
};
use hyperpraw_hypergraph::traversal::NeighborScratch;
use hyperpraw_hypergraph::{Hypergraph, Partition, VertexId};
use hyperpraw_topology::{BandwidthMatrix, MachineModel};

/// The seed driver's scorer: evaluate `value_of` per candidate with the
/// original comparison and tie-breaking.
fn reference_best_partition(
    counts: &[u32],
    cost: &CostMatrix,
    alpha: f64,
    loads: &[f64],
    expected: &[f64],
) -> u32 {
    let mut best = 0u32;
    let mut best_value = f64::NEG_INFINITY;
    for i in 0..counts.len() {
        let v = value_of(counts, i as u32, cost, alpha, loads[i], expected[i]);
        let better = v > best_value + 1e-12
            || ((v - best_value).abs() <= 1e-12 && loads[i] < loads[best as usize] - 1e-12);
        if better {
            best = i as u32;
            best_value = v;
        }
    }
    best
}

struct ReferenceResult {
    partition: Partition,
    history: PartitionHistory,
    iterations: usize,
    stop_reason: StopReason,
}

/// Frozen transcription of the seed sequential restreaming loop.
fn reference_restream(
    hg: &Hypergraph,
    config: &HyperPrawConfig,
    cost: &CostMatrix,
) -> ReferenceResult {
    let p = cost.num_units();
    let mut partition = Partition::round_robin(hg.num_vertices(), p as u32);
    let mut loads = partition.part_loads(hg).unwrap();
    let expected = vec![(hg.total_vertex_weight() / p as f64).max(f64::MIN_POSITIVE); p];
    let mut alpha = config.starting_alpha(p as u32, hg.num_vertices(), hg.num_hyperedges());
    let order: Vec<VertexId> = match config.stream_order {
        StreamOrder::Natural => hg.vertices().collect(),
        other => panic!("the reference only implements natural order, got {other:?}"),
    };

    let mut scratch = NeighborScratch::new(hg.num_vertices());
    let mut counts: Vec<u32> = Vec::new();
    let mut history = PartitionHistory::new();
    let mut previous_feasible: Option<(Partition, f64)> = None;
    let mut stop_reason = StopReason::MaxIterations;
    let mut iterations = 0usize;

    for n in 1..=config.max_iterations {
        iterations = n;
        let mut moved = 0usize;
        for &v in &order {
            let current = partition.part_of(v);
            loads[current as usize] -= hg.vertex_weight(v);
            scratch.neighbor_partition_counts(hg, &partition, v, &mut counts);
            let target = reference_best_partition(&counts, cost, alpha, &loads, &expected);
            loads[target as usize] += hg.vertex_weight(v);
            partition.set(v, target);
            if target != current {
                moved += 1;
            }
        }
        let total: f64 = loads.iter().sum();
        let imbalance = if total == 0.0 {
            0.0
        } else {
            loads.iter().cloned().fold(f64::MIN, f64::max) / (total / p as f64)
        };
        let comm_cost = partitioning_communication_cost(hg, &partition, cost);
        let feasible = imbalance <= config.imbalance_tolerance + 1e-12;
        if config.track_history {
            history.push(IterationRecord {
                iteration: n,
                phase: if feasible {
                    StreamPhase::Refinement
                } else {
                    StreamPhase::Tempering
                },
                alpha,
                imbalance,
                comm_cost,
                moved_vertices: moved,
            });
        }
        if !feasible {
            alpha *= config.tempering_factor;
            continue;
        }
        match config.refinement {
            RefinementPolicy::None => {
                stop_reason = StopReason::ToleranceReached;
                previous_feasible = Some((partition.clone(), comm_cost));
                break;
            }
            RefinementPolicy::Factor(factor) => {
                if let Some((_, previous_cost)) = &previous_feasible {
                    if comm_cost > *previous_cost {
                        stop_reason = StopReason::CommCostConverged;
                        break;
                    }
                }
                previous_feasible = Some((partition.clone(), comm_cost));
                if moved == 0 {
                    stop_reason = StopReason::CommCostConverged;
                    break;
                }
                alpha *= factor;
            }
        }
    }

    let partition = match previous_feasible {
        Some((partition, _)) => partition,
        None => partition,
    };
    ReferenceResult {
        partition,
        history,
        iterations,
        stop_reason,
    }
}

fn assert_bit_identical(hg: &Hypergraph, config: HyperPrawConfig, cost: CostMatrix, label: &str) {
    let reference = reference_restream(hg, &config, &cost);
    let engine = HyperPraw::new(config, cost).partition(hg);
    assert_eq!(
        engine.partition.assignment(),
        reference.partition.assignment(),
        "{label}: assignments diverged"
    );
    assert_eq!(engine.iterations, reference.iterations, "{label}");
    assert_eq!(engine.stop_reason, reference.stop_reason, "{label}");
    assert_eq!(
        engine.history.len(),
        reference.history.len(),
        "{label}: history lengths diverged"
    );
    for (a, b) in engine
        .history
        .records()
        .iter()
        .zip(reference.history.records())
    {
        assert_eq!(a.iteration, b.iteration, "{label}");
        assert_eq!(a.phase, b.phase, "{label}");
        assert_eq!(a.moved_vertices, b.moved_vertices, "{label}");
        assert_eq!(
            a.alpha.to_bits(),
            b.alpha.to_bits(),
            "{label}: alpha diverged at iteration {}",
            a.iteration
        );
        assert_eq!(
            a.imbalance.to_bits(),
            b.imbalance.to_bits(),
            "{label}: imbalance diverged at iteration {}",
            a.iteration
        );
        assert_eq!(
            a.comm_cost.to_bits(),
            b.comm_cost.to_bits(),
            "{label}: comm cost diverged at iteration {}",
            a.iteration
        );
    }
}

fn suite() -> Vec<(&'static str, Hypergraph)> {
    vec![
        ("mesh", mesh_hypergraph(&MeshConfig::new(600, 8))),
        (
            "random",
            random_hypergraph(&RandomConfig::with_avg_cardinality(400, 300, 5.0, 7)),
        ),
        (
            "powerlaw",
            powerlaw_hypergraph(&PowerLawConfig {
                num_vertices: 500,
                num_hyperedges: 350,
                seed: 11,
                ..PowerLawConfig::default()
            }),
        ),
    ]
}

#[test]
fn sequential_engine_is_bit_identical_to_the_seed_driver_basic() {
    for (name, hg) in suite() {
        let config = HyperPrawConfig::default();
        assert_bit_identical(&hg, config, CostMatrix::uniform(8), name);
    }
}

#[test]
fn sequential_engine_is_bit_identical_to_the_seed_driver_aware() {
    let machine = MachineModel::archer_like(24);
    let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1));
    for (name, hg) in suite() {
        let config = HyperPrawConfig::default();
        assert_bit_identical(&hg, config, cost.clone(), name);
    }
}

#[test]
fn sequential_engine_matches_across_configurations() {
    let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
    for (label, config) in [
        (
            "no-refinement",
            HyperPrawConfig::default().with_refinement(RefinementPolicy::None),
        ),
        (
            "frozen-alpha-refinement",
            HyperPrawConfig::default().with_refinement(RefinementPolicy::Factor(1.0)),
        ),
        (
            "tight-tolerance",
            HyperPrawConfig::default().with_imbalance_tolerance(1.02),
        ),
        (
            "explicit-alpha",
            HyperPrawConfig {
                initial_alpha: Some(3.0),
                ..HyperPrawConfig::default()
            },
        ),
        (
            "iteration-capped",
            HyperPrawConfig::default()
                .with_max_iterations(2)
                .with_imbalance_tolerance(1.0000001),
        ),
    ] {
        assert_bit_identical(&hg, config, CostMatrix::uniform(6), label);
    }
}

#[test]
fn every_connectivity_provider_is_bit_identical_to_the_reference() {
    // The provider axis must be quality-neutral: the precomputed dedup
    // adjacency (unbounded or auto-budgeted) and the epoch CSR traversal
    // all reproduce the frozen seed loop bit for bit, f64 history included.
    let machine = MachineModel::archer_like(16);
    let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 1));
    for (name, hg) in suite() {
        for connectivity in [
            Connectivity::Csr,
            Connectivity::Adjacency,
            Connectivity::Auto,
        ] {
            let config = HyperPrawConfig::default().with_connectivity(connectivity);
            let label = format!("{name}/{}", connectivity.name());
            assert_bit_identical(&hg, config, cost.clone(), &label);
        }
    }
}

#[test]
fn bsp_with_one_worker_matches_the_sequential_engine_exactly() {
    let machine = MachineModel::archer_like(12);
    let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, 2));
    for (name, hg) in suite() {
        let seq = HyperPraw::aware(HyperPrawConfig::default(), cost.clone()).partition(&hg);
        let bsp = ParallelHyperPraw::new(
            HyperPrawConfig::default(),
            ParallelConfig::with_threads(1),
            cost.clone(),
        )
        .partition(&hg);
        assert_eq!(
            bsp.partition.assignment(),
            seq.partition.assignment(),
            "{name}"
        );
        assert_eq!(bsp.history, seq.history, "{name}");
        assert_eq!(bsp.stop_reason, seq.stop_reason, "{name}");
    }
}
