//! Warm-started engine runs: `Engine::run_warm` must refine an existing
//! assignment instead of reseeding, and a `DirtySetSource` must confine
//! every move to the dirty set.

use hyperpraw_core::engine::{
    CsrProvider, DirtySetSource, Engine, EngineConfig, ExactCommCost, InMemorySource, WarmStart,
};
use hyperpraw_core::{CostMatrix, HyperPraw, HyperPrawConfig, StreamOrder};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_hypergraph::{Hypergraph, Partition};

fn cold_run(hg: &Hypergraph, p: usize) -> Partition {
    HyperPraw::new(HyperPrawConfig::default(), CostMatrix::uniform(p))
        .partition(hg)
        .partition
}

fn warm_start_of(hg: &Hypergraph, partition: &Partition) -> WarmStart {
    WarmStart {
        partition: partition.clone(),
        loads: partition.part_loads(hg).unwrap(),
    }
}

#[test]
fn warm_run_over_the_full_graph_keeps_the_partition_feasible() {
    let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
    let cost = CostMatrix::uniform(8);
    let config = HyperPrawConfig::default();
    let cold = cold_run(&hg, 8);

    let engine = Engine::new(EngineConfig::restreaming(&config));
    let mut source = InMemorySource::new(&hg, StreamOrder::Natural, 0);
    let mut provider = CsrProvider::new(&hg);
    let mut model = ExactCommCost::new(&hg);
    let run = engine
        .run_warm(
            &cost,
            &mut source,
            &mut provider,
            &mut model,
            warm_start_of(&hg, &cold),
        )
        .unwrap();

    assert_eq!(run.partition.num_vertices(), hg.num_vertices());
    assert_eq!(run.partition.num_parts(), 8);
    assert!(
        run.imbalance <= config.imbalance_tolerance + 1e-9,
        "warm refinement left the partition infeasible: {}",
        run.imbalance
    );
    assert!(run.iterations >= 1);
    assert!(run.comm_cost.is_finite());
}

#[test]
fn dirty_set_restream_never_moves_a_clean_vertex() {
    let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
    let cost = CostMatrix::uniform(4);
    let cold = cold_run(&hg, 4);

    // Restream an arbitrary small dirty set; everything else must keep its
    // cold assignment because the engine only visits what the source yields.
    let dirty: Vec<u32> = vec![3, 17, 42, 43, 44, 200];
    let engine = Engine::new(EngineConfig::restreaming(&HyperPrawConfig::default()));
    let mut source = DirtySetSource::new(&hg, dirty.clone());
    let mut provider = CsrProvider::new(&hg);
    let mut model = ExactCommCost::new(&hg);
    let run = engine
        .run_warm(
            &cost,
            &mut source,
            &mut provider,
            &mut model,
            warm_start_of(&hg, &cold),
        )
        .unwrap();

    for v in 0..hg.num_vertices() as u32 {
        if !dirty.contains(&v) {
            assert_eq!(
                run.partition.part_of(v),
                cold.part_of(v),
                "clean vertex {v} moved during a dirty-set restream"
            );
        }
    }
}

#[test]
fn empty_dirty_set_returns_the_warm_partition_unchanged() {
    let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
    let cost = CostMatrix::uniform(4);
    let cold = cold_run(&hg, 4);

    let engine = Engine::new(EngineConfig::restreaming(&HyperPrawConfig::default()));
    let mut source = DirtySetSource::new(&hg, Vec::new());
    let mut provider = CsrProvider::new(&hg);
    let mut model = ExactCommCost::new(&hg);
    let run = engine
        .run_warm(
            &cost,
            &mut source,
            &mut provider,
            &mut model,
            warm_start_of(&hg, &cold),
        )
        .unwrap();

    assert_eq!(run.partition.assignment(), cold.assignment());
}
