//! Property tests pinning the connectivity-provider axis: the precomputed
//! dedup-adjacency provider ([`AdjProvider`]) must return count vectors
//! identical to the epoch-traversal [`CsrProvider`] on random hypergraphs,
//! random partitions and random adjacency budgets — including budgets tight
//! enough to push vertices onto the hybrid hub-fallback path — and the
//! drivers built on them must produce identical partitions.

use proptest::prelude::*;

use hyperpraw_core::engine::{AdjProvider, ConnectivityProvider, CsrProvider};
use hyperpraw_core::{Connectivity, HyperPraw, HyperPrawConfig};
use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::io::stream::VertexRecord;
use hyperpraw_hypergraph::{AdjacencyBudget, Hypergraph, Partition};

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (20usize..120, 10usize..80, 0u64..400).prop_map(|(n, e, seed)| {
        random_hypergraph(&RandomConfig {
            num_vertices: n,
            num_hyperedges: e,
            cardinality: CardinalityDist::Uniform { min: 2, max: 8 },
            seed,
            name: "prop".into(),
        })
    })
}

/// Asserts that both providers return the same `X_j(v)` vector for every
/// vertex of `hg` under `partition`. Returns the number of hub vertices.
fn assert_counts_match(hg: &Hypergraph, partition: &Partition, budget: AdjacencyBudget) -> usize {
    let csr = CsrProvider::new(hg);
    let adj = AdjProvider::new(hg, budget);
    let mut csr_scratch = csr.new_scratch();
    let mut adj_scratch = adj.new_scratch();
    let mut expected = Vec::new();
    let mut got = Vec::new();
    let mut record = VertexRecord::default();
    for v in hg.vertices() {
        record.vertex = v;
        record.weight = hg.vertex_weight(v);
        csr.count(&record, partition, &mut csr_scratch, &mut expected);
        adj.count(&record, partition, &mut adj_scratch, &mut got);
        assert_eq!(got, expected, "budget {budget:?}, vertex {v}");
    }
    adj.adjacency().num_hubs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adjacency_counts_match_csr_for_every_budget(
        hg in arb_hypergraph(),
        p in 2u32..7,
        seed in 0u64..50,
        cutoff in 0usize..16,
        max_bytes in 0usize..4096,
    ) {
        let n = hg.num_vertices();
        let assignment: Vec<u32> = (0..n as u64)
            .map(|v| ((v.wrapping_mul(seed.wrapping_add(0x9e37)).wrapping_add(seed)) % p as u64) as u32)
            .collect();
        let partition = Partition::from_assignment(assignment, p).unwrap();
        for budget in [
            AdjacencyBudget::Unbounded,
            AdjacencyBudget::Auto,
            AdjacencyBudget::DegreeCutoff(cutoff),
            AdjacencyBudget::MaxBytes(max_bytes),
        ] {
            assert_counts_match(&hg, &partition, budget);
        }
        // The full adjacency never hubs anything; a zero cutover hubs every
        // connected vertex, exercising the pure-fallback path above.
        prop_assert_eq!(
            AdjProvider::new(&hg, AdjacencyBudget::Unbounded).adjacency().num_hubs(),
            0
        );
    }

    #[test]
    fn tight_budgets_actually_exercise_the_hub_fallback(
        hg in arb_hypergraph(),
        p in 2u32..5,
    ) {
        let partition = Partition::round_robin(hg.num_vertices(), p);
        // A one-entry byte budget forces (almost) everything to be a hub,
        // so this case runs the fallback path for every connected vertex.
        let hubs = assert_counts_match(
            &hg,
            &partition,
            AdjacencyBudget::MaxBytes(std::mem::size_of::<u32>()),
        );
        let connected = hg.vertices().filter(|&v| hg.degree(v) > 0).count();
        if connected > 2 {
            prop_assert!(hubs > 0, "expected hubs under a one-entry budget");
        }
    }

    #[test]
    fn drivers_produce_identical_partitions_across_providers(
        hg in arb_hypergraph(),
        p in 2u32..6,
        seed in 0u64..20,
    ) {
        let base = HyperPrawConfig {
            max_iterations: 25,
            ..HyperPrawConfig::default().with_seed(seed)
        };
        let reference = HyperPraw::basic(base.with_connectivity(Connectivity::Csr), p)
            .partition(&hg);
        for connectivity in [Connectivity::Adjacency, Connectivity::Auto] {
            let other = HyperPraw::basic(base.with_connectivity(connectivity), p)
                .partition(&hg);
            prop_assert_eq!(
                other.partition.assignment(),
                reference.partition.assignment(),
                "provider {} diverged", connectivity.name()
            );
            prop_assert_eq!(other.iterations, reference.iterations);
            prop_assert_eq!(other.comm_cost.to_bits(), reference.comm_cost.to_bits());
            prop_assert_eq!(other.imbalance.to_bits(), reference.imbalance.to_bits());
        }
    }
}
