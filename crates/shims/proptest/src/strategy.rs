//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest `Strategy` (which builds shrinkable value
/// trees), this shim generates plain values from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, builds a new strategy from it with `f`, and
    /// samples that strategy (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let strat = (0u32..10, 5usize..=6).prop_map(|(a, b)| a as usize + b);
        let mut rng = case_rng(0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for case in 0..100 {
            let (n, i) = dependent.generate(&mut case_rng(case));
            assert!(i < n);
        }
    }
}
