//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Creates a strategy generating vectors whose length lies in `size` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let strat = vec(vec(0u32..5, 1..4), 2..=6);
        for case in 0..100 {
            let outer = strat.generate(&mut case_rng(case));
            assert!((2..=6).contains(&outer.len()));
            for inner in outer {
                assert!((1..4).contains(&inner.len()));
                assert!(inner.iter().all(|&x| x < 5));
            }
        }
        let exact = vec(0u32..2, 7usize);
        assert_eq!(exact.generate(&mut case_rng(0)).len(), 7);
    }
}
