//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment of this repository cannot reach crates.io, so this
//! crate vendors the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], [`collection::vec`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, none of which the workspace tests rely
//! on:
//!
//! * cases are generated from a fixed seed sequence, so runs are fully
//!   deterministic (the real crate persists failing seeds instead),
//! * there is no shrinking — a failing case reports its index and message,
//! * strategies sample uniformly without bias towards boundary values.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with an optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left
            ));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(pattern in strategy, ...)`
/// item becomes a regular `#[test]` that runs the body against
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::case_rng(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "property failed at case {case}/{}: {message}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
}
