//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Configuration of a [`crate::proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property. Overridable globally through
    /// the `PROPTEST_CASES` environment variable, like the real crate.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG for one case index: every run of the suite explores the
/// same inputs, so failures are always reproducible.
pub fn case_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ u64::from(case).wrapping_mul(0x9E37_79B9))
}
