//! A minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate vendors exactly the subset of the `rand 0.8` API surface the
//! workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`],
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *determinism per seed*, never on the exact
//! stream, so the substitution is behaviour-preserving for the test suite.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The core of every random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`, mixing the bits so that
    /// nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniformly distributed float in `[0, 1)` built from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! uniform_float_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

uniform_float_impl!(f32, f64);

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Slice extensions driven by a generator.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
        }
    }

    #[test]
    fn gen_bool_edge_cases_and_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let base: Vec<u32> = (0..100).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(4));
        b.shuffle(&mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, base);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
    }
}
