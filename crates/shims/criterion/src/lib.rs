//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment of this repository cannot reach crates.io, so this
//! crate vendors the subset of the criterion API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it reports the mean and
//! median wall-clock time of up to `sample_size` runs, bounded by a
//! per-benchmark time budget so accidental invocations stay cheap. Passing
//! `--test` (as `cargo test --benches` does) runs every benchmark exactly
//! once without timing, mirroring criterion's smoke-test mode.
//!
//! On top of the console report, every bench binary writes a
//! machine-readable artefact `BENCH_<bench>.json` (benchmark id →
//! `{"median_ms": …, "peak_rss_kib": …}`) so the perf trajectory — time
//! *and* memory — can be tracked across PRs instead of living only in
//! commit messages. `peak_rss_kib` is the process high-water mark
//! (`VmHWM` from `/proc/self/status`) observed right after the benchmark
//! ran, letting the out-of-core benches pin peak memory alongside the
//! median; the key is omitted on platforms without procfs. The output
//! directory defaults to `target/` and is overridable via
//! `HYPERPRAW_BENCH_JSON_DIR`; nothing is written in `--test` mode
//! (single untimed runs are not measurements).
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;
use std::hint;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum wall-clock time spent measuring one benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// One measurement recorded for the JSON report.
#[derive(Clone, Copy, Debug)]
struct BenchRecord {
    /// Median wall-clock time in milliseconds.
    median_ms: f64,
    /// Process peak RSS (`VmHWM`) in KiB right after the benchmark ran;
    /// `None` where procfs is unavailable.
    peak_rss_kib: Option<u64>,
}

/// Process-wide registry of measurements (benchmark id → record), flushed
/// to `BENCH_<bench>.json` by [`write_json_report`].
fn registry() -> &'static Mutex<BTreeMap<String, BenchRecord>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, BenchRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process peak resident set size in KiB: `VmHWM` from
/// `/proc/self/status`. `None` on platforms without procfs.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

/// The stem of the running bench binary with cargo's `-<hash>` suffix
/// stripped: `target/release/deps/partitioners-0f3a…` → `partitioners`.
fn bench_stem() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if !name.is_empty() && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// The workspace `target/` directory the running bench binary lives in
/// (cargo executes benches with the *package* directory as CWD, so a
/// relative `target/` would scatter artefacts across crates). Falls back
/// to `target` under the CWD when the exe path gives no hint.
fn default_json_dir() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|a| a.file_name().is_some_and(|n| n == "target"))
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from("target"))
}

/// Writes the collected measurements as `BENCH_<bench>.json` (benchmark
/// id → `{"median_ms": …, "peak_rss_kib": …}`, sorted by id) into
/// `HYPERPRAW_BENCH_JSON_DIR` (default `target/`). Called by
/// [`criterion_main!`] after every group has run; a no-op when nothing
/// was measured (e.g. `--test` mode).
pub fn write_json_report() {
    let results = registry().lock().expect("bench registry poisoned");
    if results.is_empty() {
        return;
    }
    let dir = std::env::var_os("HYPERPRAW_BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(default_json_dir);
    let path = dir.join(format!("BENCH_{}.json", bench_stem()));
    let mut json = String::from("{\n");
    for (i, (id, record)) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "  \"{id}\": {{\"median_ms\": {:.3}",
            record.median_ms
        ));
        if let Some(kib) = record.peak_rss_kib {
            json.push_str(&format!(", \"peak_rss_kib\": {kib}"));
        }
        json.push('}');
    }
    json.push_str("\n}\n");
    if std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, json))
        .is_ok()
    {
        println!("bench medians written to {}", path.display());
    } else {
        eprintln!("warning: could not write {}", path.display());
    }
}

/// Registers a pre-measured metric (in milliseconds) under `id` in the
/// JSON report, for benches whose figure of merit is not a routine's
/// wall-clock time — latency percentiles, queueing delays, end-to-end
/// client-side timings. The value lands in `BENCH_<bench>.json` next to
/// the timed medians. No-op under `--test` (single untimed smoke runs
/// are not measurements).
pub fn record_metric(id: impl Into<String>, value_ms: f64) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    registry().lock().expect("bench registry poisoned").insert(
        id.into(),
        BenchRecord {
            median_ms: value_ms,
            peak_rss_kib: peak_rss_kib(),
        },
    );
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The top-level benchmark driver, created by [`criterion_main!`].
#[derive(Clone, Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            samples: Vec::new(),
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = bencher.elapsed / bencher.samples.len() as u32;
        let median = bencher.median();
        println!(
            "{}/{}: mean {mean:?} median {median:?} over {} sample(s)",
            self.name,
            id.id,
            bencher.samples.len()
        );
        if !self.test_mode {
            registry().lock().expect("bench registry poisoned").insert(
                format!("{}/{}", self.name, id.id),
                BenchRecord {
                    median_ms: median.as_secs_f64() * 1e3,
                    peak_rss_kib: peak_rss_kib(),
                },
            );
        }
    }
}

/// Times a closure handed to it by a benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly (up to the sample size or the time
    /// budget), accumulating wall-clock timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let before = Instant::now();
            black_box(routine());
            let took = before.elapsed();
            self.elapsed += took;
            self.samples.push(took);
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Median of the recorded samples (lower middle for even counts).
    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) / 2]
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point of a bench binary. After every group
/// has run, the measured medians are flushed to `BENCH_<bench>.json` (see
/// [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_routines_and_respect_sample_size() {
        let mut c = Criterion { test_mode: false };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn medians_are_registered_for_the_json_report() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("shim_json");
        group.sample_size(3);
        group.bench_function("registered", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(50)))
        });
        group.finish();
        let reg = registry().lock().unwrap();
        let record = reg
            .get("shim_json/registered")
            .expect("median must be registered outside test mode");
        assert!(record.median_ms > 0.0);
        // Linux always exposes VmHWM; elsewhere the field is simply absent.
        if cfg!(target_os = "linux") {
            assert!(record.peak_rss_kib.is_some());
        }
    }

    #[test]
    fn test_mode_does_not_pollute_the_registry() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim_json");
        group.bench_function("skipped", |b| b.iter(|| ()));
        group.finish();
        assert!(!registry().lock().unwrap().contains_key("shim_json/skipped"));
    }

    #[test]
    fn record_metric_lands_in_the_registry() {
        // The test harness runs without `--test` in argv, so the guard
        // lets the value through here.
        record_metric("shim_json/custom_metric", 12.5);
        let reg = registry().lock().unwrap();
        let record = reg.get("shim_json/custom_metric").expect("metric recorded");
        assert!((record.median_ms - 12.5).abs() < 1e-12);
    }

    #[test]
    fn bench_stem_strips_cargo_hashes() {
        // The test binary itself is `hyperpraw_criterion-<hex>`; the hash
        // must be stripped, the crate stem kept.
        let stem = bench_stem();
        assert!(!stem.is_empty());
        assert!(
            !stem
                .rsplit_once('-')
                .is_some_and(|(_, h)| h.len() >= 8 && h.chars().all(|c| c.is_ascii_hexdigit())),
            "hash suffix survived in {stem:?}"
        );
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("shim");
        group.sample_size(50);
        group.bench_with_input(BenchmarkId::new("inp", 3), &3u32, |b, &x| {
            b.iter(|| calls += x)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
