//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment of this repository cannot reach crates.io, so this
//! crate vendors the subset of the criterion API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it reports the mean
//! wall-clock time of up to `sample_size` runs, bounded by a per-benchmark
//! time budget so accidental invocations stay cheap. Passing `--test` (as
//! `cargo test --benches` does) runs every benchmark exactly once without
//! timing, mirroring criterion's smoke-test mode.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Maximum wall-clock time spent measuring one benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The top-level benchmark driver, created by [`criterion_main!`].
#[derive(Clone, Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            samples: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.samples == 0 {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = bencher.elapsed / bencher.samples;
        println!(
            "{}/{}: mean {mean:?} over {} sample(s)",
            self.name, id.id, bencher.samples
        );
    }
}

/// Times a closure handed to it by a benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly (up to the sample size or the time
    /// budget), accumulating wall-clock timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let before = Instant::now();
            black_box(routine());
            self.elapsed += before.elapsed();
            self.samples += 1;
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point of a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_routines_and_respect_sample_size() {
        let mut c = Criterion { test_mode: false };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| calls += 1)
        });
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("shim");
        group.sample_size(50);
        group.bench_with_input(BenchmarkId::new("inp", 3), &3u32, |b, &x| {
            b.iter(|| calls += x)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
