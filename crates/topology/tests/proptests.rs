//! Property-based tests for the topology crate.

use proptest::prelude::*;

use hyperpraw_topology::{BandwidthMatrix, CostMatrix, MachineModel};

proptest! {
    #[test]
    fn cost_normalisation_stays_in_range(
        units in 2usize..64,
        noise in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let model = MachineModel::archer_like(units);
        let bw = BandwidthMatrix::from_machine(&model, noise, seed);
        let cost = CostMatrix::from_bandwidth(&bw);
        for i in 0..units {
            prop_assert_eq!(cost.get(i, i), 0.0);
            for j in 0..units {
                if i != j {
                    let c = cost.get(i, j);
                    prop_assert!((1.0 - 1e-9..=2.0 + 1e-9).contains(&c),
                        "cost {} out of [1,2]", c);
                }
            }
        }
    }

    #[test]
    fn cost_matrix_is_symmetric_for_symmetric_bandwidth(
        units in 2usize..48,
        seed in 0u64..1_000,
    ) {
        let model = MachineModel::archer_like(units);
        let bw = BandwidthMatrix::from_machine(&model, 0.1, seed);
        let cost = CostMatrix::from_bandwidth(&bw);
        for i in 0..units {
            for j in 0..units {
                prop_assert!((cost.get(i, j) - cost.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shared_level_is_symmetric_and_consistent(
        units in 2usize..200,
        a in 0usize..200,
        b in 0usize..200,
    ) {
        let model = MachineModel::archer_like(units);
        let a = a % units;
        let b = b % units;
        prop_assert_eq!(model.shared_level(a, b), model.shared_level(b, a));
        prop_assert_eq!(model.link_bandwidth(a, b), model.link_bandwidth(b, a));
        if a != b {
            prop_assert!(model.shared_level(a, b).is_some());
        } else {
            prop_assert!(model.shared_level(a, b).is_none());
        }
    }

    #[test]
    fn higher_shared_level_never_has_higher_bandwidth(
        units in 4usize..150,
        seed in 0u64..100,
    ) {
        let model = MachineModel::archer_like(units);
        // For every pair, the bandwidth must be non-increasing in the shared
        // level index (levels are ordered innermost/fastest first).
        let mut per_level: Vec<Option<f64>> = vec![None; model.levels().len()];
        let _ = seed;
        for a in 0..units {
            for b in 0..units {
                if a == b { continue; }
                let l = model.shared_level(a, b).unwrap();
                let bwv = model.link_bandwidth(a, b);
                per_level[l] = Some(bwv);
            }
        }
        let observed: Vec<f64> = per_level.into_iter().flatten().collect();
        for w in observed.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn uniform_bandwidth_always_gives_uniform_cost(
        units in 2usize..64,
        mbs in 1.0f64..10_000.0,
    ) {
        let cost = CostMatrix::from_bandwidth(&BandwidthMatrix::uniform(units, mbs));
        prop_assert!(cost.is_uniform());
    }
}
