//! Rank-to-hardware mapping helpers.
//!
//! MPI schedulers can place consecutive ranks on the same node ("block"
//! placement, ARCHER's default used in the paper) or scatter them round-robin
//! across nodes ("cyclic"). The placement changes which *rank pairs* are fast
//! — and therefore changes the profiled bandwidth matrix — without changing
//! the machine. The experiment harness uses these mappings to emulate the
//! paper's "three different job allocations" repetitions.

use crate::MachineModel;

/// A bijective mapping from process ranks to hardware compute units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankMapping {
    to_unit: Vec<usize>,
    to_rank: Vec<usize>,
}

impl RankMapping {
    /// Builds a mapping from an explicit rank → unit permutation.
    ///
    /// # Panics
    ///
    /// Panics if `to_unit` is not a permutation of `0..n`.
    pub fn from_permutation(to_unit: Vec<usize>) -> Self {
        let n = to_unit.len();
        let mut to_rank = vec![usize::MAX; n];
        for (rank, &unit) in to_unit.iter().enumerate() {
            assert!(unit < n, "unit {unit} out of range");
            assert!(
                to_rank[unit] == usize::MAX,
                "unit {unit} assigned to two ranks"
            );
            to_rank[unit] = rank;
        }
        Self { to_unit, to_rank }
    }

    /// Identity (block) placement: rank `r` runs on unit `r`. Consecutive
    /// ranks fill sockets and nodes in order — the common scheduler default.
    pub fn block(n: usize) -> Self {
        Self::from_permutation((0..n).collect())
    }

    /// Cyclic placement over the groups of `group_size` consecutive units
    /// (e.g. nodes of 24 cores): rank `r` runs on node `r % num_nodes`,
    /// slot `r / num_nodes`. This scatters neighbouring ranks across nodes.
    pub fn cyclic(n: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        let num_groups = n.div_ceil(group_size);
        let mut to_unit = Vec::with_capacity(n);
        let mut slots = vec![0usize; num_groups];
        for rank in 0..n {
            // Find the next group (round-robin) with a free slot.
            let mut g = rank % num_groups;
            loop {
                let unit = g * group_size + slots[g];
                if slots[g] < group_size && unit < n {
                    slots[g] += 1;
                    to_unit.push(unit);
                    break;
                }
                g = (g + 1) % num_groups;
            }
        }
        Self::from_permutation(to_unit)
    }

    /// A deterministic pseudo-random placement derived from `seed`, emulating
    /// the effectively arbitrary node allocations a batch scheduler hands
    /// out for different jobs (the paper re-runs every experiment on three
    /// such allocations).
    pub fn scattered(n: usize, seed: u64) -> Self {
        let mut to_unit: Vec<usize> = (0..n).collect();
        // Fisher-Yates with a splitmix64 stream: no external RNG needed.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            to_unit.swap(i, j);
        }
        Self::from_permutation(to_unit)
    }

    /// Number of ranks / units.
    pub fn len(&self) -> usize {
        self.to_unit.len()
    }

    /// `true` when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.to_unit.is_empty()
    }

    /// Hardware unit hosting `rank`.
    pub fn unit_of(&self, rank: usize) -> usize {
        self.to_unit[rank]
    }

    /// Rank hosted on hardware `unit`.
    pub fn rank_of(&self, unit: usize) -> usize {
        self.to_rank[unit]
    }

    /// Bandwidth between two *ranks* under this mapping on the given machine.
    pub fn rank_bandwidth(&self, model: &MachineModel, a: usize, b: usize) -> f64 {
        model.link_bandwidth(self.unit_of(a), self.unit_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_is_identity() {
        let m = RankMapping::block(8);
        for r in 0..8 {
            assert_eq!(m.unit_of(r), r);
            assert_eq!(m.rank_of(r), r);
        }
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn cyclic_mapping_scatters_consecutive_ranks() {
        // 12 units in nodes of 4: ranks 0,1,2 land on different nodes.
        let m = RankMapping::cyclic(12, 4);
        let node = |u: usize| u / 4;
        assert_ne!(node(m.unit_of(0)), node(m.unit_of(1)));
        assert_ne!(node(m.unit_of(1)), node(m.unit_of(2)));
        // It is still a permutation.
        let mut units: Vec<usize> = (0..12).map(|r| m.unit_of(r)).collect();
        units.sort_unstable();
        assert_eq!(units, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn scattered_is_a_deterministic_permutation() {
        let a = RankMapping::scattered(64, 5);
        let b = RankMapping::scattered(64, 5);
        let c = RankMapping::scattered(64, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut units: Vec<usize> = (0..64).map(|r| a.unit_of(r)).collect();
        units.sort_unstable();
        assert_eq!(units, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn rank_and_unit_lookups_are_inverse() {
        let m = RankMapping::scattered(32, 11);
        for r in 0..32 {
            assert_eq!(m.rank_of(m.unit_of(r)), r);
        }
    }

    #[test]
    fn rank_bandwidth_changes_with_placement() {
        let model = MachineModel::archer_like(48);
        let block = RankMapping::block(48);
        let cyclic = RankMapping::cyclic(48, 24);
        // Ranks 0 and 1 share a socket under block placement but are on
        // different nodes under 24-wide cyclic placement.
        assert!(
            block.rank_bandwidth(&model, 0, 1) > cyclic.rank_bandwidth(&model, 0, 1),
            "block placement should make neighbouring ranks faster"
        );
    }

    #[test]
    #[should_panic(expected = "assigned to two ranks")]
    fn duplicate_units_are_rejected() {
        RankMapping::from_permutation(vec![0, 0, 1]);
    }
}
