//! Hardware architecture models for the HyperPRAW reproduction.
//!
//! HyperPRAW needs to know, for every pair of compute units `(i, j)`, how
//! expensive it is to send data between them. On the paper's testbed (the
//! ARCHER Cray XC30) this information is obtained by profiling the
//! peer-to-peer bandwidth with an MPI ring benchmark; the profile directly
//! reflects the machine's hierarchy (cores sharing a socket communicate much
//! faster than cores in different cabinet groups).
//!
//! This crate provides:
//!
//! * [`MachineModel`] — a hierarchical description of an HPC machine
//!   (socket / node / blade / group levels with per-level bandwidth and
//!   latency), including an ARCHER-calibrated preset,
//! * [`BandwidthMatrix`] — a peer-to-peer bandwidth matrix, either derived
//!   from a machine model (with realistic measurement noise) or measured by
//!   the simulated ring profiler in `hyperpraw-netsim`,
//! * [`CostMatrix`] — the normalised communication-cost matrix
//!   `C(i,j) = 2 − (b_ij − b_min)/(b_max − b_min)` consumed by
//!   HyperPRAW-aware (and a uniform variant for HyperPRAW-basic),
//! * [`hierarchy`] — helpers mapping process ranks to hardware coordinates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bandwidth;
mod cost;
mod machine;

pub mod hierarchy;

pub use bandwidth::BandwidthMatrix;
pub use cost::CostMatrix;
pub use machine::{MachineLevel, MachineModel};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::{BandwidthMatrix, CostMatrix, MachineLevel, MachineModel};
}
