//! Communication-cost matrices (the paper's `C(i, j)`).

use crate::BandwidthMatrix;

/// The normalised communication-cost matrix consumed by HyperPRAW.
///
/// From the paper (§4.2): given the profiled bandwidths `b_ij`,
///
/// ```text
/// C(i,j) = 2 − (b_ij − b_min) / (b_max − b_min),   C(i,i) = 0
/// ```
///
/// so the fastest link costs 1, the slowest costs 2, and self-communication
/// is free. The normalisation makes HyperPRAW independent of the absolute
/// magnitude of the profiled bandwidths (different machines have bandwidths
/// differing by orders of magnitude, which would otherwise unbalance the
/// workload/communication trade-off in the vertex assignment function).
#[derive(Clone, Debug)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
    /// Column-major copy of `data`: `cols[j * n + i] = data[i * n + j]`.
    /// The streaming scorer accumulates `t_i = Σ_j X_j(v) · C(i,j)` one
    /// *source* partition `j` at a time, so it needs column `j` of the
    /// matrix contiguous in memory.
    cols: Vec<f64>,
    /// Per-row sums `Σ_j C(i,j)`, kept alongside the matrix so consumers
    /// can bound a row's contribution without rescanning it.
    row_sums: Vec<f64>,
    /// `true` when every off-diagonal entry is exactly `1.0` (the
    /// architecture-oblivious case): `t_i` then collapses to the exact
    /// integer `Σ_j X_j(v) − X_i(v)` and the scorer skips the matrix walk.
    unit_uniform: bool,
}

impl PartialEq for CostMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The caches are a pure function of `data`.
        self.n == other.n && self.data == other.data
    }
}

impl CostMatrix {
    fn with_caches(n: usize, data: Vec<f64>) -> Self {
        let mut cols = vec![0.0f64; n * n];
        let mut row_sums = vec![0.0f64; n];
        let mut unit_uniform = true;
        for i in 0..n {
            for j in 0..n {
                let c = data[i * n + j];
                cols[j * n + i] = c;
                row_sums[i] += c;
                if i != j && c != 1.0 {
                    unit_uniform = false;
                }
            }
        }
        Self {
            n,
            data,
            cols,
            row_sums,
            unit_uniform,
        }
    }

    /// Builds the cost matrix from a profiled bandwidth matrix using the
    /// paper's normalisation. If every off-diagonal bandwidth is identical
    /// the cost degenerates to 1 for all distinct pairs (the same as
    /// [`CostMatrix::uniform`]).
    pub fn from_bandwidth(bandwidth: &BandwidthMatrix) -> Self {
        let n = bandwidth.num_units();
        let b_min = bandwidth.min_off_diagonal();
        let b_max = bandwidth.max_off_diagonal();
        let range = b_max - b_min;
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let c = if range > 0.0 {
                    2.0 - (bandwidth.get(i, j) - b_min) / range
                } else {
                    1.0
                };
                data[i * n + j] = c;
            }
        }
        Self::with_caches(n, data)
    }

    /// A uniform cost matrix: 1 for every distinct pair, 0 on the diagonal.
    /// This is what HyperPRAW-basic and the Zoltan baseline use — they are
    /// oblivious to the physical architecture.
    pub fn uniform(n: usize) -> Self {
        let mut data = vec![1.0f64; n * n];
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        Self::with_caches(n, data)
    }

    /// Builds a cost matrix from raw row-major entries (diagonal forced to
    /// zero). Useful when the communication costs are known directly without
    /// profiling, which the paper explicitly allows.
    pub fn from_raw(n: usize, mut data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "cost matrix must be n x n");
        assert!(
            data.iter().all(|c| c.is_finite() && *c >= 0.0),
            "costs must be finite and non-negative"
        );
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        Self::with_caches(n, data)
    }

    /// Number of compute units.
    pub fn num_units(&self) -> usize {
        self.n
    }

    /// Cost of communicating between units `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Raw row `i` of the matrix (length `n`); the streaming inner loop uses
    /// this to avoid repeated index arithmetic.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Column `j` of the matrix as a contiguous slice (`col(j)[i] = C(i,j)`),
    /// served from a transposed copy precomputed at construction. The
    /// streaming scorer walks one column per *source* partition holding
    /// neighbours, so this keeps its inner loop stride-1.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// Precomputed sum of row `i` (`Σ_j C(i,j)`) — an upper bound on the
    /// per-neighbour communication term of hosting a vertex on unit `i`.
    #[inline]
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row_sums[i]
    }

    /// `true` when every off-diagonal entry is exactly `1.0`, i.e. the
    /// matrix is [`CostMatrix::uniform`]-shaped. Scorers use this to replace
    /// the matrix walk with exact integer arithmetic.
    #[inline]
    pub fn is_unit_uniform(&self) -> bool {
        self.unit_uniform
    }

    /// `true` when every off-diagonal entry is identical, i.e. the matrix
    /// carries no architecture information.
    pub fn is_uniform(&self) -> bool {
        let mut first = None;
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let c = self.get(i, j);
                match first {
                    None => first = Some(c),
                    Some(f) if (f - c).abs() > 1e-12 => return false,
                    _ => {}
                }
            }
        }
        true
    }

    /// Minimum off-diagonal cost.
    pub fn min_off_diagonal(&self) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    min = min.min(self.get(i, j));
                }
            }
        }
        min
    }

    /// Maximum off-diagonal cost.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    max = max.max(self.get(i, j));
                }
            }
        }
        max
    }

    /// Serialises the matrix as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n)
                .map(|j| format!("{:.4}", self.get(i, j)))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineModel;

    #[test]
    fn normalisation_maps_fastest_to_one_and_slowest_to_two() {
        let model = MachineModel::archer_like(48);
        let bw = BandwidthMatrix::from_machine(&model, 0.0, 1);
        let cost = CostMatrix::from_bandwidth(&bw);
        assert!((cost.min_off_diagonal() - 1.0).abs() < 1e-12);
        assert!((cost.max_off_diagonal() - 2.0).abs() < 1e-12);
        // Intra-socket pair is the fastest -> cost 1.
        assert!((cost.get(0, 1) - 1.0).abs() < 1e-12);
        // Self cost is zero.
        for i in 0..48 {
            assert_eq!(cost.get(i, i), 0.0);
        }
    }

    #[test]
    fn cost_is_monotone_decreasing_in_bandwidth() {
        let model = MachineModel::archer_like(96);
        let bw = BandwidthMatrix::from_machine(&model, 0.0, 2);
        let cost = CostMatrix::from_bandwidth(&bw);
        // Faster links must never cost more.
        let pairs = [(0usize, 1usize), (0, 13), (0, 30), (0, 95)];
        for w in pairs.windows(2) {
            let (a, b) = w[0];
            let (c, d) = w[1];
            assert!(bw.get(a, b) >= bw.get(c, d));
            assert!(cost.get(a, b) <= cost.get(c, d));
        }
    }

    #[test]
    fn uniform_bandwidth_degenerates_to_uniform_cost() {
        let bw = BandwidthMatrix::uniform(16, 123.0);
        let cost = CostMatrix::from_bandwidth(&bw);
        assert!(cost.is_uniform());
        assert_eq!(cost.get(0, 1), 1.0);
        assert_eq!(cost, CostMatrix::uniform(16));
    }

    #[test]
    fn normalisation_is_scale_invariant() {
        let model = MachineModel::archer_like(48);
        let bw1 = BandwidthMatrix::from_machine(&model, 0.0, 1);
        // Same machine with all bandwidths scaled 1000x.
        let scaled = BandwidthMatrix::from_raw(
            48,
            (0..48 * 48)
                .map(|idx| bw1.get(idx / 48, idx % 48) * 1000.0)
                .collect(),
        );
        let c1 = CostMatrix::from_bandwidth(&bw1);
        let c2 = CostMatrix::from_bandwidth(&scaled);
        for i in 0..48 {
            for j in 0..48 {
                assert!((c1.get(i, j) - c2.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uniform_matrix_properties() {
        let c = CostMatrix::uniform(8);
        assert!(c.is_uniform());
        assert_eq!(c.num_units(), 8);
        assert_eq!(c.get(3, 3), 0.0);
        assert_eq!(c.get(3, 4), 1.0);
        assert_eq!(c.row(2).len(), 8);
    }

    #[test]
    fn from_raw_zeroes_the_diagonal() {
        let c = CostMatrix::from_raw(2, vec![5.0, 1.5, 1.2, 7.0]);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(1, 1), 0.0);
        assert_eq!(c.get(0, 1), 1.5);
        assert!(!c.is_uniform());
    }

    #[test]
    fn archer_cost_is_not_uniform() {
        let model = MachineModel::archer_like(48);
        let bw = BandwidthMatrix::from_machine(&model, 0.05, 9);
        let cost = CostMatrix::from_bandwidth(&bw);
        assert!(!cost.is_uniform());
    }

    #[test]
    fn csv_has_n_rows() {
        let c = CostMatrix::uniform(5);
        assert_eq!(c.to_csv().lines().count(), 5);
    }

    #[test]
    fn column_cache_transposes_the_matrix() {
        let c = CostMatrix::from_raw(3, vec![0.0, 1.5, 2.0, 1.0, 0.0, 3.0, 2.5, 0.5, 0.0]);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.col(j)[i], c.get(i, j));
            }
            let sum: f64 = (0..3).map(|j| c.get(i, j)).sum();
            assert!((c.row_sum(i) - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_uniform_flag_tracks_the_entries() {
        assert!(CostMatrix::uniform(6).is_unit_uniform());
        // Degenerate bandwidth also collapses to unit costs.
        let bw = BandwidthMatrix::uniform(4, 10.0);
        assert!(CostMatrix::from_bandwidth(&bw).is_unit_uniform());
        // Uniform but not *unit* uniform: the fast path must stay off.
        let scaled = CostMatrix::from_raw(2, vec![0.0, 2.0, 2.0, 0.0]);
        assert!(scaled.is_uniform());
        assert!(!scaled.is_unit_uniform());
        let model = MachineModel::archer_like(24);
        let aware = CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&model, 0.05, 1));
        assert!(!aware.is_unit_uniform());
    }
}
