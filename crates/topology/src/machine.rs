//! Hierarchical machine models.

use std::fmt;

/// One level of the machine hierarchy, counted from the innermost grouping
/// outwards.
///
/// A level groups `arity` children of the previous level; two compute units
/// whose lowest common grouping is this level communicate at
/// `bandwidth_mbs` with `latency_us` one-way latency.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineLevel {
    /// Human-readable level name ("socket", "node", "blade", "group", ...).
    pub name: String,
    /// How many instances of the previous level (or compute units, for the
    /// innermost level) are grouped at this level.
    pub arity: usize,
    /// Sustained point-to-point bandwidth between two units whose lowest
    /// common ancestor is this level, in MB/s.
    pub bandwidth_mbs: f64,
    /// One-way message latency at this level, in microseconds.
    pub latency_us: f64,
}

impl MachineLevel {
    /// Convenience constructor.
    pub fn new(name: &str, arity: usize, bandwidth_mbs: f64, latency_us: f64) -> Self {
        Self {
            name: name.to_string(),
            arity,
            bandwidth_mbs,
            latency_us,
        }
    }
}

/// A hierarchical model of an HPC machine.
///
/// The machine is a balanced tree: compute units (MPI processes, one per
/// core) at the leaves, grouped by the levels from innermost to outermost.
/// Communication between two units is characterised by their *lowest common
/// level*: the innermost level at which they share a grouping. The paper's
/// Figure 1A/6A banded heatmaps are exactly this structure plus measurement
/// noise.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    name: String,
    num_units: usize,
    levels: Vec<MachineLevel>,
}

impl MachineModel {
    /// Builds a machine model. `levels` are ordered innermost → outermost.
    /// The total capacity (product of arities) must cover `num_units`.
    ///
    /// # Panics
    ///
    /// Panics if `num_units` is zero, `levels` is empty, any arity is zero,
    /// or the hierarchy cannot hold `num_units` units.
    pub fn new(name: &str, num_units: usize, levels: Vec<MachineLevel>) -> Self {
        assert!(num_units > 0, "machine must have at least one unit");
        assert!(!levels.is_empty(), "machine must have at least one level");
        assert!(
            levels.iter().all(|l| l.arity > 0),
            "level arities must be positive"
        );
        let capacity: usize = levels.iter().map(|l| l.arity).product();
        assert!(
            capacity >= num_units,
            "hierarchy capacity {capacity} cannot hold {num_units} units"
        );
        Self {
            name: name.to_string(),
            num_units,
            levels,
        }
    }

    /// An ARCHER-like Cray XC30 model (the paper's testbed): 12-core
    /// sockets, 2 sockets per node, 4 nodes per Aries blade, 32 blades per
    /// (electrical) group, optical links between groups.
    ///
    /// Bandwidth tiers are calibrated to reproduce the banded structure of
    /// the paper's Figure 1A: intra-socket shared-memory transfers are an
    /// order of magnitude faster than anything crossing the network, and the
    /// network itself has mild tiering between blade, group and global
    /// links.
    pub fn archer_like(num_units: usize) -> Self {
        Self::new(
            "archer-like",
            num_units,
            vec![
                MachineLevel::new("socket", 12, 8_000.0, 0.4),
                MachineLevel::new("node", 2, 4_500.0, 0.8),
                MachineLevel::new("blade", 4, 1_400.0, 1.4),
                MachineLevel::new("group", 32, 1_000.0, 1.9),
                MachineLevel::new("system", 64, 650.0, 2.6),
            ],
        )
    }

    /// A generic dual-socket commodity cluster: `cores_per_socket` cores,
    /// two sockets per node, flat interconnect between nodes.
    pub fn dual_socket_cluster(num_units: usize, cores_per_socket: usize) -> Self {
        let nodes = num_units.div_ceil(cores_per_socket * 2).max(1);
        Self::new(
            "dual-socket-cluster",
            num_units,
            vec![
                MachineLevel::new("socket", cores_per_socket, 9_000.0, 0.3),
                MachineLevel::new("node", 2, 5_000.0, 0.7),
                MachineLevel::new("cluster", nodes, 1_100.0, 1.8),
            ],
        )
    }

    /// A perfectly homogeneous machine: every pair of units communicates at
    /// the same speed. HyperPRAW-aware degenerates to HyperPRAW-basic on
    /// this model, which the tests exploit.
    pub fn flat(num_units: usize, bandwidth_mbs: f64, latency_us: f64) -> Self {
        Self::new(
            "flat",
            num_units,
            vec![MachineLevel::new(
                "network",
                num_units,
                bandwidth_mbs,
                latency_us,
            )],
        )
    }

    /// A cloud-like model: virtual machines of `vcpus` cores placed on an
    /// oversubscribed network whose upper tier is markedly slower, as found
    /// in multi-tenant environments. The architecture is *not* exposed to
    /// the application (the scenario motivating profiling-based discovery in
    /// the paper).
    pub fn cloud_like(num_units: usize, vcpus: usize) -> Self {
        let hosts = num_units.div_ceil(vcpus).max(1);
        let racks = hosts.div_ceil(8).max(1);
        Self::new(
            "cloud-like",
            num_units,
            vec![
                MachineLevel::new("vm", vcpus, 6_000.0, 0.5),
                MachineLevel::new("rack", 8, 900.0, 2.5),
                MachineLevel::new("zone", racks, 250.0, 6.0),
            ],
        )
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compute units (leaves), i.e. the job size `p`.
    pub fn num_units(&self) -> usize {
        self.num_units
    }

    /// The hierarchy levels, innermost first.
    pub fn levels(&self) -> &[MachineLevel] {
        &self.levels
    }

    /// Number of units grouped together at `level` (cumulative product of
    /// arities up to and including `level`).
    pub fn units_per_group(&self, level: usize) -> usize {
        self.levels[..=level].iter().map(|l| l.arity).product()
    }

    /// Hardware coordinates of a unit: `coords[l]` is the index of the
    /// level-`l` group the unit belongs to (counted globally).
    pub fn coordinates(&self, unit: usize) -> Vec<usize> {
        assert!(unit < self.num_units, "unit {unit} out of range");
        self.levels
            .iter()
            .scan(1usize, |acc, l| {
                *acc *= l.arity;
                Some(unit / *acc)
            })
            .collect()
    }

    /// The innermost level shared by two units, or `None` if `a == b`
    /// (self-communication never touches the network).
    pub fn shared_level(&self, a: usize, b: usize) -> Option<usize> {
        assert!(
            a < self.num_units && b < self.num_units,
            "unit out of range"
        );
        if a == b {
            return None;
        }
        let mut group = 1usize;
        for (idx, level) in self.levels.iter().enumerate() {
            group *= level.arity;
            if a / group == b / group {
                return Some(idx);
            }
        }
        // Units that do not share even the outermost declared level use the
        // outermost level's characteristics.
        Some(self.levels.len() - 1)
    }

    /// Nominal bandwidth between two distinct units (MB/s); `f64::INFINITY`
    /// for self-communication.
    pub fn link_bandwidth(&self, a: usize, b: usize) -> f64 {
        match self.shared_level(a, b) {
            None => f64::INFINITY,
            Some(l) => self.levels[l].bandwidth_mbs,
        }
    }

    /// Nominal one-way latency between two units (µs); zero for
    /// self-communication.
    pub fn link_latency_us(&self, a: usize, b: usize) -> f64 {
        match self.shared_level(a, b) {
            None => 0.0,
            Some(l) => self.levels[l].latency_us,
        }
    }

    /// Fraction of distinct pairs that communicate at the innermost
    /// (fastest) level — the paper's observation that fast links are a small
    /// percentage of all interconnections.
    pub fn fast_link_fraction(&self) -> f64 {
        let n = self.num_units;
        if n < 2 {
            return 1.0;
        }
        let mut fast = 0usize;
        let mut total = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                total += 1;
                if self.shared_level(a, b) == Some(0) {
                    fast += 1;
                }
            }
        }
        fast as f64 / total as f64
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} units: ", self.name, self.num_units)?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{}[{}]", l.name, l.arity)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archer_like_has_expected_structure() {
        let m = MachineModel::archer_like(576);
        assert_eq!(m.num_units(), 576);
        assert_eq!(m.levels().len(), 5);
        assert_eq!(m.units_per_group(0), 12); // socket
        assert_eq!(m.units_per_group(1), 24); // node
        assert_eq!(m.units_per_group(2), 96); // blade
    }

    #[test]
    fn shared_level_follows_the_hierarchy() {
        let m = MachineModel::archer_like(144);
        // Units 0 and 5 share a socket.
        assert_eq!(m.shared_level(0, 5), Some(0));
        // Units 0 and 13 share a node but not a socket.
        assert_eq!(m.shared_level(0, 13), Some(1));
        // Units 0 and 25 are in different nodes on the same blade.
        assert_eq!(m.shared_level(0, 25), Some(2));
        // Units 0 and 100 are on different blades.
        assert_eq!(m.shared_level(0, 100), Some(3));
        // Self-communication is special.
        assert_eq!(m.shared_level(7, 7), None);
    }

    #[test]
    fn bandwidth_decreases_with_distance() {
        let m = MachineModel::archer_like(576);
        let socket = m.link_bandwidth(0, 1);
        let node = m.link_bandwidth(0, 12);
        let blade = m.link_bandwidth(0, 30);
        let group = m.link_bandwidth(0, 200);
        assert!(socket > node);
        assert!(node > blade);
        assert!(blade > group);
        assert_eq!(m.link_bandwidth(3, 3), f64::INFINITY);
    }

    #[test]
    fn latency_increases_with_distance() {
        let m = MachineModel::archer_like(576);
        assert!(m.link_latency_us(0, 1) < m.link_latency_us(0, 12));
        assert!(m.link_latency_us(0, 12) < m.link_latency_us(0, 200));
        assert_eq!(m.link_latency_us(9, 9), 0.0);
    }

    #[test]
    fn coordinates_identify_groups() {
        let m = MachineModel::archer_like(144);
        let c0 = m.coordinates(0);
        let c5 = m.coordinates(5);
        let c13 = m.coordinates(13);
        assert_eq!(c0[0], c5[0]); // same socket
        assert_ne!(c0[0], c13[0]); // different socket
        assert_eq!(c0[1], c13[1]); // same node
    }

    #[test]
    fn flat_machine_is_homogeneous() {
        let m = MachineModel::flat(16, 1000.0, 1.0);
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert_eq!(m.link_bandwidth(a, b), 1000.0);
                    assert_eq!(m.link_latency_us(a, b), 1.0);
                }
            }
        }
        assert_eq!(m.fast_link_fraction(), 1.0);
    }

    #[test]
    fn fast_links_are_a_minority_on_archer() {
        let m = MachineModel::archer_like(144);
        let frac = m.fast_link_fraction();
        assert!(frac < 0.15, "fast-link fraction {frac} should be small");
        assert!(frac > 0.0);
    }

    #[test]
    fn cloud_and_dual_socket_presets_build() {
        let c = MachineModel::cloud_like(64, 8);
        assert_eq!(c.num_units(), 64);
        let d = MachineModel::dual_socket_cluster(96, 12);
        assert_eq!(d.num_units(), 96);
        assert!(c.link_bandwidth(0, 63) < c.link_bandwidth(0, 1));
        assert!(d.link_bandwidth(0, 95) < d.link_bandwidth(0, 1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn hierarchy_must_cover_all_units() {
        MachineModel::new(
            "tiny",
            100,
            vec![
                MachineLevel::new("node", 4, 100.0, 1.0),
                MachineLevel::new("rack", 2, 50.0, 2.0),
            ],
        );
    }

    #[test]
    fn display_mentions_levels() {
        let m = MachineModel::archer_like(48);
        let s = format!("{m}");
        assert!(s.contains("socket[12]"));
        assert!(s.contains("48 units"));
    }
}
