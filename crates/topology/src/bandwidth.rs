//! Peer-to-peer bandwidth matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::MachineModel;

/// A symmetric peer-to-peer bandwidth matrix in MB/s.
///
/// This is the quantity the paper profiles with mpiGraph before partitioning
/// (Figures 1A and 6A). It can be synthesised from a [`MachineModel`] (with
/// log-normal measurement noise) or measured by the simulated ring profiler
/// in `hyperpraw-netsim`; HyperPRAW only ever sees the matrix, never the
/// model, mirroring the paper's profiling-based discovery.
#[derive(Clone, Debug, PartialEq)]
pub struct BandwidthMatrix {
    n: usize,
    /// Row-major `n × n`; `data[i * n + j]` is the bandwidth from `i` to `j`.
    data: Vec<f64>,
}

impl BandwidthMatrix {
    /// Creates a matrix from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n` or any off-diagonal entry is not a
    /// positive finite number.
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "bandwidth matrix must be n x n");
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let b = data[i * n + j];
                    assert!(
                        b.is_finite() && b > 0.0,
                        "bandwidth between {i} and {j} must be positive and finite, got {b}"
                    );
                }
            }
        }
        Self { n, data }
    }

    /// Synthesises the profiled bandwidth of a machine model: the nominal
    /// per-level bandwidth perturbed by multiplicative log-normal noise of
    /// standard deviation `noise_sigma` (in log-space; 0.0 disables noise),
    /// symmetrised by averaging both directions as a ring profiler would.
    pub fn from_machine(model: &MachineModel, noise_sigma: f64, seed: u64) -> Self {
        let n = model.num_units();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let nominal = model.link_bandwidth(i, j);
                let noise = if noise_sigma > 0.0 {
                    // Box-Muller standard normal, scaled.
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (z * noise_sigma).exp()
                } else {
                    1.0
                };
                let b = (nominal * noise).max(1e-3);
                data[i * n + j] = b;
                data[j * n + i] = b;
            }
        }
        // Self-bandwidth: fastest observed link times a margin (never used by
        // the cost normalisation, which excludes the diagonal).
        let max = data.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        for i in 0..n {
            data[i * n + i] = max * 4.0;
        }
        Self { n, data }
    }

    /// A perfectly uniform bandwidth matrix (all off-diagonal entries equal).
    pub fn uniform(n: usize, bandwidth_mbs: f64) -> Self {
        assert!(bandwidth_mbs > 0.0 && bandwidth_mbs.is_finite());
        let mut data = vec![bandwidth_mbs; n * n];
        for i in 0..n {
            data[i * n + i] = bandwidth_mbs * 4.0;
        }
        Self { n, data }
    }

    /// Number of compute units.
    pub fn num_units(&self) -> usize {
        self.n
    }

    /// Bandwidth from `i` to `j` in MB/s.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Overwrites the bandwidth between `i` and `j` (both directions).
    pub fn set_symmetric(&mut self, i: usize, j: usize, bandwidth_mbs: f64) {
        self.data[i * self.n + j] = bandwidth_mbs;
        self.data[j * self.n + i] = bandwidth_mbs;
    }

    /// Minimum off-diagonal bandwidth (`b_min` in the paper's normalisation).
    pub fn min_off_diagonal(&self) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    min = min.min(self.get(i, j));
                }
            }
        }
        min
    }

    /// Maximum off-diagonal bandwidth (`b_max`).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    max = max.max(self.get(i, j));
                }
            }
        }
        max
    }

    /// Rows of `log10(bandwidth)` values, as plotted in the paper's heatmaps
    /// (Figures 1A and 6A).
    pub fn log10_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j).log10()).collect())
            .collect()
    }

    /// Serialises the matrix as CSV (one row per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n)
                .map(|j| format!("{:.3}", self.get(i, j)))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_machine_reflects_hierarchy_tiers() {
        let model = MachineModel::archer_like(48);
        let bw = BandwidthMatrix::from_machine(&model, 0.0, 1);
        // Without noise the matrix equals the nominal link bandwidths.
        assert_eq!(bw.get(0, 1), model.link_bandwidth(0, 1));
        assert_eq!(bw.get(0, 13), model.link_bandwidth(0, 13));
        assert!(bw.get(0, 1) > bw.get(0, 13));
        assert_eq!(bw.get(5, 9), bw.get(9, 5));
    }

    #[test]
    fn noise_perturbs_but_preserves_ordering_of_tiers() {
        let model = MachineModel::archer_like(96);
        let bw = BandwidthMatrix::from_machine(&model, 0.08, 7);
        // Average intra-socket bandwidth should still dominate inter-blade.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..96 {
            for j in 0..96 {
                if i == j {
                    continue;
                }
                match model.shared_level(i, j) {
                    Some(0) => intra.push(bw.get(i, j)),
                    Some(l) if l >= 2 => inter.push(bw.get(i, j)),
                    _ => {}
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&intra) > 2.0 * avg(&inter));
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let model = MachineModel::archer_like(24);
        let a = BandwidthMatrix::from_machine(&model, 0.1, 3);
        let b = BandwidthMatrix::from_machine(&model, 0.1, 3);
        let c = BandwidthMatrix::from_machine(&model, 0.1, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn min_max_off_diagonal_ignore_diagonal() {
        let bw = BandwidthMatrix::uniform(8, 500.0);
        assert_eq!(bw.min_off_diagonal(), 500.0);
        assert_eq!(bw.max_off_diagonal(), 500.0);
        assert!(bw.get(3, 3) > 500.0);
    }

    #[test]
    fn from_raw_validates_entries() {
        let ok = BandwidthMatrix::from_raw(2, vec![10.0, 5.0, 5.0, 10.0]);
        assert_eq!(ok.get(0, 1), 5.0);
        let res =
            std::panic::catch_unwind(|| BandwidthMatrix::from_raw(2, vec![10.0, -1.0, 5.0, 10.0]));
        assert!(res.is_err());
    }

    #[test]
    fn csv_and_log_rows_have_expected_shape() {
        let bw = BandwidthMatrix::uniform(4, 100.0);
        let csv = bw.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 4);
        let rows = bw.log10_rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_symmetric_updates_both_directions() {
        let mut bw = BandwidthMatrix::uniform(4, 100.0);
        bw.set_symmetric(1, 2, 42.0);
        assert_eq!(bw.get(1, 2), 42.0);
        assert_eq!(bw.get(2, 1), 42.0);
    }
}
