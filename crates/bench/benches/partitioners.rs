//! End-to-end comparison of the partitioners on the same instance: the
//! Zoltan-like multilevel baseline, HyperPRAW (sequential) and the parallel
//! restreaming extension — the data behind the "partitioning cost" column of
//! the evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_bench::Testbed;
use hyperpraw_core::{HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_multilevel::{MultilevelConfig, MultilevelPartitioner};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners_end_to_end");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(3_000, 10));
    let p = 24usize;
    let testbed = Testbed::archer(p, 0, 1);

    group.bench_function(BenchmarkId::new("zoltan_like", p), |b| {
        b.iter(|| MultilevelPartitioner::new(MultilevelConfig::default()).partition(&hg, p as u32))
    });
    group.bench_function(BenchmarkId::new("hyperpraw_basic", p), |b| {
        b.iter(|| HyperPraw::basic(HyperPrawConfig::default(), p as u32).partition(&hg))
    });
    group.bench_function(BenchmarkId::new("hyperpraw_aware", p), |b| {
        b.iter(|| HyperPraw::aware(HyperPrawConfig::default(), testbed.cost.clone()).partition(&hg))
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("hyperpraw_parallel", threads), |b| {
            b.iter(|| {
                ParallelHyperPraw::new(
                    HyperPrawConfig::default(),
                    ParallelConfig::with_threads(threads),
                    testbed.cost.clone(),
                )
                .partition(&hg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
