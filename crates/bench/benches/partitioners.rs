//! End-to-end comparison of the partitioners on the same instance: the
//! Zoltan-like multilevel baseline, HyperPRAW (sequential) and the parallel
//! restreaming extension — the data behind the "partitioning cost" column of
//! the evaluation.
//!
//! The `hyperpraw_basic`/`hyperpraw_aware` entries time the unified
//! restreaming engine's sequential strategy under both connectivity
//! providers: the `…_csr` ids re-deduplicate neighbourhoods through the
//! epoch scratch on every visit (the pre-adjacency default, and the seed
//! driver's cost model), the `…_adj` ids answer from the precomputed
//! dedup adjacency (`Connectivity::Auto`, the new default) — same
//! partitions bit for bit, so the ratio between the two ids is pure
//! provider speedup. The `hyperpraw_steal` entries sweep the work-stealing
//! strategy over a thread ladder (1 is the sequential-dispatch floor). The
//! `lowmem_bsp_sketched` entries time the engine combination none of the
//! pre-engine drivers could express: bulk-synchronous workers over the
//! sketched out-of-core connectivity provider. Medians land in
//! `target/BENCH_partitioners.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_bench::Testbed;
use hyperpraw_core::{Connectivity, HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_lowmem::{LowMemConfig, LowMemPartitioner};
use hyperpraw_multilevel::{MultilevelConfig, MultilevelPartitioner};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners_end_to_end");
    group.sample_size(10);
    // Cardinality 16 approaches the paper's FEM row-net instances (Table 1
    // averages 24–60 pins per hyperedge); the pre-PR-4 group used
    // cardinality 10, so ids are not comparable across that boundary.
    let hg = mesh_hypergraph(&MeshConfig::new(3_000, 16));
    let p = 24usize;
    let testbed = Testbed::archer(p, 0, 1);
    let providers = [("csr", Connectivity::Csr), ("adj", Connectivity::Auto)];

    group.bench_function(BenchmarkId::new("zoltan_like", p), |b| {
        b.iter(|| MultilevelPartitioner::new(MultilevelConfig::default()).partition(&hg, p as u32))
    });
    for (tag, connectivity) in providers {
        let config = HyperPrawConfig::default().with_connectivity(connectivity);
        group.bench_function(BenchmarkId::new(format!("hyperpraw_basic_{tag}"), p), |b| {
            b.iter(|| HyperPraw::basic(config, p as u32).partition(&hg))
        });
        group.bench_function(BenchmarkId::new(format!("hyperpraw_aware_{tag}"), p), |b| {
            b.iter(|| HyperPraw::aware(config, testbed.cost.clone()).partition(&hg))
        });
    }
    // Multi-pass refinement is where the precomputation amortises hardest:
    // a frozen-α refinement run keeps restreaming until the comm cost
    // converges, revisiting every neighbourhood once per pass.
    for (tag, connectivity) in providers {
        let config = HyperPrawConfig {
            initial_alpha: Some(2.0),
            ..HyperPrawConfig::default().with_connectivity(connectivity)
        };
        group.bench_function(
            BenchmarkId::new(format!("hyperpraw_refine_{tag}"), p),
            |b| b.iter(|| HyperPraw::basic(config, p as u32).partition(&hg)),
        );
    }
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("hyperpraw_parallel", threads), |b| {
            b.iter(|| {
                ParallelHyperPraw::new(
                    HyperPrawConfig::default(),
                    ParallelConfig::with_threads(threads),
                    testbed.cost.clone(),
                )
                .partition(&hg)
            })
        });
    }
    // The work-stealing strategy swept over a thread ladder: the 1-thread
    // point is the sequential-dispatch floor, and the ratio steal/N over
    // steal/1 is the strategy's own scaling (no BSP barriers to hide in).
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("hyperpraw_steal", threads), |b| {
            b.iter(|| {
                ParallelHyperPraw::new(
                    HyperPrawConfig::default(),
                    ParallelConfig::stealing(threads),
                    testbed.cost.clone(),
                )
                .partition(&hg)
            })
        });
    }
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("lowmem_bsp_sketched", threads), |b| {
            b.iter(|| {
                LowMemPartitioner::new(
                    LowMemConfig {
                        threads,
                        sync_interval: 512,
                        ..LowMemConfig::default()
                    },
                    testbed.cost.clone(),
                )
                .partition_hypergraph(&hg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
