//! End-to-end comparison of the partitioners on the same instance: the
//! Zoltan-like multilevel baseline, HyperPRAW (sequential) and the parallel
//! restreaming extension — the data behind the "partitioning cost" column of
//! the evaluation.
//!
//! The `hyperpraw_basic`/`hyperpraw_aware` entries time the unified
//! restreaming engine's sequential strategy (`InMemorySource × CsrProvider`)
//! — the figures to compare against the seed driver when validating the
//! engine refactor's "no slower than the seed" criterion. The
//! `lowmem_bsp_sketched` entries time the engine combination none of the
//! pre-engine drivers could express: bulk-synchronous workers over the
//! sketched out-of-core connectivity provider.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_bench::Testbed;
use hyperpraw_core::{HyperPraw, HyperPrawConfig, ParallelConfig, ParallelHyperPraw};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_lowmem::{LowMemConfig, LowMemPartitioner};
use hyperpraw_multilevel::{MultilevelConfig, MultilevelPartitioner};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners_end_to_end");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(3_000, 10));
    let p = 24usize;
    let testbed = Testbed::archer(p, 0, 1);

    group.bench_function(BenchmarkId::new("zoltan_like", p), |b| {
        b.iter(|| MultilevelPartitioner::new(MultilevelConfig::default()).partition(&hg, p as u32))
    });
    group.bench_function(BenchmarkId::new("hyperpraw_basic", p), |b| {
        b.iter(|| HyperPraw::basic(HyperPrawConfig::default(), p as u32).partition(&hg))
    });
    group.bench_function(BenchmarkId::new("hyperpraw_aware", p), |b| {
        b.iter(|| HyperPraw::aware(HyperPrawConfig::default(), testbed.cost.clone()).partition(&hg))
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("hyperpraw_parallel", threads), |b| {
            b.iter(|| {
                ParallelHyperPraw::new(
                    HyperPrawConfig::default(),
                    ParallelConfig::with_threads(threads),
                    testbed.cost.clone(),
                )
                .partition(&hg)
            })
        });
    }
    for threads in [1usize, 4] {
        group.bench_function(BenchmarkId::new("lowmem_bsp_sketched", threads), |b| {
            b.iter(|| {
                LowMemPartitioner::new(
                    LowMemConfig {
                        threads,
                        sync_interval: 512,
                        ..LowMemConfig::default()
                    },
                    testbed.cost.clone(),
                )
                .partition_hypergraph(&hg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
