//! Instrumentation cost of the telemetry registry on the restreaming
//! engine.
//!
//! Runs `hyperpraw_basic` on the cardinality-16 mesh instance (the same
//! instance as `partitioners_end_to_end`) twice: once bound to
//! `Registry::disabled()` — the default, where every counter and
//! histogram handle is a no-op holding no allocation — and once bound to
//! a live registry recording the engine's per-pass metrics. The two ids
//! land side by side in `target/BENCH_telemetry_overhead.json`; the
//! acceptance bar is the live run staying within 3% of disabled.
//! Recording is observation-only, so the bench also asserts the two
//! configurations produce bit-identical partitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw::telemetry::Registry;
use hyperpraw_core::{HyperPraw, HyperPrawConfig};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(3_000, 16));
    let p = 24u32;
    let config = HyperPrawConfig::default();
    let live = Registry::new();

    let baseline = HyperPraw::basic(config, p).partition(&hg).partition;
    let instrumented = HyperPraw::basic(config, p)
        .with_registry(&live)
        .partition(&hg)
        .partition;
    assert_eq!(
        baseline.assignment(),
        instrumented.assignment(),
        "a live registry must not change the partition"
    );

    group.bench_function(BenchmarkId::new("hyperpraw_basic", "disabled"), |b| {
        b.iter(|| HyperPraw::basic(config, p).partition(&hg))
    });
    group.bench_function(BenchmarkId::new("hyperpraw_basic", "live"), |b| {
        b.iter(|| {
            HyperPraw::basic(config, p)
                .with_registry(&live)
                .partition(&hg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
