//! Criterion benchmarks of the network-simulation substrate: event-driven
//! round processing, ring profiling and the aggregate synthetic benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_core::baselines;
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_netsim::{
    BenchmarkConfig, EventDrivenSim, LinkModel, Message, RingProfiler, SyntheticBenchmark,
};
use hyperpraw_topology::MachineModel;

fn bench_event_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_event_round");
    let machine = MachineModel::archer_like(96);
    let link = LinkModel::from_machine(&machine, 0.05, 1);
    for &msgs in &[1_000usize, 10_000] {
        let messages: Vec<Message> = (0..msgs)
            .map(|i| Message::new(i % 96, (i * 7 + 3) % 96, 1024))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(msgs), &messages, |b, msgs| {
            b.iter(|| EventDrivenSim::new(link.clone()).simulate_round(msgs))
        });
    }
    group.finish();
}

fn bench_ring_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_ring_profiler");
    group.sample_size(10);
    for &p in &[48usize, 144] {
        let machine = MachineModel::archer_like(p);
        let link = LinkModel::from_machine(&machine, 0.05, 1);
        group.bench_with_input(BenchmarkId::from_parameter(p), &link, |b, link| {
            b.iter(|| RingProfiler::default().profile(link))
        });
    }
    group.finish();
}

fn bench_synthetic_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_synthetic_benchmark");
    group.sample_size(10);
    let p = 96usize;
    let machine = MachineModel::archer_like(p);
    let link = LinkModel::from_machine(&machine, 0.05, 1);
    for &n in &[2_000usize, 8_000] {
        let hg = mesh_hypergraph(&MeshConfig::new(n, 12));
        let part = baselines::round_robin(&hg, p as u32);
        let bench = SyntheticBenchmark::new(link.clone(), BenchmarkConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &hg, |b, hg| {
            b.iter(|| bench.run(hg, &part))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_rounds,
    bench_ring_profiler,
    bench_synthetic_benchmark
);
criterion_main!(benches);
