//! Criterion benchmarks of the Zoltan-like multilevel partitioner's stages:
//! coarsening, FM refinement and recursive bisection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_multilevel::coarsen::coarsen_once;
use hyperpraw_multilevel::initial::random_bisection;
use hyperpraw_multilevel::refine::fm_refine;
use hyperpraw_multilevel::{recursive_bisection, MultilevelConfig};

fn bench_coarsening(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_coarsen");
    for &n in &[2_000usize, 10_000] {
        let hg = mesh_hypergraph(&MeshConfig::new(n, 8));
        group.bench_with_input(BenchmarkId::from_parameter(n), &hg, |b, hg| {
            b.iter(|| coarsen_once(hg, 1))
        });
    }
    group.finish();
}

fn bench_fm_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_fm_refine");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let hg = mesh_hypergraph(&MeshConfig::new(n, 8));
        let total = hg.total_vertex_weight();
        let initial = random_bisection(&hg, 0.5, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &hg, |b, hg| {
            b.iter(|| fm_refine(hg, initial.clone(), [total * 0.55, total * 0.55], 2))
        });
    }
    group.finish();
}

fn bench_recursive_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_recursive_bisection");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(4_000, 8));
    for &k in &[8u32, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| recursive_bisection(&hg, k, &MultilevelConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coarsening,
    bench_fm_refine,
    bench_recursive_bisection
);
criterion_main!(benches);
