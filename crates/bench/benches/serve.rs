//! Request latency of the `hyperpraw serve` TCP daemon under concurrent
//! clients.
//!
//! Boots the real daemon loop (`serve_on`) on an ephemeral port, primes
//! one resident session, then hammers it with `CLIENTS` concurrent
//! connections each issuing a stream of `lookup` requests — the cheapest
//! op, so the numbers measure the serving machinery (accept queue, worker
//! hand-off, session lock, line framing), not partitioning work. Client-side
//! round-trip latencies land in a shared `hyperpraw-telemetry` histogram
//! (the same log-scaled buckets the daemon itself reports through its
//! `metrics` op) whose p50 / p95 / p99 are recorded to
//! `target/BENCH_serve.json` via the harness's `record_metric`, alongside
//! the total throughput. A mixed id stirs `update` batches in from one of
//! the clients, showing how much write traffic (and, in daemons with
//! `--state-dir`, journal fsyncs) stretches the read tail.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use criterion::record_metric;
use hyperpraw::telemetry::{Histogram, HistogramSnapshot, Registry};
use hyperpraw_cli::serve::{serve_on, ServeOptions};

const CLIENTS: usize = 4;

/// One request, one response, one timing.
fn timed_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Duration {
    let started = Instant::now();
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.contains("\"ok\": true"),
        "request failed: {line} -> {response}"
    );
    started.elapsed()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn run_load(requests_per_client: usize, updates: bool) -> (HistogramSnapshot, Duration) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        read_timeout_secs: 1,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_on(listener, &opts).unwrap());

    // Prime the shared session: a 2 000-vertex ring of triangles.
    let edges: Vec<String> = (0..2_000u32)
        .map(|i| format!("[{},{},{}]", i, (i + 1) % 2_000, (i + 7) % 2_000))
        .collect();
    {
        let (mut prime, mut prime_reader) = connect(addr);
        timed_request(
            &mut prime,
            &mut prime_reader,
            &format!(
                "{{\"op\": \"partition\", \"parts\": 8, \"seed\": 2019, \"edges\": [{}]}}",
                edges.join(",")
            ),
        );
        // Close the priming connection so every pool worker is free for
        // the measured clients.
    }

    // All clients record into one histogram: the handles are cheap
    // atomic clones over shared buckets, so no post-hoc aggregation.
    let registry = Registry::new();
    let latency: Histogram = registry.histogram("bench.serve.round_trip_us");
    let started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let latency = latency.clone();
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                for i in 0..requests_per_client {
                    let line = if updates && c == 0 && i % 10 == 5 {
                        // One writer client stirs small update batches in.
                        format!(
                            "{{\"op\": \"update\", \"updates\": [{{\"op\": \"add_vertex\"}}, \
                             {{\"op\": \"add_edge\", \"pins\": [{}, {}]}}]}}",
                            2_000 + (i / 10),
                            (c * 977 + i * 131) % 2_000,
                        )
                    } else {
                        format!(
                            "{{\"op\": \"lookup\", \"vertex\": {}}}",
                            (c * 499 + i * 241) % 2_000
                        )
                    };
                    latency.record_duration(timed_request(&mut stream, &mut reader, &line));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let wall = started.elapsed();

    let (mut closer, mut closer_reader) = connect(addr);
    let mut bye = String::new();
    writeln!(closer, "{{\"op\": \"shutdown\"}}").unwrap();
    closer.flush().unwrap();
    closer_reader.read_line(&mut bye).unwrap();
    assert!(bye.contains("\"bye\""), "{bye}");
    server.join().unwrap();

    (latency.snapshot(), wall)
}

fn report(id: &str, latencies: &HistogramSnapshot, wall: Duration) {
    let total = latencies.count;
    let p50 = latencies.quantile(0.50);
    let p95 = latencies.quantile(0.95);
    let p99 = latencies.quantile(0.99);
    println!(
        "serve_load/{id}: {total} requests over {CLIENTS} connections in {wall:?} \
         (p50 {p50}us, p95 {p95}us, p99 {p99}us)"
    );
    record_metric(format!("serve_load/{id}/p50"), p50 as f64 / 1e3);
    record_metric(format!("serve_load/{id}/p95"), p95 as f64 / 1e3);
    record_metric(format!("serve_load/{id}/p99"), p99 as f64 / 1e3);
    record_metric(
        format!("serve_load/{id}/wall_per_1k_requests"),
        wall.as_secs_f64() * 1e3 / (total as f64 / 1e3),
    );
}

fn main() {
    // `cargo test --benches` smoke-runs with `--test`: keep it tiny
    // (record_metric is a no-op there anyway).
    let test_mode = std::env::args().any(|a| a == "--test");
    let per_client = if test_mode { 20 } else { 500 };

    let (latencies, wall) = run_load(per_client, false);
    report("lookup", &latencies, wall);

    let (latencies, wall) = run_load(per_client, true);
    report("mixed_with_updates", &latencies, wall);

    criterion::write_json_report();
}
