//! Criterion benchmarks of the memory-bounded streaming partitioner
//! against in-memory HyperPRAW: one-pass assignment (exact vs. sketched
//! index), the on-disk transpose, and the in-memory restreaming baseline
//! on the same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_core::{HyperPraw, HyperPrawConfig};
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_hypergraph::io::hmetis;
use hyperpraw_hypergraph::io::stream::{stream_hgr_file, StreamOptions, VertexStream};
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};

fn bench_one_pass_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowmem_one_pass");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(20_000, 10));
    let p = 16u32;
    for (name, index) in [
        ("exact", IndexKind::Exact),
        ("sketched", IndexKind::Sketched),
    ] {
        let config = LowMemConfig {
            budget: MemoryBudget::mebibytes(8),
            index,
            ..LowMemConfig::default()
        };
        let partitioner = LowMemPartitioner::basic(config, p);
        group.bench_with_input(BenchmarkId::from_parameter(name), &hg, |b, hg| {
            b.iter(|| partitioner.partition_hypergraph(hg))
        });
    }
    group.bench_with_input(
        BenchmarkId::from_parameter("in_memory_hyperpraw"),
        &hg,
        |b, hg| b.iter(|| HyperPraw::basic(HyperPrawConfig::default(), p).partition(hg)),
    );
    group.finish();
}

fn bench_disk_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowmem_disk_transpose");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(20_000, 10));
    let path =
        std::env::temp_dir().join(format!("hyperpraw_bench_lowmem_{}.hgr", std::process::id()));
    hmetis::write_hgr_file(&hg, &path).unwrap();
    for &budget_kib in &[64usize, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{budget_kib}KiB")),
            &path,
            |b, path| {
                let options = StreamOptions::with_buffer_bytes(budget_kib << 10);
                b.iter(|| {
                    let mut stream = stream_hgr_file(path, &options).unwrap();
                    let mut record = Default::default();
                    let mut pins = 0usize;
                    while stream.next_into(&mut record).unwrap() {
                        pins += record.nets.len();
                    }
                    pins
                })
            },
        );
    }
    std::fs::remove_file(&path).ok();
    group.finish();
}

criterion_group!(benches, bench_one_pass_partitioners, bench_disk_transpose);
criterion_main!(benches);
