//! Incremental repartitioning vs. starting over: the case for
//! `hyperpraw-dynamic`.
//!
//! Both ids process the *same* workload change — a 1%-of-vertices update
//! batch (30 updates: new vertices wired into the mesh plus extra pins on
//! existing hyperedges) landing on an already-partitioned card-16 mesh.
//! `incremental_1pct` absorbs it through a resident `DynamicSession`
//! (dirty-set restream over the touched neighbourhood, adjacency patched
//! in place); `full_repartition` re-runs the whole job on the post-update
//! hypergraph, which is what a stateless deployment would have to do.
//! Both sides pay the same quality re-evaluation, so the ratio is pure
//! partitioning work. The incremental id clones the session per iteration
//! (`iter` must not accumulate batches), so its time *includes* the full
//! state copy — the steady-state daemon is faster still. Medians land in
//! `target/BENCH_dynamic.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw::api::{Algorithm, PartitionJob};
use hyperpraw::dynamic::GraphUpdate;
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

/// 30 updates ≈ 1% of the 3 000 mesh vertices: ten fresh vertices, each
/// wired in by a new hyperedge, plus ten pins added to existing edges.
fn one_percent_batch(n: u32) -> Vec<GraphUpdate> {
    let mut batch = Vec::with_capacity(30);
    for i in 0..10u32 {
        batch.push(GraphUpdate::AddVertex { weight: 1.0 });
        batch.push(GraphUpdate::AddHyperedge {
            pins: vec![n + i, (i * 97) % n, (i * 193 + 41) % n],
            weight: 1.0,
        });
    }
    for i in 0..10u32 {
        batch.push(GraphUpdate::AddPin {
            edge: (i * 31) % 100,
            vertex: (i * 911 + 13) % n,
        });
    }
    batch
}

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_updates");
    group.sample_size(10);
    let n = 3_000u32;
    let p = 24u32;
    let hg = mesh_hypergraph(&MeshConfig::new(n as usize, 16));
    let job = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(p)
        .seed(2019);
    let session = job.run_dynamic(&hg).unwrap();
    let batch = one_percent_batch(n);

    group.bench_function(BenchmarkId::new("incremental_1pct", p), |b| {
        b.iter(|| session.clone().update(&batch).unwrap())
    });

    // The stateless alternative: the same post-update hypergraph,
    // repartitioned from scratch through the same job.
    let updated = {
        let mut s = session.clone();
        s.update(&batch).unwrap();
        s.hypergraph().clone()
    };
    group.bench_function(BenchmarkId::new("full_repartition", p), |b| {
        b.iter(|| job.run(&updated).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
