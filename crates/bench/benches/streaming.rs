//! Criterion micro-benchmarks of the HyperPRAW streaming core: a full
//! restreaming partition and the per-stream cost, across hypergraph families
//! and partition counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_bench::Testbed;
use hyperpraw_core::{HyperPraw, HyperPrawConfig};
use hyperpraw_hypergraph::generators::{
    mesh_hypergraph, random_hypergraph, MeshConfig, RandomConfig,
};

fn bench_full_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperpraw_partition");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000] {
        let hg = mesh_hypergraph(&MeshConfig::new(n, 8));
        for &p in &[16usize, 48] {
            let testbed = Testbed::archer(p, 0, 1);
            group.bench_with_input(
                BenchmarkId::new("aware", format!("mesh{n}_p{p}")),
                &p,
                |b, _| {
                    b.iter(|| {
                        HyperPraw::aware(HyperPrawConfig::default(), testbed.cost.clone())
                            .partition(&hg)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("basic", format!("mesh{n}_p{p}")),
                &p,
                |b, &p| {
                    b.iter(|| HyperPraw::basic(HyperPrawConfig::default(), p as u32).partition(&hg))
                },
            );
        }
    }
    group.finish();
}

fn bench_hypergraph_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperpraw_families");
    group.sample_size(10);
    let p = 24usize;
    let testbed = Testbed::archer(p, 0, 1);
    let mesh = mesh_hypergraph(&MeshConfig::new(2_000, 12));
    let sparse = random_hypergraph(&RandomConfig::with_avg_cardinality(2_000, 2_000, 12.0, 3));
    for (name, hg) in [("mesh", &mesh), ("random", &sparse)] {
        group.bench_function(BenchmarkId::new("aware", name), |b| {
            b.iter(|| {
                HyperPraw::aware(HyperPrawConfig::default(), testbed.cost.clone()).partition(hg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_partition, bench_hypergraph_families);
criterion_main!(benches);
