//! Criterion benchmarks of the block-compressed `.hpz` storage crate:
//! raw block-decode throughput and the prefetch-overlap win when the
//! lowmem engine partitions straight off a compressed file instead of
//! re-parsing the textual transpose on every pass.
//!
//! The shimmed criterion records peak RSS (`VmHWM`) next to every median
//! in `BENCH_storage.json`, so the out-of-core claim — compressed
//! streaming does not drag the whole hypergraph into memory — is pinned
//! together with the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_hypergraph::io::hmetis;
use hyperpraw_hypergraph::io::stream::{stream_hgr_file, StreamOptions, VertexStream};
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};
use hyperpraw_storage::{convert_file, CompressedReader, ReadMode, DEFAULT_BLOCK_TARGET_BYTES};

use std::path::PathBuf;

/// The card-16 mesh instance both groups run over, staged once on disk in
/// both formats.
struct Fixture {
    dir: PathBuf,
    hgr: PathBuf,
    hpz: PathBuf,
    pins: usize,
}

impl Fixture {
    fn stage() -> Self {
        let dir =
            std::env::temp_dir().join(format!("hyperpraw-bench-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create bench scratch dir");
        let hg = mesh_hypergraph(&MeshConfig::new(20_000, 16));
        let hgr = dir.join("mesh16.hgr");
        hmetis::write_hgr_file(&hg, &hgr).expect("write transpose");
        let hpz = dir.join("mesh16.hpz");
        convert_file(
            &hgr,
            &hpz,
            DEFAULT_BLOCK_TARGET_BYTES,
            &StreamOptions::default(),
        )
        .expect("convert to compressed CSR");
        Fixture {
            dir,
            hgr,
            hpz,
            pins: hg.num_pins(),
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Fully drains a vertex stream, returning the pin count so the loop
/// cannot be optimised away. Pins/median gives decode throughput.
fn drain<S: VertexStream>(stream: &mut S) -> usize {
    let mut record = Default::default();
    let mut pins = 0usize;
    while stream.next_into(&mut record).expect("stream must decode") {
        pins += record.nets.len();
    }
    pins
}

fn bench_decode_throughput(c: &mut Criterion) {
    let fixture = Fixture::stage();
    let mut group = c.benchmark_group("storage_decode");
    group.sample_size(10);
    let reader = CompressedReader::open_file(&fixture.hpz).expect("open compressed file");
    for (name, mode) in [("sync", ReadMode::Sync), ("prefetch", ReadMode::Prefetch)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut stream = reader.stream(mode);
                let pins = drain(&mut stream);
                assert_eq!(pins, fixture.pins);
                pins
            })
        });
    }
    group.bench_function(BenchmarkId::from_parameter("transpose_text"), |b| {
        b.iter(|| {
            let mut stream =
                stream_hgr_file(&fixture.hgr, &StreamOptions::default()).expect("open transpose");
            let pins = drain(&mut stream);
            assert_eq!(pins, fixture.pins);
            pins
        })
    });
    group.finish();
}

fn bench_partition_prefetch_overlap(c: &mut Criterion) {
    let fixture = Fixture::stage();
    let mut group = c.benchmark_group("storage_partition");
    group.sample_size(10);
    let config = LowMemConfig {
        budget: MemoryBudget::mebibytes(8),
        index: IndexKind::Exact,
        ..LowMemConfig::default()
    };
    let partitioner = LowMemPartitioner::basic(config, 16);
    group.bench_function(BenchmarkId::from_parameter("transpose_sync"), |b| {
        b.iter(|| {
            let mut stream =
                stream_hgr_file(&fixture.hgr, &StreamOptions::default()).expect("open transpose");
            partitioner.partition(&mut stream).expect("partition")
        })
    });
    let reader = CompressedReader::open_file(&fixture.hpz).expect("open compressed file");
    for (name, mode) in [
        ("compressed_sync", ReadMode::Sync),
        ("compressed_prefetch", ReadMode::Prefetch),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut stream = reader.stream(mode);
                partitioner.partition(&mut stream).expect("partition")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_throughput,
    bench_partition_prefetch_overlap
);
criterion_main!(benches);
