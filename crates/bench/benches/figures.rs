//! Criterion benchmarks of the experiment kernels behind the paper's
//! figures: refinement-policy ablation (Figure 3), the quality metric
//! evaluation used throughout Figure 4, and the per-table-row runtime
//! pipeline of Figure 5 on one instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hyperpraw_bench::{ExperimentConfig, Strategy, Testbed};
use hyperpraw_core::metrics::{partitioning_communication_cost, QualityReport};
use hyperpraw_core::{HyperPraw, HyperPrawConfig, RefinementPolicy};
use hyperpraw_hypergraph::generators::suite::PaperInstance;
use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

fn bench_refinement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_refinement_policies");
    group.sample_size(10);
    let hg = mesh_hypergraph(&MeshConfig::new(2_000, 12));
    let testbed = Testbed::archer(24, 0, 1);
    for (name, policy) in [
        ("none", RefinementPolicy::None),
        ("factor_1.0", RefinementPolicy::Factor(1.0)),
        ("factor_0.95", RefinementPolicy::Factor(0.95)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                HyperPraw::aware(
                    HyperPrawConfig::default().with_refinement(policy),
                    testbed.cost.clone(),
                )
                .partition(&hg)
            })
        });
    }
    group.finish();
}

fn bench_quality_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_quality_metrics");
    let hg = mesh_hypergraph(&MeshConfig::new(4_000, 12));
    let testbed = Testbed::archer(48, 0, 1);
    let part = Strategy::HyperPrawAware.partition(&hg, &testbed, 48, 1);
    group.bench_function("quality_report", |b| {
        b.iter(|| QualityReport::compute(&hg, &part, &testbed.cost))
    });
    group.bench_function("comm_cost_only", |b| {
        b.iter(|| partitioning_communication_cost(&hg, &part, &testbed.cost))
    });
    group.finish();
}

fn bench_fig5_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_pipeline_one_instance");
    group.sample_size(10);
    let cfg = ExperimentConfig {
        scale: 0.005,
        procs: 48,
        ..ExperimentConfig::default()
    };
    let hg = cfg.instance(PaperInstance::AbacusShellHd);
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let bench = testbed.benchmark(&cfg);
    for strategy in Strategy::all() {
        group.bench_function(BenchmarkId::from_parameter(strategy.name()), |b| {
            b.iter(|| {
                let part = strategy.partition(&hg, &testbed, cfg.procs, cfg.seed);
                bench.run(&hg, &part)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_refinement_policies,
    bench_quality_metrics,
    bench_fig5_pipeline
);
criterion_main!(benches);
