//! Runs every experiment binary in sequence with a shared configuration.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin run_all
//! ```
//!
//! This is the one-command reproduction entry point referenced by
//! EXPERIMENTS.md. Set `HYPERPRAW_SCALE` / `HYPERPRAW_PROCS` to trade
//! fidelity against runtime.

use std::process::Command;

fn main() {
    let bins = ["table1", "fig1", "fig3", "fig4", "fig5", "fig6", "ablation"];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    for bin in bins {
        println!("\n================================================================");
        println!("== running {bin}");
        println!("================================================================\n");
        // Prefer the sibling binary (already built); fall back to cargo run.
        let status = match exe_dir.as_ref().map(|d| d.join(bin)).filter(|p| p.exists()) {
            Some(path) => Command::new(path).status(),
            None => Command::new("cargo")
                .args(["run", "--release", "-p", "hyperpraw-bench", "--bin", bin])
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\nall experiments completed; CSV artefacts are under target/experiments/");
}
