//! Runs every experiment binary in sequence with a shared configuration.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin run_all
//! ```
//!
//! This is the one-command reproduction entry point referenced by
//! EXPERIMENTS.md. Set `HYPERPRAW_SCALE` / `HYPERPRAW_PROCS` to trade
//! fidelity against runtime.
//!
//! Besides the per-experiment CSV artefacts, the wall-clock time of every
//! *prebuilt* binary is recorded in `BENCH_run_all.json` (binary →
//! seconds) under the experiment output directory, so the end-to-end
//! reproduction cost is tracked across PRs the same way `cargo bench`
//! medians are tracked in `target/BENCH_<bench>.json`. Binaries launched
//! through the `cargo run` fallback are excluded — their wall clock would
//! include an unbounded compile step.

use std::process::Command;
use std::time::Instant;

use hyperpraw_bench::ExperimentConfig;

fn main() {
    let bins = [
        "table1",
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "ablation",
        "lowmem_compare",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== running {bin}");
        println!("================================================================\n");
        let started = Instant::now();
        // Prefer the sibling binary (already built); fall back to cargo run.
        // Only prebuilt runs are recorded in the timing artefact — the
        // fallback's wall clock includes an unbounded compile step, which
        // would make the seconds incomparable across PRs.
        let prebuilt = exe_dir.as_ref().map(|d| d.join(bin)).filter(|p| p.exists());
        let timed = prebuilt.is_some();
        let status = match prebuilt {
            Some(path) => Command::new(path).status(),
            None => Command::new("cargo")
                .args(["run", "--release", "-p", "hyperpraw-bench", "--bin", bin])
                .status(),
        };
        match status {
            Ok(s) if s.success() => {
                if timed {
                    timings.push((bin, started.elapsed().as_secs_f64()));
                }
            }
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                std::process::exit(1);
            }
        }
    }

    let out_dir = ExperimentConfig::from_env().output_dir;
    // Nothing timed (every bin went through the cargo-run fallback): keep
    // whatever a previous prebuilt run recorded instead of clobbering it
    // with an empty object.
    if timings.is_empty() {
        println!("\nno prebuilt binaries were timed; BENCH_run_all.json left untouched");
    } else {
        let mut json = String::from("{\n");
        for (i, (bin, secs)) in timings.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!("  \"{bin}\": {secs:.3}"));
        }
        json.push_str("\n}\n");
        let path = out_dir.join("BENCH_run_all.json");
        match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, json)) {
            Ok(()) => println!("\nper-experiment timings written to {}", path.display()),
            Err(e) => eprintln!("\nwarning: could not write {}: {e}", path.display()),
        }
    }
    println!(
        "all experiments completed; CSV artefacts are under {}",
        out_dir.display()
    );
}
