//! Regenerates Figure 3: the effect of the refinement phase on the
//! partitioning communication cost across restreaming iterations.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin fig3
//! ```
//!
//! For the four hypergraphs plotted in the paper (2cubes_sphere,
//! sat14_itox_vc1130_dual, sparsine, ABACUS_shell_hd) the restreaming
//! partition history is recorded under three stopping policies: no
//! refinement, refinement 1.0 and refinement 0.95. Writes one CSV per
//! instance (`fig3_<instance>.csv`) and prints the convergence curves.

use hyperpraw_bench::{ascii_series, run_hyperpraw, ExperimentConfig, Testbed};
use hyperpraw_core::{HyperPrawConfig, RefinementPolicy};
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "== Figure 3: refinement-phase partition history (p = {}, scale {:.3}) ==\n",
        cfg.procs, cfg.scale
    );
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);

    let policies: [(&str, RefinementPolicy); 3] = [
        ("no-refinement", RefinementPolicy::None),
        ("refinement-1.0", RefinementPolicy::Factor(1.0)),
        ("refinement-0.95", RefinementPolicy::Factor(0.95)),
    ];

    for inst in PaperInstance::fig3_instances() {
        let hg = cfg.instance(inst);
        println!("--- {} ({}) ---", inst.paper_name(), hg);
        let mut csv = String::from("policy,iteration,phase,alpha,imbalance,comm_cost,moved\n");
        for (name, policy) in policies {
            let config = HyperPrawConfig::default()
                .with_refinement(policy)
                .with_seed(cfg.seed);
            let result = run_hyperpraw(&hg, testbed.cost.clone(), config);
            let series = result.history.comm_cost_series();
            let final_cost = result.comm_cost.unwrap_or(f64::NAN);
            println!(
                "{name:<16} iterations {:>3}  final comm cost {:>12.1}  {}",
                result.iterations,
                final_cost,
                ascii_series(&series, 48)
            );
            for r in result.history.records() {
                csv.push_str(&format!(
                    "{},{},{:?},{:.4},{:.4},{:.4},{}\n",
                    name, r.iteration, r.phase, r.alpha, r.imbalance, r.comm_cost, r.moved_vertices
                ));
            }
        }
        let path = cfg.write_csv(&format!("fig3_{}.csv", inst.paper_name()), &csv);
        println!("wrote {}\n", path.display());
    }

    println!(
        "Expected shape (paper §6.1): both refinement policies keep lowering the partitioning\n\
         communication cost after the imbalance tolerance is reached, with refinement 0.95\n\
         reaching the lowest values; no-refinement stops early at a higher cost."
    );
}
