//! Ablation study of HyperPRAW's design parameters (the paper's §7
//! discussion): the refinement factor, the tempering factor and the stream
//! order.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin ablation
//! ```
//!
//! Writes `ablation_refinement.csv`, `ablation_tempering.csv` and
//! `ablation_stream_order.csv`.

use hyperpraw_bench::{ascii_table, run_hyperpraw, ExperimentConfig, Testbed};
use hyperpraw_core::{HyperPrawConfig, RefinementPolicy, StreamOrder};
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "== Ablations (p = {}, scale {:.3}) ==\n",
        cfg.procs, cfg.scale
    );
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let instances = PaperInstance::fig3_instances();

    // 1. Refinement factor sweep (the paper found 0.95 experimentally).
    println!("--- refinement factor sweep ---");
    let factors = [0.85, 0.90, 0.95, 1.00, 1.05];
    let mut rows = Vec::new();
    let mut csv = String::from("instance,refinement_factor,iterations,comm_cost,imbalance\n");
    for inst in instances {
        let hg = cfg.instance(inst);
        for f in factors {
            let config = HyperPrawConfig::default()
                .with_refinement(RefinementPolicy::Factor(f))
                .with_seed(cfg.seed);
            let result = run_hyperpraw(&hg, testbed.cost.clone(), config);
            rows.push(vec![
                inst.paper_name().to_string(),
                format!("{f:.2}"),
                result.iterations.to_string(),
                format!("{:.0}", result.comm_cost.unwrap_or(f64::NAN)),
                format!("{:.3}", result.imbalance),
            ]);
            csv.push_str(&format!(
                "{},{:.2},{},{:.4},{:.4}\n",
                inst.paper_name(),
                f,
                result.iterations,
                result.comm_cost.unwrap_or(f64::NAN),
                result.imbalance
            ));
        }
    }
    println!(
        "{}",
        ascii_table(
            &["instance", "factor", "iterations", "comm cost", "imbalance"],
            &rows
        )
    );
    cfg.write_csv("ablation_refinement.csv", &csv);

    // 2. Tempering factor sweep (paper uses 1.7 while imbalanced).
    println!("--- tempering factor sweep ---");
    let tempering = [1.3, 1.5, 1.7, 2.0, 2.5];
    let mut rows = Vec::new();
    let mut csv = String::from("instance,tempering_factor,iterations,comm_cost,imbalance\n");
    for inst in instances {
        let hg = cfg.instance(inst);
        for t in tempering {
            let config = HyperPrawConfig {
                tempering_factor: t,
                ..HyperPrawConfig::default().with_seed(cfg.seed)
            };
            let result = run_hyperpraw(&hg, testbed.cost.clone(), config);
            rows.push(vec![
                inst.paper_name().to_string(),
                format!("{t:.1}"),
                result.iterations.to_string(),
                format!("{:.0}", result.comm_cost.unwrap_or(f64::NAN)),
                format!("{:.3}", result.imbalance),
            ]);
            csv.push_str(&format!(
                "{},{:.1},{},{:.4},{:.4}\n",
                inst.paper_name(),
                t,
                result.iterations,
                result.comm_cost.unwrap_or(f64::NAN),
                result.imbalance
            ));
        }
    }
    println!(
        "{}",
        ascii_table(
            &[
                "instance",
                "t_alpha",
                "iterations",
                "comm cost",
                "imbalance"
            ],
            &rows
        )
    );
    cfg.write_csv("ablation_tempering.csv", &csv);

    // 3. Stream order ablation.
    println!("--- stream order ---");
    let orders = [
        ("natural", StreamOrder::Natural),
        ("random", StreamOrder::Random),
        ("degree-desc", StreamOrder::DegreeDescending),
    ];
    let mut rows = Vec::new();
    let mut csv = String::from("instance,stream_order,iterations,comm_cost,imbalance\n");
    for inst in instances {
        let hg = cfg.instance(inst);
        for (name, order) in orders {
            let config = HyperPrawConfig::default()
                .with_stream_order(order)
                .with_seed(cfg.seed);
            let result = run_hyperpraw(&hg, testbed.cost.clone(), config);
            rows.push(vec![
                inst.paper_name().to_string(),
                name.to_string(),
                result.iterations.to_string(),
                format!("{:.0}", result.comm_cost.unwrap_or(f64::NAN)),
                format!("{:.3}", result.imbalance),
            ]);
            csv.push_str(&format!(
                "{},{},{},{:.4},{:.4}\n",
                inst.paper_name(),
                name,
                result.iterations,
                result.comm_cost.unwrap_or(f64::NAN),
                result.imbalance
            ));
        }
    }
    println!(
        "{}",
        ascii_table(
            &["instance", "order", "iterations", "comm cost", "imbalance"],
            &rows
        )
    );
    cfg.write_csv("ablation_stream_order.csv", &csv);
}
