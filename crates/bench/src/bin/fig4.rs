//! Regenerates Figure 4: partition quality of Zoltan-like, HyperPRAW-basic
//! and HyperPRAW-aware on the ten benchmark hypergraphs.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin fig4
//! ```
//!
//! Reports (A) hyperedge cut, (B) sum of external degrees and (C)
//! partitioning communication cost, and writes `fig4_quality.csv`.

use hyperpraw_bench::{ascii_table, quality_experiment, ExperimentConfig};
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "== Figure 4: partition quality (p = {}, scale {:.3}) ==\n",
        cfg.procs, cfg.scale
    );

    let rows = quality_experiment(&cfg, &PaperInstance::all());

    let mut csv = String::from("instance,strategy,hyperedge_cut,soed,comm_cost,imbalance\n");
    let mut table_rows = Vec::new();
    for row in &rows {
        csv.push_str(&format!(
            "{},{},{}\n",
            row.instance,
            row.strategy,
            row.quality.csv_row()
        ));
        table_rows.push(vec![
            row.instance.clone(),
            row.strategy.to_string(),
            row.quality.hyperedge_cut.to_string(),
            row.quality.soed.to_string(),
            format!("{:.0}", row.quality.comm_cost),
            format!("{:.3}", row.quality.imbalance),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "instance",
                "strategy",
                "cut (4A)",
                "SOED (4B)",
                "comm cost (4C)",
                "imbalance"
            ],
            &table_rows
        )
    );

    // Summary: per instance, is HyperPRAW-aware's comm cost below Zoltan's?
    let mut aware_wins = 0usize;
    let mut total = 0usize;
    for inst in PaperInstance::all() {
        let find = |strategy: &str| {
            rows.iter()
                .find(|r| r.instance == inst.paper_name() && r.strategy == strategy)
                .map(|r| r.quality.comm_cost)
        };
        if let (Some(z), Some(a)) = (find("zoltan-like"), find("hyperpraw-aware")) {
            total += 1;
            if a < z {
                aware_wins += 1;
            }
        }
    }
    println!(
        "HyperPRAW-aware achieves a lower partitioning communication cost than the Zoltan-like\n\
         baseline on {aware_wins}/{total} instances (the paper reports 10/10 at full scale)."
    );

    let path = cfg.write_csv("fig4_quality.csv", &csv);
    println!("wrote {}", path.display());
}
