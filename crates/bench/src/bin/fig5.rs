//! Regenerates Figure 5: runtime of the synthetic communication-bound
//! benchmark under the compared partitioning strategies (the paper's three
//! plus the memory-bounded `lowmem` streamer), with the speedup over the
//! Zoltan-like baseline annotated per instance.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin fig5
//! ```
//!
//! As in the paper, every instance is run on several simulated job
//! allocations (different scheduler placements → different bandwidth
//! matrices) with repeated benchmark iterations; the reported time is the
//! mean. Writes `fig5_runtime.csv` and `fig5_speedups.csv`.

use std::collections::BTreeMap;

use hyperpraw_bench::{ascii_table, geometric_mean, runtime_experiment, speedup, ExperimentConfig};
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let placements = 3;
    let repetitions = 2;
    println!(
        "== Figure 5: synthetic benchmark runtime (p = {}, scale {:.3}, {} placements x {} reps) ==\n",
        cfg.procs, cfg.scale, placements, repetitions
    );

    let rows = runtime_experiment(&cfg, &PaperInstance::all(), placements, repetitions);

    // Raw CSV.
    let mut csv = String::from(
        "instance,strategy,run,total_time_us,superstep_us,remote_messages,remote_bytes\n",
    );
    for row in &rows {
        csv.push_str(&format!(
            "{},{},{},{:.3},{:.3},{},{}\n",
            row.instance,
            row.strategy,
            row.run,
            row.result.total_time_us,
            row.result.superstep_us,
            row.result.remote_messages,
            row.result.remote_bytes
        ));
    }
    let path = cfg.write_csv("fig5_runtime.csv", &csv);

    // Mean per (instance, strategy).
    let mut means: BTreeMap<(String, &'static str), (f64, usize)> = BTreeMap::new();
    for row in &rows {
        let entry = means
            .entry((row.instance.clone(), row.strategy))
            .or_insert((0.0, 0));
        entry.0 += row.result.total_time_us;
        entry.1 += 1;
    }
    let mean = |inst: &str, strat: &str| -> f64 {
        means
            .iter()
            .find(|((i, s), _)| i == inst && *s == strat)
            .map(|(_, (sum, n))| sum / *n as f64)
            .unwrap_or(f64::NAN)
    };

    let mut table_rows = Vec::new();
    let mut speedups_aware = Vec::new();
    let mut speedups_basic = Vec::new();
    let mut speedups_lowmem = Vec::new();
    let mut speedup_csv = String::from(
        "instance,zoltan_us,basic_us,aware_us,lowmem_us,speedup_basic,speedup_aware,speedup_lowmem\n",
    );
    for inst in PaperInstance::all() {
        let name = inst.paper_name();
        let z = mean(name, "zoltan-like");
        let b = mean(name, "hyperpraw-basic");
        let a = mean(name, "hyperpraw-aware");
        let l = mean(name, "lowmem-sketched");
        let sb = speedup(z, b);
        let sa = speedup(z, a);
        let sl = speedup(z, l);
        speedups_basic.push(sb);
        speedups_aware.push(sa);
        speedups_lowmem.push(sl);
        table_rows.push(vec![
            name.to_string(),
            format!("{:.2}", z / 1e3),
            format!("{:.2}", b / 1e3),
            format!("{:.2}", a / 1e3),
            format!("{:.2}", l / 1e3),
            format!("{:.2}x", sb),
            format!("{:.2}x", sa),
            format!("{:.2}x", sl),
        ]);
        speedup_csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            name, z, b, a, l, sb, sa, sl
        ));
    }
    println!(
        "{}",
        ascii_table(
            &[
                "instance",
                "zoltan (ms)",
                "basic (ms)",
                "aware (ms)",
                "lowmem (ms)",
                "speedup basic",
                "speedup aware",
                "speedup lowmem",
            ],
            &table_rows
        )
    );
    println!(
        "geometric-mean speedup over the Zoltan-like baseline: basic {:.2}x, aware {:.2}x, \
         lowmem-sketched {:.2}x",
        geometric_mean(&speedups_basic),
        geometric_mean(&speedups_aware),
        geometric_mean(&speedups_lowmem)
    );
    println!(
        "max speedup of HyperPRAW-aware: {:.2}x (the paper reports 1.3x–14x on 576 ARCHER cores)",
        speedups_aware.iter().cloned().fold(0.0f64, f64::max)
    );
    let path2 = cfg.write_csv("fig5_speedups.csv", &speedup_csv);
    println!("\nwrote {}\nwrote {}", path.display(), path2.display());
}
