//! Regenerates Figure 6: the machine's bandwidth heatmap (A) next to the
//! synthetic-benchmark traffic pattern of the sparsine hypergraph under
//! Zoltan-like (B), HyperPRAW-basic (C) and HyperPRAW-aware (D) partitions.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin fig6
//! ```
//!
//! Writes `fig6a_bandwidth.csv` and `fig6{b,c,d}_traffic_<strategy>.csv`,
//! prints ASCII heatmaps, and reports how much of each strategy's traffic
//! flows over fast links — the quantitative version of the paper's visual
//! argument that only the aware variant matches the bandwidth structure.

use hyperpraw_bench::{ascii_heatmap, ExperimentConfig, Strategy, Testbed};
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "== Figure 6: traffic pattern vs bandwidth, sparsine (p = {}, scale {:.3}) ==\n",
        cfg.procs, cfg.scale
    );
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let hg = cfg.instance(PaperInstance::Sparsine);
    let bench = testbed.benchmark(&cfg);

    // A: bandwidth heatmap.
    let bw_rows = testbed.bandwidth.log10_rows();
    println!("Figure 6A — profiled bandwidth (log10 MB/s):\n");
    println!("{}", ascii_heatmap(&bw_rows, 60));
    let mut csv_a = String::new();
    for row in &bw_rows {
        csv_a.push_str(
            &row.iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv_a.push('\n');
    }
    cfg.write_csv("fig6a_bandwidth.csv", &csv_a);

    // Fast-link predicate: top bandwidth quartile.
    let threshold = testbed.bandwidth.min_off_diagonal()
        + 0.75 * (testbed.bandwidth.max_off_diagonal() - testbed.bandwidth.min_off_diagonal());

    let panels = [
        (Strategy::ZoltanLike, "fig6b_traffic_zoltan.csv", "6B"),
        (Strategy::HyperPrawBasic, "fig6c_traffic_basic.csv", "6C"),
        (Strategy::HyperPrawAware, "fig6d_traffic_aware.csv", "6D"),
    ];
    let mut fractions = Vec::new();
    for (strategy, file, label) in panels {
        let part = strategy.partition(&hg, &testbed, cfg.procs, cfg.seed);
        let result = bench.run(&hg, &part);
        let rows = result.traffic.log10_rows();
        println!(
            "Figure {label} — benchmark traffic under {} (log10 bytes):\n",
            strategy.name()
        );
        println!("{}", ascii_heatmap(&rows, 60));
        let mut csv = String::new();
        for row in &rows {
            csv.push_str(
                &row.iter()
                    .map(|v| format!("{v:.4}"))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            csv.push('\n');
        }
        cfg.write_csv(file, &csv);
        let fraction = result
            .traffic
            .fast_traffic_fraction(|i, j| testbed.bandwidth.get(i, j) >= threshold);
        fractions.push((strategy.name(), fraction, result.total_time_us));
    }

    println!("fraction of benchmark traffic carried by fast (top-quartile) links:");
    let mut csv = String::from("strategy,fast_traffic_fraction,total_time_us\n");
    for (name, fraction, time) in &fractions {
        println!(
            "  {name:<18} {:>6.1}%   (simulated time {:.2} ms)",
            fraction * 100.0,
            time / 1e3
        );
        csv.push_str(&format!("{name},{fraction:.4},{time:.3}\n"));
    }
    cfg.write_csv("fig6_fast_traffic.csv", &csv);
    println!(
        "\nExpected shape (paper §7): Zoltan and HyperPRAW-basic spread traffic uniformly, while\n\
         HyperPRAW-aware concentrates it on the fast intra-node links, mirroring panel A."
    );
}
