//! Regenerates Table 1: the statistics of the ten benchmark hypergraphs.
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin table1
//! ```
//!
//! Prints the statistics of the synthetic stand-ins generated at the
//! configured scale next to the paper's full-size targets, and writes
//! `table1.csv`.

use hyperpraw_bench::{ascii_table, ExperimentConfig};
use hyperpraw_hypergraph::generators::suite::PaperInstance;
use hyperpraw_hypergraph::HypergraphStats;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "== Table 1: hypergraph statistics (scale {:.3}) ==\n",
        cfg.scale
    );

    let mut rows = Vec::new();
    let mut csv = String::from(
        "instance,scale,vertices,hyperedges,pins,avg_cardinality,edge_vertex_ratio,\
         paper_vertices,paper_hyperedges,paper_pins,paper_avg_cardinality,paper_ratio\n",
    );
    for inst in PaperInstance::all() {
        let profile = inst.profile();
        let hg = cfg.instance(inst);
        let stats = HypergraphStats::compute(&hg);
        rows.push(vec![
            inst.paper_name().to_string(),
            stats.vertices.to_string(),
            stats.hyperedges.to_string(),
            stats.pins.to_string(),
            format!("{:.2}", stats.avg_cardinality),
            format!("{:.2}", stats.edge_vertex_ratio),
            format!("{:.2}", profile.avg_cardinality),
            format!("{:.2}", profile.edge_vertex_ratio),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{},{},{},{:.2},{:.2},{},{},{},{:.2},{:.2}\n",
            inst.paper_name(),
            cfg.scale,
            stats.vertices,
            stats.hyperedges,
            stats.pins,
            stats.avg_cardinality,
            stats.edge_vertex_ratio,
            profile.vertices,
            profile.hyperedges,
            profile.pins,
            profile.avg_cardinality,
            profile.edge_vertex_ratio
        ));
    }
    println!(
        "{}",
        ascii_table(
            &[
                "instance",
                "|V|",
                "|E|",
                "pins",
                "avg |e|",
                "|E|/|V|",
                "paper avg |e|",
                "paper |E|/|V|",
            ],
            &rows
        )
    );
    let path = cfg.write_csv("table1.csv", &csv);
    println!("wrote {}", path.display());
}
