//! Regenerates Figure 1: the mismatch between the machine's peer-to-peer
//! bandwidth (A) and the communication pattern of a naively-distributed
//! application (B).
//!
//! ```text
//! cargo run --release -p hyperpraw-bench --bin fig1
//! ```
//!
//! Writes `fig1a_bandwidth.csv` (log10 MB/s per rank pair) and
//! `fig1b_traffic.csv` (log10 bytes per rank pair for the sparsine synthetic
//! benchmark under a round-robin placement), and prints coarse ASCII
//! heatmaps plus the correlation statistics the figure illustrates.

use hyperpraw_bench::{ascii_heatmap, ExperimentConfig, Testbed};
use hyperpraw_core::baselines;
use hyperpraw_hypergraph::generators::suite::PaperInstance;

fn main() {
    let cfg = ExperimentConfig::from_env();
    // Figure 1 uses a 144-core job; honour HYPERPRAW_PROCS if set lower.
    let procs = cfg.procs.clamp(24, 144);
    println!("== Figure 1: bandwidth vs naive communication ({procs} processes) ==\n");

    let testbed = Testbed::archer(procs, 0, cfg.seed);

    // A: the profiled peer-to-peer bandwidth heatmap.
    let bw_rows = testbed.bandwidth.log10_rows();
    println!("Figure 1A — profiled bandwidth (log10 MB/s), darker = faster:\n");
    println!("{}", ascii_heatmap(&bw_rows, 60));
    let mut csv_a = String::new();
    for row in &bw_rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        csv_a.push_str(&line.join(","));
        csv_a.push('\n');
    }
    let path_a = cfg.write_csv("fig1a_bandwidth.csv", &csv_a);

    // B: the traffic of the synthetic benchmark for sparsine under a naive
    // (round-robin) placement — the "noisy" pattern of Figure 1B.
    let hg = cfg.instance(PaperInstance::Sparsine);
    let part = baselines::round_robin(&hg, procs as u32);
    let bench = testbed.benchmark(&cfg);
    let result = bench.run(&hg, &part);
    let traffic_rows = result.traffic.log10_rows();
    println!("Figure 1B — sparsine benchmark traffic under round-robin placement (log10 bytes):\n");
    println!("{}", ascii_heatmap(&traffic_rows, 60));
    let mut csv_b = String::new();
    for row in &traffic_rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        csv_b.push_str(&line.join(","));
        csv_b.push('\n');
    }
    let path_b = cfg.write_csv("fig1b_traffic.csv", &csv_b);

    // Quantify the mismatch: how much of the traffic flows over "fast" links
    // (pairs in the top bandwidth quartile)?
    let threshold = testbed.bandwidth.min_off_diagonal()
        + 0.75 * (testbed.bandwidth.max_off_diagonal() - testbed.bandwidth.min_off_diagonal());
    let fast_fraction = result
        .traffic
        .fast_traffic_fraction(|i, j| testbed.bandwidth.get(i, j) >= threshold);
    let fast_pairs = {
        let mut fast = 0usize;
        let mut total = 0usize;
        for i in 0..procs {
            for j in 0..procs {
                if i == j {
                    continue;
                }
                total += 1;
                if testbed.bandwidth.get(i, j) >= threshold {
                    fast += 1;
                }
            }
        }
        fast as f64 / total as f64
    };
    println!(
        "fast links (top bandwidth quartile) make up {:.1}% of pairs but carry only {:.1}% of \
         the naive placement's traffic — the mismatch HyperPRAW-aware closes (compare fig6).",
        fast_pairs * 100.0,
        fast_fraction * 100.0
    );
    println!("\nwrote {}\nwrote {}", path_a.display(), path_b.display());
}
