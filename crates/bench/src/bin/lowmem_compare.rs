//! Quality/memory comparison of the streaming partitioner against
//! in-memory HyperPRAW on the paper's Table 1 instances.
//!
//! For every instance it reports hyperedge cut, SOED, imbalance, the
//! connectivity-index memory and the wall-clock time of (a) in-memory
//! HyperPRAW-aware restreaming, (b) the lowmem exact-index one-pass
//! stream and (c) the lowmem sketched one-pass stream at two budgets —
//! all dispatched through the facade's unified `PartitionJob` API.
//! Writes `lowmem_compare.csv` under `HYPERPRAW_OUT`.

use hyperpraw::api::{Algorithm, PartitionJob};
use hyperpraw::report::PartitionReport;
use hyperpraw_bench::{ascii_table, ExperimentConfig, Testbed};
use hyperpraw_lowmem::MemoryBudget;

struct Row {
    instance: String,
    method: String,
    cut: u64,
    soed: u64,
    imbalance: f64,
    index_bytes: usize,
    millis: f64,
}

impl Row {
    /// Extracts a comparison row from a job report. The in-memory
    /// restreamer has no connectivity index; its working state is
    /// dominated by the CSR pin storage the caller passes as a fallback.
    fn from_report(
        instance: &str,
        method: &str,
        report: &PartitionReport,
        fallback_bytes: usize,
    ) -> Self {
        Self {
            instance: instance.to_string(),
            method: method.to_string(),
            cut: report.hyperedge_cut.unwrap_or(0),
            soed: report.soed.unwrap_or(0),
            imbalance: report.imbalance,
            index_bytes: report
                .lowmem
                .map(|s| s.index_memory_bytes)
                .unwrap_or(fallback_bytes),
            millis: report.timings.partition_secs * 1e3,
        }
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let job = |algorithm: Algorithm| {
        PartitionJob::new(algorithm)
            .cost(testbed.cost.clone())
            .seed(cfg.seed)
    };
    let mut rows: Vec<Row> = Vec::new();

    for inst in [
        hyperpraw_hypergraph::generators::suite::PaperInstance::TwoCubesSphere,
        hyperpraw_hypergraph::generators::suite::PaperInstance::AbacusShellHd,
        hyperpraw_hypergraph::generators::suite::PaperInstance::Sparsine,
    ] {
        let hg = cfg.instance(inst);
        let name = inst.paper_name();
        let pin_bytes = hg.num_pins() * 8;

        let aware = job(Algorithm::HyperPrawAware).run(&hg).unwrap();
        rows.push(Row::from_report(name, "hyperpraw-aware", &aware, pin_bytes));

        let exact = job(Algorithm::LowMemExact).run(&hg).unwrap();
        rows.push(Row::from_report(name, "lowmem-exact", &exact, 0));

        for budget_mib in [1usize, 16] {
            let sketched = job(Algorithm::LowMemSketched)
                .memory_budget(MemoryBudget::mebibytes(budget_mib))
                .run(&hg)
                .unwrap();
            rows.push(Row::from_report(
                name,
                &format!("lowmem-sketched-{budget_mib}MiB"),
                &sketched,
                0,
            ));
        }
    }

    let header = [
        "instance",
        "method",
        "cut",
        "soed",
        "imbalance",
        "index_bytes",
        "millis",
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.instance.clone(),
                r.method.clone(),
                r.cut.to_string(),
                r.soed.to_string(),
                format!("{:.4}", r.imbalance),
                r.index_bytes.to_string(),
                format!("{:.1}", r.millis),
            ]
        })
        .collect();
    println!("{}", ascii_table(&header, &table_rows));

    let mut csv = String::from("instance,method,cut,soed,imbalance,index_bytes,millis\n");
    for r in &table_rows {
        csv.push_str(&r.join(","));
        csv.push('\n');
    }
    let path = cfg.write_csv("lowmem_compare.csv", &csv);
    println!("wrote {}", path.display());
}
