//! Quality/memory comparison of the streaming partitioner against
//! in-memory HyperPRAW on the paper's Table 1 instances.
//!
//! For every instance it reports hyperedge cut, SOED, imbalance, the
//! connectivity-index memory and the wall-clock time of (a) in-memory
//! HyperPRAW-aware restreaming, (b) the lowmem exact-index one-pass
//! stream and (c) the lowmem sketched one-pass stream at two budgets.
//! Writes `lowmem_compare.csv` under `HYPERPRAW_OUT`.

use std::time::Instant;

use hyperpraw_bench::{ascii_table, ExperimentConfig, Testbed};
use hyperpraw_core::{HyperPraw, HyperPrawConfig};
use hyperpraw_hypergraph::generators::suite::PaperInstance;
use hyperpraw_hypergraph::{metrics, Hypergraph, Partition};
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};

struct Row {
    instance: String,
    method: String,
    cut: u64,
    soed: u64,
    imbalance: f64,
    index_bytes: usize,
    millis: f64,
}

fn measure(
    instance: &str,
    method: &str,
    hg: &Hypergraph,
    run: impl FnOnce() -> (Partition, usize),
) -> Row {
    let started = Instant::now();
    let (partition, index_bytes) = run();
    let millis = started.elapsed().as_secs_f64() * 1e3;
    Row {
        instance: instance.to_string(),
        method: method.to_string(),
        cut: metrics::hyperedge_cut(hg, &partition),
        soed: metrics::soed(hg, &partition),
        imbalance: partition.imbalance(hg).unwrap_or(f64::NAN),
        index_bytes,
        millis,
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let mut rows: Vec<Row> = Vec::new();

    for inst in [
        PaperInstance::TwoCubesSphere,
        PaperInstance::AbacusShellHd,
        PaperInstance::Sparsine,
    ] {
        let hg = cfg.instance(inst);
        let name = inst.paper_name();

        rows.push(measure(name, "hyperpraw-aware", &hg, || {
            let config = HyperPrawConfig::default().with_seed(cfg.seed);
            let result = HyperPraw::aware(config, testbed.cost.clone()).partition(&hg);
            // The restreamer's working state is dominated by the CSR
            // hypergraph itself: report its pin storage as "index" memory.
            (result.partition, hg.num_pins() * 8)
        }));

        rows.push(measure(name, "lowmem-exact", &hg, || {
            let result = LowMemPartitioner::new(
                LowMemConfig {
                    index: IndexKind::Exact,
                    seed: cfg.seed,
                    ..LowMemConfig::default()
                },
                testbed.cost.clone(),
            )
            .partition_hypergraph(&hg);
            (result.partition, result.index_memory_bytes)
        }));

        for budget_mib in [1usize, 16] {
            rows.push(measure(
                name,
                &format!("lowmem-sketched-{budget_mib}MiB"),
                &hg,
                || {
                    let result = LowMemPartitioner::new(
                        LowMemConfig {
                            budget: MemoryBudget::mebibytes(budget_mib),
                            index: IndexKind::Sketched,
                            seed: cfg.seed,
                            ..LowMemConfig::default()
                        },
                        testbed.cost.clone(),
                    )
                    .partition_hypergraph(&hg);
                    (result.partition, result.index_memory_bytes)
                },
            ));
        }
    }

    let header = [
        "instance",
        "method",
        "cut",
        "soed",
        "imbalance",
        "index_bytes",
        "millis",
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.instance.clone(),
                r.method.clone(),
                r.cut.to_string(),
                r.soed.to_string(),
                format!("{:.4}", r.imbalance),
                r.index_bytes.to_string(),
                format!("{:.1}", r.millis),
            ]
        })
        .collect();
    println!("{}", ascii_table(&header, &table_rows));

    let mut csv = String::from("instance,method,cut,soed,imbalance,index_bytes,millis\n");
    for r in &table_rows {
        csv.push_str(&r.join(","));
        csv.push('\n');
    }
    let path = cfg.write_csv("lowmem_compare.csv", &csv);
    println!("wrote {}", path.display());
}
