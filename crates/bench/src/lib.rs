//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the HyperPRAW paper.
//!
//! Each binary (`table1`, `fig1`, `fig3`, `fig4`, `fig5`, `fig6`,
//! `ablation`, `run_all`) uses this crate to build the benchmark instances,
//! the simulated machine, and the three partitioning strategies the paper
//! compares (Zoltan-like multilevel, HyperPRAW-basic, HyperPRAW-aware), and
//! to write CSV artefacts under `target/experiments/`.
//!
//! Experiment size is controlled by environment variables so the same
//! binaries serve both CI-sized smoke runs and full-size reproductions:
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `HYPERPRAW_SCALE` | `0.01` | linear scale of the Table 1 instances |
//! | `HYPERPRAW_PROCS` | `96`   | number of simulated compute units |
//! | `HYPERPRAW_SEED`  | `2019` | base RNG seed |
//! | `HYPERPRAW_OUT`   | `target/experiments` | output directory |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::path::{Path, PathBuf};

use hyperpraw::api::{Algorithm, PartitionJob};
use hyperpraw::report::PartitionReport;
use hyperpraw_core::{metrics::QualityReport, CostMatrix, HyperPrawConfig};
use hyperpraw_hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw_hypergraph::{Hypergraph, Partition};
use hyperpraw_netsim::{
    BenchmarkConfig, BenchmarkResult, LinkModel, RingProfiler, SyntheticBenchmark,
};
use hyperpraw_topology::{hierarchy::RankMapping, BandwidthMatrix, MachineModel};

pub use hyperpraw_core as core;
pub use hyperpraw_hypergraph as hypergraph;
pub use hyperpraw_multilevel as multilevel;
pub use hyperpraw_netsim as netsim;
pub use hyperpraw_topology as topology;

/// Experiment-wide settings, read from the environment.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Linear scale applied to the Table 1 instances.
    pub scale: f64,
    /// Number of simulated compute units (the paper uses 576; 96–144 keeps
    /// laptop runtimes in minutes while preserving multi-node heterogeneity).
    pub procs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Message payload of the synthetic benchmark.
    pub message_bytes: u64,
    /// Supersteps per synthetic-benchmark run.
    pub supersteps: usize,
    /// Output directory for CSV artefacts.
    pub output_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 0.01,
            procs: 96,
            seed: 2019,
            message_bytes: 1024,
            supersteps: 1,
            output_dir: PathBuf::from("target/experiments"),
        }
    }
}

impl ExperimentConfig {
    /// Reads the configuration from the `HYPERPRAW_*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("HYPERPRAW_SCALE") {
            if let Ok(x) = v.parse() {
                cfg.scale = x;
            }
        }
        if let Ok(v) = std::env::var("HYPERPRAW_PROCS") {
            if let Ok(x) = v.parse() {
                cfg.procs = x;
            }
        }
        if let Ok(v) = std::env::var("HYPERPRAW_SEED") {
            if let Ok(x) = v.parse() {
                cfg.seed = x;
            }
        }
        if let Ok(v) = std::env::var("HYPERPRAW_OUT") {
            cfg.output_dir = PathBuf::from(v);
        }
        cfg
    }

    /// Suite configuration matching this experiment configuration.
    pub fn suite(&self) -> SuiteConfig {
        SuiteConfig {
            scale: self.scale,
            seed: self.seed,
            min_vertices: 4 * self.procs,
        }
    }

    /// Generates one paper instance at the configured scale.
    pub fn instance(&self, inst: PaperInstance) -> Hypergraph {
        inst.generate(&self.suite())
    }

    /// Writes a CSV artefact and returns its path.
    pub fn write_csv(&self, name: &str, content: &str) -> PathBuf {
        fs::create_dir_all(&self.output_dir).expect("create output directory");
        let path = self.output_dir.join(name);
        fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        path
    }
}

/// The simulated machine environment: the architecture, a rank placement,
/// the link model the benchmark runs on, the *profiled* bandwidth and the
/// derived cost matrix.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// The machine model (ARCHER-like by default).
    pub machine: MachineModel,
    /// Rank-to-unit placement of this "job allocation".
    pub mapping: RankMapping,
    /// The link model used by the synthetic benchmark.
    pub link: LinkModel,
    /// The profiled peer-to-peer bandwidth (what HyperPRAW-aware sees).
    pub bandwidth: BandwidthMatrix,
    /// The normalised communication-cost matrix.
    pub cost: CostMatrix,
}

impl Testbed {
    /// Builds an ARCHER-like testbed with `procs` compute units. `placement`
    /// selects the job allocation (0 = block, otherwise a scattered
    /// allocation seeded by the value), emulating the paper's repeated runs
    /// on different scheduler allocations.
    pub fn archer(procs: usize, placement: u64, seed: u64) -> Self {
        let machine = MachineModel::archer_like(procs);
        let mapping = if placement == 0 {
            RankMapping::block(procs)
        } else {
            RankMapping::scattered(procs, placement)
        };
        // Build the per-rank link model: rank pair (a, b) communicates at the
        // speed of the hardware units hosting them.
        let nominal = BandwidthMatrix::from_machine(&machine, 0.05, seed);
        let mut data = vec![0.0f64; procs * procs];
        for a in 0..procs {
            for b in 0..procs {
                data[a * procs + b] = if a == b {
                    nominal.get(a, b)
                } else {
                    nominal.get(mapping.unit_of(a), mapping.unit_of(b))
                };
            }
        }
        let rank_bandwidth = BandwidthMatrix::from_raw(procs, data);
        let link = LinkModel::from_bandwidth(rank_bandwidth, 1.2);
        // HyperPRAW never sees the machine: it profiles the link model.
        let bandwidth = RingProfiler {
            seed: seed ^ 0xABCD,
            ..RingProfiler::default()
        }
        .profile(&link);
        let cost = CostMatrix::from_bandwidth(&bandwidth);
        Self {
            machine,
            mapping,
            link,
            bandwidth,
            cost,
        }
    }

    /// The synthetic benchmark runner for this testbed.
    pub fn benchmark(&self, cfg: &ExperimentConfig) -> SyntheticBenchmark {
        SyntheticBenchmark::new(
            self.link.clone(),
            BenchmarkConfig {
                message_bytes: cfg.message_bytes,
                supersteps: cfg.supersteps,
                ..BenchmarkConfig::default()
            },
        )
    }
}

/// The partitioning strategies compared throughout the evaluation: the
/// paper's three, plus the memory-bounded streaming partitioner so the
/// quality/memory trade-off lands in the experiment CSVs by default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Multilevel recursive bisection (the Zoltan baseline).
    ZoltanLike,
    /// HyperPRAW with a uniform cost matrix.
    HyperPrawBasic,
    /// HyperPRAW with the profiled cost matrix.
    HyperPrawAware,
    /// The `hyperpraw-lowmem` sketched streaming partitioner with the
    /// profiled cost matrix (architecture-aware, budgeted memory).
    LowMemSketched,
}

impl Strategy {
    /// Every compared strategy, in plotting order (the paper's three
    /// first).
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::ZoltanLike,
            Strategy::HyperPrawBasic,
            Strategy::HyperPrawAware,
            Strategy::LowMemSketched,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::ZoltanLike => "zoltan-like",
            Strategy::HyperPrawBasic => "hyperpraw-basic",
            Strategy::HyperPrawAware => "hyperpraw-aware",
            Strategy::LowMemSketched => "lowmem-sketched",
        }
    }

    /// The facade [`Algorithm`] this strategy dispatches to.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            Strategy::ZoltanLike => Algorithm::MultilevelBaseline,
            Strategy::HyperPrawBasic => Algorithm::HyperPrawBasic,
            Strategy::HyperPrawAware => Algorithm::HyperPrawAware,
            Strategy::LowMemSketched => Algorithm::LowMemSketched,
        }
    }

    /// The [`PartitionJob`] this strategy runs on the given testbed: every
    /// strategy is handed the profiled cost matrix (the oblivious
    /// algorithms ignore it for partitioning but are evaluated against it,
    /// as in the paper's Figure 4C).
    pub fn job(&self, testbed: &Testbed, procs: usize, seed: u64) -> PartitionJob {
        PartitionJob::new(self.algorithm())
            .partitions(procs as u32)
            .cost(testbed.cost.clone())
            .seed(seed)
    }

    /// Runs this strategy on the given testbed, returning the full report.
    pub fn run(
        &self,
        hg: &Hypergraph,
        testbed: &Testbed,
        procs: usize,
        seed: u64,
    ) -> PartitionReport {
        self.job(testbed, procs, seed)
            .run(hg)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }

    /// Partitions a hypergraph with this strategy on the given testbed.
    pub fn partition(
        &self,
        hg: &Hypergraph,
        testbed: &Testbed,
        procs: usize,
        seed: u64,
    ) -> Partition {
        self.run(hg, testbed, procs, seed).partition
    }
}

/// Runs HyperPRAW-aware through the unified job API and returns the full
/// report (with history), used by the Figure 3 and ablation binaries.
pub fn run_hyperpraw(
    hg: &Hypergraph,
    cost: CostMatrix,
    config: HyperPrawConfig,
) -> PartitionReport {
    PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost)
        .hyperpraw_config(config)
        .run(hg)
        .expect("valid bench configuration")
}

/// One row of the Figure 4 quality comparison.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Instance name.
    pub instance: String,
    /// Strategy name.
    pub strategy: &'static str,
    /// Quality metrics.
    pub quality: QualityReport,
}

/// One row of the Figure 5 runtime comparison.
#[derive(Clone, Debug)]
pub struct RuntimeRow {
    /// Instance name.
    pub instance: String,
    /// Strategy name.
    pub strategy: &'static str,
    /// Placement / repetition index.
    pub run: usize,
    /// Benchmark outcome.
    pub result: BenchmarkResult,
}

/// Renders a coarse ASCII heatmap of a matrix of values (higher = darker),
/// used to eyeball the Figure 1 / Figure 6 heatmaps in the terminal.
#[allow(clippy::needless_range_loop)] // 2-D block averaging reads clearest with indices
pub fn ascii_heatmap(rows: &[Vec<f64>], width: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    if rows.is_empty() {
        return String::new();
    }
    let n = rows.len();
    let step = n.div_ceil(width).max(1);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for row in rows {
        for &v in row {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    let range = (max - min).max(1e-12);
    let mut out = String::new();
    for bi in (0..n).step_by(step) {
        for bj in (0..n).step_by(step) {
            // Average the block.
            let mut sum = 0.0;
            let mut count = 0;
            for i in bi..(bi + step).min(n) {
                for j in bj..(bj + step).min(n) {
                    if rows[i][j].is_finite() {
                        sum += rows[i][j];
                        count += 1;
                    }
                }
            }
            let v = if count > 0 { sum / count as f64 } else { min };
            let idx = (((v - min) / range) * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Renders an ASCII line of a series (for Figure 3 style convergence plots).
pub fn ascii_series(series: &[(usize, f64)], width: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let min = series.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    let max = series
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let step = series.len().div_ceil(width).max(1);
    let mut out = String::new();
    for chunk in series.chunks(step) {
        let avg = chunk.iter().map(|(_, v)| *v).sum::<f64>() / chunk.len() as f64;
        let idx = (((avg - min) / range) * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[idx.min(BARS.len() - 1)]);
    }
    out
}

/// Formats a fixed-width text table from a header and rows.
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Speedup of `baseline` over `candidate` (e.g. Zoltan time / aware time);
/// values above 1.0 mean the candidate is faster.
pub fn speedup(baseline_us: f64, candidate_us: f64) -> f64 {
    if candidate_us <= 0.0 {
        return f64::INFINITY;
    }
    baseline_us / candidate_us
}

/// Runs the full quality comparison (Figure 4) for a set of instances.
pub fn quality_experiment(cfg: &ExperimentConfig, instances: &[PaperInstance]) -> Vec<QualityRow> {
    let testbed = Testbed::archer(cfg.procs, 0, cfg.seed);
    let mut rows = Vec::new();
    for inst in instances {
        let hg = cfg.instance(*inst);
        for strategy in Strategy::all() {
            // The job evaluates every strategy against the same profiled
            // cost matrix, so the report's metrics are the Figure 4 rows.
            let report = strategy.run(&hg, &testbed, cfg.procs, cfg.seed);
            rows.push(QualityRow {
                instance: inst.paper_name().to_string(),
                strategy: strategy.name(),
                quality: QualityReport {
                    hyperedge_cut: report.hyperedge_cut.unwrap_or(0),
                    soed: report.soed.unwrap_or(0),
                    comm_cost: report.comm_cost.unwrap_or(f64::NAN),
                    imbalance: report.imbalance,
                },
            });
        }
    }
    rows
}

/// Runs the full runtime comparison (Figure 5) for a set of instances:
/// `placements` different job allocations, `repetitions` benchmark runs per
/// allocation.
pub fn runtime_experiment(
    cfg: &ExperimentConfig,
    instances: &[PaperInstance],
    placements: usize,
    repetitions: usize,
) -> Vec<RuntimeRow> {
    let mut rows = Vec::new();
    for inst in instances {
        let hg = cfg.instance(*inst);
        for placement in 0..placements.max(1) {
            let testbed = Testbed::archer(cfg.procs, placement as u64, cfg.seed + placement as u64);
            let bench = testbed.benchmark(cfg);
            for strategy in Strategy::all() {
                let part = strategy.partition(&hg, &testbed, cfg.procs, cfg.seed);
                for rep in 0..repetitions.max(1) {
                    let result = bench.run(&hg, &part);
                    rows.push(RuntimeRow {
                        instance: inst.paper_name().to_string(),
                        strategy: strategy.name(),
                        run: placement * repetitions.max(1) + rep,
                        result,
                    });
                }
            }
        }
    }
    rows
}

/// Geometric-mean helper used when summarising per-instance speedups.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Ensures a path's parent directory exists (for nested CSV outputs).
pub fn ensure_parent(path: &Path) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create parent directory");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_reasonable() {
        let cfg = ExperimentConfig::default();
        assert!(cfg.scale > 0.0 && cfg.scale <= 1.0);
        assert!(cfg.procs >= 2);
        assert_eq!(cfg.suite().scale, cfg.scale);
    }

    #[test]
    fn testbed_builds_consistent_sizes() {
        let tb = Testbed::archer(24, 0, 1);
        assert_eq!(tb.cost.num_units(), 24);
        assert_eq!(tb.bandwidth.num_units(), 24);
        assert_eq!(tb.link.num_units(), 24);
        assert!(!tb.cost.is_uniform());
    }

    #[test]
    fn different_placements_change_the_cost_matrix() {
        let a = Testbed::archer(24, 0, 1);
        let b = Testbed::archer(24, 3, 1);
        assert_ne!(a.cost, b.cost);
    }

    #[test]
    fn strategies_produce_valid_partitions() {
        let cfg = ExperimentConfig {
            scale: 0.002,
            procs: 8,
            ..ExperimentConfig::default()
        };
        let hg = cfg.instance(PaperInstance::TwoCubesSphere);
        let tb = Testbed::archer(cfg.procs, 0, cfg.seed);
        for s in Strategy::all() {
            let part = s.partition(&hg, &tb, cfg.procs, cfg.seed);
            assert_eq!(part.num_parts() as usize, cfg.procs, "{}", s.name());
            assert_eq!(part.num_vertices(), hg.num_vertices());
        }
    }

    #[test]
    fn ascii_helpers_produce_output() {
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let hm = ascii_heatmap(&rows, 2);
        assert_eq!(hm.lines().count(), 2);
        let series = vec![(1, 10.0), (2, 5.0), (3, 1.0)];
        assert!(!ascii_series(&series, 3).is_empty());
        let table = ascii_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(table.contains("a"));
        assert!(table.contains('1'));
    }

    #[test]
    fn speedup_and_geometric_mean() {
        assert!((speedup(10.0, 2.0) - 5.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
