//! Per-pair latency/bandwidth link model.

use hyperpraw_topology::{BandwidthMatrix, MachineModel};

/// Converts MB/s to bytes per microsecond.
fn mbs_to_bytes_per_us(mbs: f64) -> f64 {
    // 1 MB/s = 1e6 bytes / 1e6 us = 1 byte/us.
    mbs
}

/// The point-to-point communication model used by the simulator: sending
/// `bytes` from unit `i` to unit `j` takes
/// `latency_us(i,j) + bytes / bandwidth(i,j)`.
///
/// The model is deliberately simple (a LogGP-style α/β model without
/// per-message overhead terms): the paper's benchmark is dominated by the
/// bandwidth term and by endpoint serialisation, both of which the
/// simulator captures.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModel {
    n: usize,
    /// Bytes per microsecond for each pair, row-major.
    rate: Vec<f64>,
    /// One-way latency in microseconds for each pair, row-major.
    latency: Vec<f64>,
    /// The bandwidth matrix the model was built from (MB/s).
    bandwidth: BandwidthMatrix,
}

impl LinkModel {
    /// Builds a link model directly from a machine description. Bandwidths
    /// get multiplicative log-normal noise of sigma `noise_sigma`; latencies
    /// use the machine's per-level values.
    pub fn from_machine(model: &MachineModel, noise_sigma: f64, seed: u64) -> Self {
        let bandwidth = BandwidthMatrix::from_machine(model, noise_sigma, seed);
        let n = model.num_units();
        let mut latency = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                latency[i * n + j] = model.link_latency_us(i, j);
            }
        }
        Self::from_parts(bandwidth, latency)
    }

    /// Builds a link model from an already-profiled bandwidth matrix and a
    /// single latency value applied to every distinct pair.
    pub fn from_bandwidth(bandwidth: BandwidthMatrix, latency_us: f64) -> Self {
        let n = bandwidth.num_units();
        let mut latency = vec![latency_us; n * n];
        for i in 0..n {
            latency[i * n + i] = 0.0;
        }
        Self::from_parts(bandwidth, latency)
    }

    /// A homogeneous network.
    pub fn uniform(n: usize, bandwidth_mbs: f64, latency_us: f64) -> Self {
        Self::from_bandwidth(BandwidthMatrix::uniform(n, bandwidth_mbs), latency_us)
    }

    fn from_parts(bandwidth: BandwidthMatrix, latency: Vec<f64>) -> Self {
        let n = bandwidth.num_units();
        let mut rate = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                rate[i * n + j] = mbs_to_bytes_per_us(bandwidth.get(i, j));
            }
        }
        Self {
            n,
            rate,
            latency,
            bandwidth,
        }
    }

    /// Number of compute units.
    pub fn num_units(&self) -> usize {
        self.n
    }

    /// Underlying bandwidth matrix (MB/s).
    pub fn bandwidth(&self) -> &BandwidthMatrix {
        &self.bandwidth
    }

    /// Bandwidth between `i` and `j` in bytes per microsecond.
    #[inline]
    pub fn rate_bytes_per_us(&self, i: usize, j: usize) -> f64 {
        self.rate[i * self.n + j]
    }

    /// One-way latency between `i` and `j` in microseconds.
    #[inline]
    pub fn latency_us(&self, i: usize, j: usize) -> f64 {
        self.latency[i * self.n + j]
    }

    /// Pure wire-transfer time (no queueing) of a message of `bytes` bytes
    /// from `i` to `j`, in microseconds. Zero for self-messages.
    #[inline]
    pub fn transfer_time_us(&self, i: usize, j: usize, bytes: u64) -> f64 {
        if i == j {
            return 0.0;
        }
        self.latency_us(i, j) + bytes as f64 / self.rate_bytes_per_us(i, j)
    }

    /// The NIC occupancy (serialisation time) of a message: the time the
    /// sending and receiving endpoints are busy with it, excluding the wire
    /// latency.
    #[inline]
    pub fn occupancy_us(&self, i: usize, j: usize, bytes: u64) -> f64 {
        if i == j {
            0.0
        } else {
            bytes as f64 / self.rate_bytes_per_us(i, j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let link = LinkModel::uniform(4, 100.0, 2.0); // 100 bytes/us, 2us latency
        let t = link.transfer_time_us(0, 1, 1000);
        assert!((t - (2.0 + 10.0)).abs() < 1e-9);
        assert_eq!(link.transfer_time_us(2, 2, 1_000_000), 0.0);
    }

    #[test]
    fn archer_links_are_faster_within_a_socket() {
        let model = MachineModel::archer_like(48);
        let link = LinkModel::from_machine(&model, 0.0, 1);
        let near = link.transfer_time_us(0, 1, 1 << 20);
        let far = link.transfer_time_us(0, 47, 1 << 20);
        assert!(
            near < far,
            "intra-socket {near} should beat inter-blade {far}"
        );
    }

    #[test]
    fn occupancy_excludes_latency() {
        let link = LinkModel::uniform(2, 50.0, 5.0);
        assert!((link.occupancy_us(0, 1, 500) - 10.0).abs() < 1e-9);
        assert!((link.transfer_time_us(0, 1, 500) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn from_bandwidth_keeps_profiled_values() {
        let mut bw = BandwidthMatrix::uniform(3, 200.0);
        bw.set_symmetric(0, 2, 20.0);
        let link = LinkModel::from_bandwidth(bw, 1.0);
        assert!(link.rate_bytes_per_us(0, 2) < link.rate_bytes_per_us(0, 1));
        assert_eq!(link.latency_us(1, 1), 0.0);
        assert_eq!(link.latency_us(0, 2), 1.0);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let model = MachineModel::archer_like(24);
        let link = LinkModel::from_machine(&model, 0.05, 3);
        for (i, j) in [(0usize, 1usize), (0, 13), (0, 23)] {
            assert!(link.transfer_time_us(i, j, 1 << 12) < link.transfer_time_us(i, j, 1 << 20));
        }
    }
}
