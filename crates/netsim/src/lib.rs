//! A discrete-event message-passing network simulator — the substrate that
//! replaces MPI-on-ARCHER in this reproduction.
//!
//! The paper evaluates partitionings by running a *null-compute synthetic
//! benchmark* on 576 ARCHER cores: every hyperedge generates messages
//! between its pins whenever they live in different partitions, and the
//! wall-clock time of that purely communication-bound program is the figure
//! of merit (Figure 5). Since we do not have ARCHER, this crate simulates the
//! message passing:
//!
//! * [`LinkModel`] — per-pair latency/bandwidth, derived from a
//!   [`hyperpraw_topology::MachineModel`] or a profiled
//!   [`hyperpraw_topology::BandwidthMatrix`],
//! * [`EventDrivenSim`] — an event-driven simulator with per-endpoint
//!   send/receive serialisation, used for fine-grained rounds and by the
//!   ring profiler,
//! * [`RingProfiler`] — the mpiGraph substitute: measures peer-to-peer
//!   bandwidth by timing simulated ring exchanges, returning the
//!   [`hyperpraw_topology::BandwidthMatrix`] HyperPRAW-aware consumes,
//! * [`SyntheticBenchmark`] — the paper's benchmark: builds the hyperedge
//!   traffic, aggregates it into a [`TrafficMatrix`] and computes the
//!   communication-bound makespan,
//! * [`collective`] — cost models for barrier/allreduce synchronisation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod link;
mod message;
mod trace;

pub mod benchmark;
pub mod collective;
pub mod ring_profiler;

pub use benchmark::{BenchmarkConfig, BenchmarkResult, SyntheticBenchmark};
pub use engine::{EventDrivenSim, RoundOutcome};
pub use link::LinkModel;
pub use message::Message;
pub use ring_profiler::RingProfiler;
pub use trace::TrafficMatrix;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        BenchmarkConfig, BenchmarkResult, EventDrivenSim, LinkModel, Message, RingProfiler,
        SyntheticBenchmark, TrafficMatrix,
    };
}
