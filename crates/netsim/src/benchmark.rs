//! The paper's synthetic null-compute benchmark (§5.3), simulated.
//!
//! The benchmark is a purely communication-bound program driven by the input
//! hypergraph and a vertex-to-partition assignment: *for each hyperedge, a
//! message is sent to and from each pair of member vertices that live in
//! different partitions*; this is repeated every superstep with a global
//! synchronisation in between. There is no computation, so the run time is
//! entirely determined by how the partitioning maps traffic onto the
//! machine's links — exactly the quantity HyperPRAW-aware optimises.
//!
//! Instead of materialising every individual message (the full-size
//! instances would generate hundreds of millions), the benchmark aggregates
//! traffic into a [`TrafficMatrix`] and computes the makespan with the same
//! endpoint-serialisation assumptions as [`crate::EventDrivenSim`]:
//!
//! * a unit's send port transmits its outgoing bytes sequentially at the
//!   per-destination link rate (plus one latency per message),
//! * its receive port does the same for incoming bytes,
//! * a superstep ends when the slowest unit has finished both, plus a
//!   barrier.
//!
//! The equivalence of the two models on small instances is asserted by the
//! integration tests.

use hyperpraw_hypergraph::{Hypergraph, Partition};

use crate::{collective, LinkModel, TrafficMatrix};

/// Configuration of the synthetic benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkConfig {
    /// Payload of each point-to-point message, in bytes.
    pub message_bytes: u64,
    /// Number of supersteps (the paper runs two iterations per job; each
    /// iteration sweeps all hyperedges once).
    pub supersteps: usize,
    /// Whether the send and receive ports of a unit operate concurrently
    /// (full duplex) or share the NIC (half duplex).
    pub full_duplex: bool,
    /// Include a barrier between supersteps.
    pub barrier: bool,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        Self {
            message_bytes: 1024,
            supersteps: 1,
            full_duplex: true,
            barrier: true,
        }
    }
}

/// The outcome of a benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkResult {
    /// Total simulated wall-clock time, in microseconds.
    pub total_time_us: f64,
    /// Time of a single superstep (excluding the barrier), µs.
    pub superstep_us: f64,
    /// Barrier time per superstep, µs.
    pub barrier_us: f64,
    /// Peer-to-peer traffic of one superstep.
    pub traffic: TrafficMatrix,
    /// Number of remote point-to-point messages per superstep.
    pub remote_messages: u64,
    /// Remote bytes per superstep.
    pub remote_bytes: u64,
    /// Per-unit communication time (the slowest defines the superstep), µs.
    pub per_unit_time_us: Vec<f64>,
}

impl BenchmarkResult {
    /// Total time in seconds (convenience for reporting).
    pub fn total_time_s(&self) -> f64 {
        self.total_time_us / 1e6
    }

    /// Index and time of the busiest compute unit.
    pub fn bottleneck_unit(&self) -> (usize, f64) {
        self.per_unit_time_us
            .iter()
            .cloned()
            .enumerate()
            .fold((0, 0.0), |acc, (i, t)| if t > acc.1 { (i, t) } else { acc })
    }
}

/// The synthetic benchmark runner.
#[derive(Clone, Debug)]
pub struct SyntheticBenchmark {
    link: LinkModel,
    config: BenchmarkConfig,
}

impl SyntheticBenchmark {
    /// Creates a benchmark over the given link model.
    pub fn new(link: LinkModel, config: BenchmarkConfig) -> Self {
        Self { link, config }
    }

    /// The link model in use.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// The configuration in use.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// Builds the per-superstep traffic matrix induced by a partitioning:
    /// for every hyperedge and every ordered pair of its pins assigned to
    /// different units, one message of `message_bytes` bytes.
    pub fn traffic_for(&self, hg: &Hypergraph, partition: &Partition) -> TrafficMatrix {
        let p = self.link.num_units();
        assert_eq!(
            partition.num_parts() as usize,
            p,
            "partition count must equal the number of compute units"
        );
        assert_eq!(
            partition.num_vertices(),
            hg.num_vertices(),
            "partition must cover the hypergraph"
        );
        let mut traffic = TrafficMatrix::new(p);
        let mut parts_in_edge: Vec<u32> = Vec::new();
        for e in hg.hyperedges() {
            let pins = hg.pins(e);
            if pins.len() < 2 {
                continue;
            }
            parts_in_edge.clear();
            parts_in_edge.extend(pins.iter().map(|&v| partition.part_of(v)));
            // Count pins per partition within this hyperedge, then emit
            // aggregate counts for each ordered partition pair: every pin
            // exchanges a message with every pin in a different partition.
            // (Equivalent to iterating all ordered pin pairs, but O(k + q²)
            // with q = distinct partitions instead of O(k²).)
            let mut distinct: Vec<(u32, u64)> = Vec::new();
            for &part in &parts_in_edge {
                match distinct.iter_mut().find(|(q, _)| *q == part) {
                    Some((_, c)) => *c += 1,
                    None => distinct.push((part, 1)),
                }
            }
            if distinct.len() < 2 {
                continue;
            }
            for &(pa, ca) in &distinct {
                for &(pb, cb) in &distinct {
                    if pa == pb {
                        continue;
                    }
                    traffic.record_many(
                        pa as usize,
                        pb as usize,
                        self.config.message_bytes,
                        ca * cb,
                    );
                }
            }
        }
        traffic
    }

    /// Computes the communication time of each unit for one superstep given
    /// the traffic matrix.
    fn per_unit_times(&self, traffic: &TrafficMatrix) -> Vec<f64> {
        let p = self.link.num_units();
        let mut times = vec![0.0f64; p];
        for (unit, time) in times.iter_mut().enumerate() {
            let mut send = 0.0f64;
            let mut recv = 0.0f64;
            for other in 0..p {
                if other == unit {
                    continue;
                }
                let out_bytes = traffic.bytes(unit, other);
                if out_bytes > 0 {
                    send += out_bytes as f64 / self.link.rate_bytes_per_us(unit, other)
                        + traffic.messages(unit, other) as f64 * self.link.latency_us(unit, other);
                }
                let in_bytes = traffic.bytes(other, unit);
                if in_bytes > 0 {
                    recv += in_bytes as f64 / self.link.rate_bytes_per_us(other, unit)
                        + traffic.messages(other, unit) as f64 * self.link.latency_us(other, unit);
                }
            }
            *time = if self.config.full_duplex {
                send.max(recv)
            } else {
                send + recv
            };
        }
        times
    }

    /// Runs the benchmark for a hypergraph under a partitioning and returns
    /// the simulated timings.
    pub fn run(&self, hg: &Hypergraph, partition: &Partition) -> BenchmarkResult {
        let traffic = self.traffic_for(hg, partition);
        let per_unit = self.per_unit_times(&traffic);
        let superstep = per_unit.iter().cloned().fold(0.0, f64::max);
        let barrier = if self.config.barrier {
            collective::barrier_us(&self.link)
        } else {
            0.0
        };
        let total = (superstep + barrier) * self.config.supersteps.max(1) as f64;
        let remote_messages = {
            let p = traffic.num_units();
            let mut m = 0u64;
            for i in 0..p {
                for j in 0..p {
                    if i != j {
                        m += traffic.messages(i, j);
                    }
                }
            }
            m
        };
        let remote_bytes = traffic.remote_bytes();
        BenchmarkResult {
            total_time_us: total,
            superstep_us: superstep,
            barrier_us: barrier,
            traffic,
            remote_messages,
            remote_bytes,
            per_unit_time_us: per_unit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::HypergraphBuilder;
    use hyperpraw_topology::MachineModel;

    /// 4 vertices, 2 hyperedges: {0,1}, {2,3}.
    fn pairs_hg() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([2u32, 3]);
        b.build()
    }

    #[test]
    fn internal_hyperedges_generate_no_traffic() {
        let hg = pairs_hg();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(2, 100.0, 1.0),
            BenchmarkConfig::default(),
        );
        // {0,1} on unit 0 and {2,3} on unit 1: nothing crosses.
        let part = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let result = bench.run(&hg, &part);
        assert_eq!(result.remote_messages, 0);
        assert_eq!(result.superstep_us, 0.0);
        // Only the barrier remains.
        assert!(result.total_time_us > 0.0);
        assert_eq!(result.total_time_us, result.barrier_us);
    }

    #[test]
    fn cut_hyperedges_generate_bidirectional_traffic() {
        let hg = pairs_hg();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(2, 100.0, 1.0),
            BenchmarkConfig {
                message_bytes: 100,
                ..BenchmarkConfig::default()
            },
        );
        // Split both hyperedges across the two units.
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        let result = bench.run(&hg, &part);
        // Each cut pair sends one message each way: 2 edges * 2 directions.
        assert_eq!(result.remote_messages, 4);
        assert_eq!(result.remote_bytes, 400);
        assert_eq!(result.traffic.bytes(0, 1), 200);
        assert_eq!(result.traffic.bytes(1, 0), 200);
        assert!(result.superstep_us > 0.0);
    }

    #[test]
    fn traffic_scales_with_hyperedge_spread() {
        // One hyperedge of 4 pins.
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1, 2, 3]);
        let hg = b.build();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(4, 100.0, 1.0),
            BenchmarkConfig::default(),
        );
        // Two partitions of two pins: each pin talks to 2 remote pins -> 4*2 = 8.
        let two_way = Partition::from_assignment(vec![0, 0, 1, 1], 4).unwrap();
        // Fully scattered: each pin talks to 3 remote pins -> 12.
        let scattered = Partition::from_assignment(vec![0, 1, 2, 3], 4).unwrap();
        let r2 = bench.run(&hg, &two_way);
        let r4 = bench.run(&hg, &scattered);
        assert_eq!(r2.remote_messages, 8);
        assert_eq!(r4.remote_messages, 12);
        assert!(r4.remote_bytes > r2.remote_bytes);
    }

    #[test]
    fn aggregated_pair_counts_match_pairwise_enumeration() {
        // Random-ish small case, checked against a brute-force pair loop.
        let mut b = HypergraphBuilder::new(9);
        b.add_hyperedge([0u32, 1, 2, 3, 4]);
        b.add_hyperedge([4u32, 5, 6]);
        b.add_hyperedge([6u32, 7, 8, 0]);
        let hg = b.build();
        let part = Partition::from_assignment(vec![0, 1, 2, 0, 1, 2, 0, 1, 2], 3).unwrap();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(3, 100.0, 1.0),
            BenchmarkConfig {
                message_bytes: 1,
                ..BenchmarkConfig::default()
            },
        );
        let traffic = bench.traffic_for(&hg, &part);

        let mut expected = [0u64; 9];
        for e in hg.hyperedges() {
            let pins = hg.pins(e);
            for &a in pins {
                for &b in pins {
                    if a == b {
                        continue;
                    }
                    let (pa, pb) = (part.part_of(a) as usize, part.part_of(b) as usize);
                    if pa != pb {
                        expected[pa * 3 + pb] += 1;
                    }
                }
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(traffic.bytes(i, j), expected[i * 3 + j], "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn slow_links_make_the_same_traffic_slower() {
        let hg = pairs_hg();
        let model = MachineModel::archer_like(48);
        let link = LinkModel::from_machine(&model, 0.0, 1);
        let bench = SyntheticBenchmark::new(
            link,
            BenchmarkConfig {
                message_bytes: 1 << 16,
                barrier: false,
                ..BenchmarkConfig::default()
            },
        );
        // Same cut structure, but placed on fast (same-socket) vs slow
        // (different-blade) unit pairs.
        let fast = Partition::from_fn(4, 48, |v| if v % 2 == 0 { 0 } else { 1 });
        let slow = Partition::from_fn(4, 48, |v| if v % 2 == 0 { 0 } else { 40 });
        let rf = bench.run(&hg, &fast);
        let rs = bench.run(&hg, &slow);
        assert_eq!(rf.remote_messages, rs.remote_messages);
        assert!(
            rs.superstep_us > 2.0 * rf.superstep_us,
            "slow {} vs fast {}",
            rs.superstep_us,
            rf.superstep_us
        );
    }

    #[test]
    fn supersteps_multiply_total_time() {
        let hg = pairs_hg();
        let link = LinkModel::uniform(2, 100.0, 1.0);
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        let one = SyntheticBenchmark::new(
            link.clone(),
            BenchmarkConfig {
                supersteps: 1,
                ..BenchmarkConfig::default()
            },
        )
        .run(&hg, &part);
        let five = SyntheticBenchmark::new(
            link,
            BenchmarkConfig {
                supersteps: 5,
                ..BenchmarkConfig::default()
            },
        )
        .run(&hg, &part);
        assert!((five.total_time_us - 5.0 * one.total_time_us).abs() < 1e-9);
    }

    #[test]
    fn half_duplex_is_never_faster_than_full_duplex() {
        let hg = pairs_hg();
        let part = Partition::from_assignment(vec![0, 1, 1, 0], 2).unwrap();
        let link = LinkModel::uniform(2, 50.0, 2.0);
        let full = SyntheticBenchmark::new(
            link.clone(),
            BenchmarkConfig {
                full_duplex: true,
                ..BenchmarkConfig::default()
            },
        )
        .run(&hg, &part);
        let half = SyntheticBenchmark::new(
            link,
            BenchmarkConfig {
                full_duplex: false,
                ..BenchmarkConfig::default()
            },
        )
        .run(&hg, &part);
        assert!(half.superstep_us >= full.superstep_us);
    }

    #[test]
    fn bottleneck_unit_is_reported() {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2, 3, 4, 5]);
        let hg = b.build();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(3, 100.0, 1.0),
            BenchmarkConfig::default(),
        );
        // Unit 0 hosts 4 of the 6 pins -> it exchanges the most data.
        let part = Partition::from_assignment(vec![0, 0, 0, 0, 1, 2], 3).unwrap();
        let result = bench.run(&hg, &part);
        let (unit, t) = result.bottleneck_unit();
        assert_eq!(unit, 0);
        assert!(t > 0.0);
        assert!((result.total_time_s() - result.total_time_us / 1e6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must equal the number of compute units")]
    fn mismatched_partition_count_is_rejected() {
        let hg = pairs_hg();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(4, 100.0, 1.0),
            BenchmarkConfig::default(),
        );
        let part = Partition::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        bench.run(&hg, &part);
    }
}
