//! Peer-to-peer traffic accounting.

/// Bytes and message counts exchanged between every pair of compute units.
///
/// This is the quantity plotted in the paper's Figure 1B and Figure 6B/C/D:
/// the per-pair communication activity of the synthetic benchmark under a
/// given partitioning. Comparing it with the bandwidth heatmap shows how well
/// the partitioner aligned traffic with fast links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficMatrix {
    n: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
}

impl TrafficMatrix {
    /// Creates an empty traffic matrix for `n` units.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            bytes: vec![0; n * n],
            messages: vec![0; n * n],
        }
    }

    /// Number of compute units.
    pub fn num_units(&self) -> usize {
        self.n
    }

    /// Records one message of `bytes` bytes from `src` to `dst`.
    #[inline]
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        self.record_many(src, dst, bytes, 1);
    }

    /// Records `count` messages of `bytes` bytes each from `src` to `dst`.
    #[inline]
    pub fn record_many(&mut self, src: usize, dst: usize, bytes: u64, count: u64) {
        let idx = src * self.n + dst;
        self.bytes[idx] += bytes * count;
        self.messages[idx] += count;
    }

    /// Bytes sent from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Number of messages sent from `src` to `dst`.
    pub fn messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.n + dst]
    }

    /// Total bytes over the whole matrix.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Bytes sent by unit `src` to anyone else (excluding local copies).
    pub fn sent_by(&self, src: usize) -> u64 {
        (0..self.n)
            .filter(|&dst| dst != src)
            .map(|dst| self.bytes(src, dst))
            .sum()
    }

    /// Bytes received by unit `dst` from anyone else.
    pub fn received_by(&self, dst: usize) -> u64 {
        (0..self.n)
            .filter(|&src| src != dst)
            .map(|src| self.bytes(src, dst))
            .sum()
    }

    /// Remote (off-diagonal) bytes only.
    pub fn remote_bytes(&self) -> u64 {
        (0..self.n).map(|i| self.sent_by(i)).sum()
    }

    /// Rows of `log10(1 + bytes)`, as plotted in the paper's activity
    /// heatmaps.
    pub fn log10_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| ((1 + self.bytes(i, j)) as f64).log10())
                    .collect()
            })
            .collect()
    }

    /// Fraction of remote bytes that travel over pairs for which `fast(i,j)`
    /// returns `true`. Used to quantify how well a partitioning exploits
    /// fast interconnections (the paper's §7 discussion of Figure 6).
    pub fn fast_traffic_fraction(&self, fast: impl Fn(usize, usize) -> bool) -> f64 {
        let mut fast_bytes = 0u64;
        let mut total = 0u64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let b = self.bytes(i, j);
                total += b;
                if fast(i, j) {
                    fast_bytes += b;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            fast_bytes as f64 / total as f64
        }
    }

    /// Serialises the byte matrix as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n).map(|j| self.bytes(i, j).to_string()).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_bytes_and_counts() {
        let mut t = TrafficMatrix::new(3);
        t.record(0, 1, 100);
        t.record(0, 1, 50);
        t.record_many(2, 0, 10, 5);
        assert_eq!(t.bytes(0, 1), 150);
        assert_eq!(t.messages(0, 1), 2);
        assert_eq!(t.bytes(2, 0), 50);
        assert_eq!(t.messages(2, 0), 5);
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.total_messages(), 7);
    }

    #[test]
    fn sent_and_received_exclude_local_traffic() {
        let mut t = TrafficMatrix::new(2);
        t.record(0, 0, 1000); // local copy
        t.record(0, 1, 10);
        t.record(1, 0, 20);
        assert_eq!(t.sent_by(0), 10);
        assert_eq!(t.received_by(0), 20);
        assert_eq!(t.remote_bytes(), 30);
        assert_eq!(t.total_bytes(), 1030);
    }

    #[test]
    fn fast_traffic_fraction_matches_manual_value() {
        let mut t = TrafficMatrix::new(4);
        t.record(0, 1, 70); // "fast" pair
        t.record(0, 3, 30); // "slow" pair
        let frac = t.fast_traffic_fraction(|i, j| (i, j) == (0, 1) || (i, j) == (1, 0));
        assert!((frac - 0.7).abs() < 1e-12);
        let empty = TrafficMatrix::new(4);
        assert_eq!(empty.fast_traffic_fraction(|_, _| true), 0.0);
    }

    #[test]
    fn log_rows_and_csv_have_expected_shape() {
        let mut t = TrafficMatrix::new(3);
        t.record(1, 2, 999);
        let rows = t.log10_rows();
        assert_eq!(rows.len(), 3);
        assert!((rows[1][2] - 3.0).abs() < 0.01);
        assert_eq!(rows[0][0], 0.0);
        assert_eq!(t.to_csv().lines().count(), 3);
    }
}
