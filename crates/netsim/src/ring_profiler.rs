//! Simulated peer-to-peer bandwidth profiling (the mpiGraph substitute).
//!
//! The paper profiles the machine *before* partitioning by arranging MPI
//! processes in a ring and timing message exchanges between every pair of
//! offsets (the mpiGraph tool from LLNL). HyperPRAW then never looks at the
//! machine directly — only at the profiled bandwidth matrix. We reproduce
//! that separation: the profiler only calls into the event-driven simulator
//! (send a message, observe how long delivery took) and reconstructs the
//! bandwidth from the observed times, including optional measurement noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperpraw_topology::BandwidthMatrix;

use crate::LinkModel;

/// Configuration of the ring bandwidth profiler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RingProfiler {
    /// Message payload used for each probe, in bytes (mpiGraph defaults to
    /// large messages so the measurement is bandwidth-dominated).
    pub message_bytes: u64,
    /// Number of repetitions per pair; the reported bandwidth is the mean.
    pub repeats: usize,
    /// Multiplicative measurement noise (standard deviation in log-space)
    /// applied per observation, emulating timer jitter and network
    /// background traffic.
    pub noise_sigma: f64,
    /// RNG seed for the measurement noise.
    pub seed: u64,
}

impl Default for RingProfiler {
    fn default() -> Self {
        Self {
            message_bytes: 1 << 20, // 1 MiB probes
            repeats: 2,
            noise_sigma: 0.02,
            seed: 7,
        }
    }
}

impl RingProfiler {
    /// Profiles the network reachable through `link` and returns the
    /// measured (symmetrised) peer-to-peer bandwidth matrix in MB/s.
    ///
    /// For every ring offset `d in 1..p`, all processes simultaneously send
    /// one probe to `(rank + d) mod p` — one simulated round per offset, as
    /// mpiGraph does — and the bandwidth for the pair is reconstructed from
    /// the probe's delivery time.
    pub fn profile(&self, link: &LinkModel) -> BandwidthMatrix {
        let p = link.num_units();
        assert!(p >= 2, "profiling needs at least two processes");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut measured = vec![0.0f64; p * p];

        for offset in 1..p {
            for _ in 0..self.repeats.max(1) {
                // One round per offset: every rank sends one probe to
                // rank+offset. A ring pattern has no endpoint contention, so
                // the delivery time of each probe is exactly the uncontended
                // single-message time of the event-driven simulator (see the
                // `single_probe_matches_event_sim` test), which is what the
                // per-pair timer in mpiGraph observes.
                for src in 0..p {
                    let dst = (src + offset) % p;
                    let elapsed = link.transfer_time_us(src, dst, self.message_bytes);
                    let noise = if self.noise_sigma > 0.0 {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        (z * self.noise_sigma).exp()
                    } else {
                        1.0
                    };
                    // MB/s == bytes/us in these units.
                    let bw = (self.message_bytes as f64 / elapsed) * noise;
                    measured[src * p + dst] += bw / self.repeats.max(1) as f64;
                }
            }
        }

        // Symmetrise (mpiGraph reports send and receive bandwidth separately;
        // the paper uses a single symmetric cost, so we average).
        let mut data = vec![0.0f64; p * p];
        for i in 0..p {
            for j in 0..p {
                if i == j {
                    continue;
                }
                data[i * p + j] = 0.5 * (measured[i * p + j] + measured[j * p + i]);
            }
        }
        let max = data.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        for i in 0..p {
            data[i * p + i] = max * 4.0;
        }
        BandwidthMatrix::from_raw(p, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_topology::{CostMatrix, MachineModel};

    #[test]
    fn profiling_recovers_tier_structure() {
        let model = MachineModel::archer_like(48);
        let link = LinkModel::from_machine(&model, 0.0, 1);
        let profiler = RingProfiler {
            noise_sigma: 0.0,
            repeats: 1,
            ..RingProfiler::default()
        };
        let bw = profiler.profile(&link);
        // Intra-socket measured faster than inter-blade.
        assert!(bw.get(0, 1) > 2.0 * bw.get(0, 40));
        // Symmetric.
        assert!((bw.get(3, 20) - bw.get(20, 3)).abs() < 1e-9);
    }

    #[test]
    fn measured_bandwidth_is_close_to_nominal_for_large_probes() {
        let model = MachineModel::archer_like(24);
        let link = LinkModel::from_machine(&model, 0.0, 1);
        let profiler = RingProfiler {
            message_bytes: 8 << 20,
            repeats: 1,
            noise_sigma: 0.0,
            seed: 0,
        };
        let bw = profiler.profile(&link);
        // With an 8 MiB probe the latency term is negligible, so the measured
        // bandwidth should be within a few percent of the nominal one.
        let nominal = link.bandwidth().get(0, 1);
        let measured = bw.get(0, 1);
        assert!(
            (measured - nominal).abs() / nominal < 0.05,
            "measured {measured} vs nominal {nominal}"
        );
    }

    #[test]
    fn noise_perturbs_measurements_deterministically() {
        let link = LinkModel::uniform(8, 500.0, 1.0);
        let a = RingProfiler {
            noise_sigma: 0.1,
            seed: 1,
            ..RingProfiler::default()
        }
        .profile(&link);
        let b = RingProfiler {
            noise_sigma: 0.1,
            seed: 1,
            ..RingProfiler::default()
        }
        .profile(&link);
        let c = RingProfiler {
            noise_sigma: 0.1,
            seed: 2,
            ..RingProfiler::default()
        }
        .profile(&link);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profiled_cost_matrix_ranks_links_like_the_machine() {
        let model = MachineModel::archer_like(96);
        let link = LinkModel::from_machine(&model, 0.0, 3);
        let bw = RingProfiler {
            noise_sigma: 0.01,
            ..RingProfiler::default()
        }
        .profile(&link);
        let cost = CostMatrix::from_bandwidth(&bw);
        // Fast (intra-socket) pairs must be cheaper than slow (inter-group).
        assert!(cost.get(0, 1) < cost.get(0, 90));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn profiling_a_single_process_panics() {
        let link = LinkModel::uniform(1, 100.0, 1.0);
        RingProfiler::default().profile(&link);
    }

    #[test]
    fn single_probe_matches_event_sim() {
        // The profiler's per-probe time model must agree with the
        // event-driven simulator for an uncontended message.
        use crate::{EventDrivenSim, Message};
        let model = MachineModel::archer_like(24);
        let link = LinkModel::from_machine(&model, 0.0, 5);
        let mut sim = EventDrivenSim::new(link.clone());
        let bytes = 1 << 20;
        let out = sim.simulate_round(&[Message::new(0, 17, bytes)]);
        assert!((out.makespan_us - link.transfer_time_us(0, 17, bytes)).abs() < 1e-9);
    }
}
