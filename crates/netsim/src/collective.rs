//! Cost models for collective operations.
//!
//! The synthetic benchmark synchronises all processes between supersteps
//! (the paper's benchmark loops over hyperedges and exchanges messages every
//! time step). These closed-form models follow the classic log-tree
//! formulations used by MPI cost analyses.

use crate::LinkModel;

/// Worst-case (slowest-link) one-way latency in the network, µs.
fn max_latency(link: &LinkModel) -> f64 {
    let n = link.num_units();
    let mut max = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                max = max.max(link.latency_us(i, j));
            }
        }
    }
    max
}

/// Worst-case byte transfer rate (bytes/µs) over the slowest link.
fn min_rate(link: &LinkModel) -> f64 {
    let n = link.num_units();
    let mut min = f64::INFINITY;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                min = min.min(link.rate_bytes_per_us(i, j));
            }
        }
    }
    if min.is_finite() {
        min
    } else {
        1.0
    }
}

/// Time for a dissemination barrier across all units: `⌈log2 p⌉` rounds of
/// one worst-case latency each.
pub fn barrier_us(link: &LinkModel) -> f64 {
    let p = link.num_units();
    if p <= 1 {
        return 0.0;
    }
    (p as f64).log2().ceil() * max_latency(link)
}

/// Time for a recursive-doubling allreduce of `bytes` bytes.
pub fn allreduce_us(link: &LinkModel, bytes: u64) -> f64 {
    let p = link.num_units();
    if p <= 1 {
        return 0.0;
    }
    let rounds = (p as f64).log2().ceil();
    rounds * (max_latency(link) + bytes as f64 / min_rate(link))
}

/// Time for a binomial-tree broadcast of `bytes` bytes from one root.
pub fn broadcast_us(link: &LinkModel, bytes: u64) -> f64 {
    // Same asymptotic shape as allreduce for this cost model.
    allreduce_us(link, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_topology::MachineModel;

    #[test]
    fn single_process_collectives_are_free() {
        let link = LinkModel::uniform(1, 100.0, 1.0);
        assert_eq!(barrier_us(&link), 0.0);
        assert_eq!(allreduce_us(&link, 1024), 0.0);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let l8 = LinkModel::uniform(8, 100.0, 2.0);
        let l64 = LinkModel::uniform(64, 100.0, 2.0);
        assert!((barrier_us(&l8) - 6.0).abs() < 1e-9); // 3 rounds * 2us
        assert!((barrier_us(&l64) - 12.0).abs() < 1e-9); // 6 rounds * 2us
    }

    #[test]
    fn allreduce_includes_bandwidth_term() {
        let link = LinkModel::uniform(4, 100.0, 1.0);
        let small = allreduce_us(&link, 100);
        let large = allreduce_us(&link, 10_000);
        assert!(large > small);
        // 2 rounds * (1 + 100/100) = 4.
        assert!((small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_networks_pay_the_slowest_link() {
        let model = MachineModel::archer_like(48);
        let hetero = LinkModel::from_machine(&model, 0.0, 1);
        let homo = LinkModel::uniform(48, 8_000.0, 0.4);
        assert!(barrier_us(&hetero) > barrier_us(&homo));
    }

    #[test]
    fn broadcast_matches_allreduce_model() {
        let link = LinkModel::uniform(16, 200.0, 1.5);
        assert_eq!(broadcast_us(&link, 512), allreduce_us(&link, 512));
    }
}
