//! Event-driven simulation of a round of point-to-point messages.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{LinkModel, Message, TrafficMatrix};

/// Total-ordering wrapper for event timestamps (microseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Stamp(f64);

impl Eq for Stamp {}

impl PartialOrd for Stamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The outcome of simulating one communication round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundOutcome {
    /// Time at which the last message was fully delivered (µs).
    pub makespan_us: f64,
    /// Per-unit time spent with the send side busy (µs).
    pub send_busy_us: Vec<f64>,
    /// Per-unit time spent with the receive side busy (µs).
    pub recv_busy_us: Vec<f64>,
    /// Number of remote messages delivered.
    pub delivered: u64,
}

impl RoundOutcome {
    /// The busiest unit's total (send + receive) busy time.
    pub fn max_busy_us(&self) -> f64 {
        self.send_busy_us
            .iter()
            .zip(&self.recv_busy_us)
            .map(|(s, r)| s + r)
            .fold(0.0, f64::max)
    }
}

/// An event-driven point-to-point network simulator.
///
/// Each unit has one send port and one receive port; a message occupies the
/// sender's port and then the receiver's port for `bytes / bandwidth`
/// microseconds (endpoint serialisation), and is delivered one wire latency
/// after the transfer finishes. Messages posted by the same sender are
/// processed in the order given, mirroring an MPI rank posting sends in a
/// loop, but different senders progress concurrently.
///
/// This level of detail is enough to reproduce the behaviour the paper's
/// benchmark measures: the run time is dominated by the units whose traffic
/// crosses slow links and by endpoint congestion on heavily-communicating
/// units.
#[derive(Clone, Debug)]
pub struct EventDrivenSim {
    link: LinkModel,
    trace: TrafficMatrix,
}

impl EventDrivenSim {
    /// Creates a simulator over the given link model.
    pub fn new(link: LinkModel) -> Self {
        let n = link.num_units();
        Self {
            link,
            trace: TrafficMatrix::new(n),
        }
    }

    /// The link model in use.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Cumulative traffic recorded over all simulated rounds.
    pub fn trace(&self) -> &TrafficMatrix {
        &self.trace
    }

    /// Resets the cumulative traffic trace.
    pub fn reset_trace(&mut self) {
        self.trace = TrafficMatrix::new(self.link.num_units());
    }

    /// Simulates one communication round in which every message in
    /// `messages` is posted at time zero. Local messages (src == dst) are
    /// recorded in the trace but cost nothing.
    pub fn simulate_round(&mut self, messages: &[Message]) -> RoundOutcome {
        let n = self.link.num_units();
        // Group messages by sender preserving posting order.
        let mut per_sender: Vec<Vec<&Message>> = vec![Vec::new(); n];
        let mut delivered = 0u64;
        for m in messages {
            assert!(m.src < n && m.dst < n, "message endpoint out of range");
            self.trace.record(m.src, m.dst, m.bytes);
            if m.is_local() {
                continue;
            }
            per_sender[m.src].push(m);
            delivered += 1;
        }

        let mut send_free = vec![0.0f64; n];
        let mut recv_free = vec![0.0f64; n];
        let mut send_busy = vec![0.0f64; n];
        let mut recv_busy = vec![0.0f64; n];
        let mut next_idx = vec![0usize; n];
        let mut makespan = 0.0f64;

        // Priority queue of (earliest possible start, sender).
        let mut queue: BinaryHeap<Reverse<(Stamp, usize)>> = BinaryHeap::new();
        for (s, sends) in per_sender.iter().enumerate() {
            if !sends.is_empty() {
                queue.push(Reverse((Stamp(0.0), s)));
            }
        }

        while let Some(Reverse((Stamp(ready), s))) = queue.pop() {
            let idx = next_idx[s];
            if idx >= per_sender[s].len() {
                continue;
            }
            let m = per_sender[s][idx];
            // The transfer can start when both endpoints are free.
            let start = ready.max(send_free[s]).max(recv_free[m.dst]);
            if start > ready + 1e-12 {
                // Another endpoint is still busy; retry when it frees up.
                queue.push(Reverse((Stamp(start), s)));
                continue;
            }
            let occupancy = self.link.occupancy_us(m.src, m.dst, m.bytes);
            let end = start + occupancy;
            let arrival = end + self.link.latency_us(m.src, m.dst);
            send_free[s] = end;
            recv_free[m.dst] = end;
            send_busy[s] += occupancy;
            recv_busy[m.dst] += occupancy;
            makespan = makespan.max(arrival);
            next_idx[s] += 1;
            if next_idx[s] < per_sender[s].len() {
                queue.push(Reverse((Stamp(end), s)));
            }
        }

        RoundOutcome {
            makespan_us: makespan,
            send_busy_us: send_busy,
            recv_busy_us: recv_busy,
            delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sim(n: usize) -> EventDrivenSim {
        // 100 bytes/us, 1us latency.
        EventDrivenSim::new(LinkModel::uniform(n, 100.0, 1.0))
    }

    #[test]
    fn single_message_takes_latency_plus_transfer() {
        let mut sim = uniform_sim(2);
        let out = sim.simulate_round(&[Message::new(0, 1, 1000)]);
        assert!((out.makespan_us - 11.0).abs() < 1e-9);
        assert_eq!(out.delivered, 1);
        assert!((out.send_busy_us[0] - 10.0).abs() < 1e-9);
        assert!((out.recv_busy_us[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sends_from_one_rank_are_serialised() {
        let mut sim = uniform_sim(3);
        let out = sim.simulate_round(&[Message::new(0, 1, 1000), Message::new(0, 2, 1000)]);
        // Second send cannot start before the first finishes: 10 + 10 + 1.
        assert!((out.makespan_us - 21.0).abs() < 1e-9);
    }

    #[test]
    fn receives_at_one_rank_are_serialised() {
        let mut sim = uniform_sim(3);
        let out = sim.simulate_round(&[Message::new(1, 0, 1000), Message::new(2, 0, 1000)]);
        // Both senders are free, but the receiver can only take one at a time.
        assert!((out.makespan_us - 21.0).abs() < 1e-9);
        assert!((out.recv_busy_us[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_pairs_proceed_in_parallel() {
        let mut sim = uniform_sim(4);
        let out = sim.simulate_round(&[Message::new(0, 1, 1000), Message::new(2, 3, 1000)]);
        assert!((out.makespan_us - 11.0).abs() < 1e-9);
    }

    #[test]
    fn local_messages_cost_nothing_but_are_traced() {
        let mut sim = uniform_sim(2);
        let out = sim.simulate_round(&[Message::new(0, 0, 123_456)]);
        assert_eq!(out.makespan_us, 0.0);
        assert_eq!(out.delivered, 0);
        assert_eq!(sim.trace().bytes(0, 0), 123_456);
    }

    #[test]
    fn slow_links_dominate_the_makespan() {
        let model = hyperpraw_topology::MachineModel::archer_like(48);
        let link = LinkModel::from_machine(&model, 0.0, 1);
        let mut sim = EventDrivenSim::new(link);
        let near = sim
            .simulate_round(&[Message::new(0, 1, 1 << 20)])
            .makespan_us;
        let far = sim
            .simulate_round(&[Message::new(0, 40, 1 << 20)])
            .makespan_us;
        assert!(far > 2.0 * near, "inter-blade {far} vs intra-socket {near}");
    }

    #[test]
    fn empty_round_has_zero_makespan() {
        let mut sim = uniform_sim(4);
        let out = sim.simulate_round(&[]);
        assert_eq!(out.makespan_us, 0.0);
        assert_eq!(out.delivered, 0);
        assert_eq!(out.max_busy_us(), 0.0);
    }

    #[test]
    fn trace_accumulates_across_rounds_until_reset() {
        let mut sim = uniform_sim(2);
        sim.simulate_round(&[Message::new(0, 1, 10)]);
        sim.simulate_round(&[Message::new(0, 1, 10)]);
        assert_eq!(sim.trace().bytes(0, 1), 20);
        sim.reset_trace();
        assert_eq!(sim.trace().total_bytes(), 0);
    }

    #[test]
    fn makespan_is_at_least_the_busiest_endpoint() {
        let mut sim = uniform_sim(5);
        let msgs: Vec<Message> = (1..5).map(|d| Message::new(0, d, 500)).collect();
        let out = sim.simulate_round(&msgs);
        assert!(out.makespan_us >= out.max_busy_us() - 1e-9);
    }
}
