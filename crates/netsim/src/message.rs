//! Point-to-point message descriptors.

/// A point-to-point message between two compute units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending compute unit (rank).
    pub src: usize,
    /// Receiving compute unit (rank).
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Application tag (used only for tracing/debugging).
    pub tag: u32,
}

impl Message {
    /// Creates a message with tag 0.
    pub fn new(src: usize, dst: usize, bytes: u64) -> Self {
        Self {
            src,
            dst,
            bytes,
            tag: 0,
        }
    }

    /// Creates a message with an explicit tag.
    pub fn with_tag(src: usize, dst: usize, bytes: u64, tag: u32) -> Self {
        Self {
            src,
            dst,
            bytes,
            tag,
        }
    }

    /// `true` when source and destination are the same unit (a local copy
    /// that never touches the network).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let m = Message::new(1, 2, 64);
        assert_eq!((m.src, m.dst, m.bytes, m.tag), (1, 2, 64, 0));
        let t = Message::with_tag(3, 3, 8, 7);
        assert_eq!(t.tag, 7);
        assert!(t.is_local());
        assert!(!m.is_local());
    }
}
