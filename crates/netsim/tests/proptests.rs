//! Property-based tests for the network simulator.

use proptest::prelude::*;

use hyperpraw_hypergraph::{HypergraphBuilder, Partition};
use hyperpraw_netsim::{
    BenchmarkConfig, EventDrivenSim, LinkModel, Message, RingProfiler, SyntheticBenchmark,
};
use hyperpraw_topology::{CostMatrix, MachineModel};

fn arb_messages(n: usize) -> impl Strategy<Value = Vec<Message>> {
    prop::collection::vec(
        (0..n, 0..n, 1u64..10_000).prop_map(|(s, d, b)| Message::new(s, d, b)),
        0..40,
    )
}

proptest! {
    #[test]
    fn makespan_is_nonnegative_and_bounded_by_serial_time(
        msgs in arb_messages(8),
    ) {
        let link = LinkModel::uniform(8, 100.0, 1.0);
        let mut sim = EventDrivenSim::new(link.clone());
        let out = sim.simulate_round(&msgs);
        prop_assert!(out.makespan_us >= 0.0);
        // Upper bound: running every message back-to-back serially.
        let serial: f64 = msgs
            .iter()
            .map(|m| link.transfer_time_us(m.src, m.dst, m.bytes))
            .sum();
        prop_assert!(out.makespan_us <= serial + 1e-6);
        // Lower bound: the single slowest message.
        let slowest = msgs
            .iter()
            .map(|m| link.transfer_time_us(m.src, m.dst, m.bytes))
            .fold(0.0, f64::max);
        prop_assert!(out.makespan_us >= slowest - 1e-6);
    }

    #[test]
    fn adding_a_message_increases_busy_time_by_its_occupancy(
        msgs in arb_messages(6),
        extra_src in 0usize..6,
        extra_dst in 0usize..6,
        extra_bytes in 1u64..10_000,
    ) {
        // Note: the *makespan* is not monotone under message addition (greedy
        // schedules exhibit Graham-style anomalies: an extra message can
        // change which transfer wins a contended receiver and shorten the
        // critical path), but the total endpoint occupancy is — it grows by
        // exactly the occupancy of the added message.
        let link = LinkModel::uniform(6, 100.0, 1.0);
        let total_busy = |out: &hyperpraw_netsim::RoundOutcome| -> f64 {
            out.send_busy_us.iter().sum::<f64>() + out.recv_busy_us.iter().sum::<f64>()
        };
        let base = EventDrivenSim::new(link.clone()).simulate_round(&msgs);
        let mut bigger = msgs.clone();
        let extra = Message::new(extra_src, extra_dst, extra_bytes);
        bigger.push(extra);
        let after = EventDrivenSim::new(link.clone()).simulate_round(&bigger);
        let expected_increase = 2.0 * link.occupancy_us(extra.src, extra.dst, extra.bytes);
        prop_assert!((total_busy(&after) - total_busy(&base) - expected_increase).abs() < 1e-6);
        // The makespan is still bounded below by the slowest single message.
        let slowest = bigger
            .iter()
            .map(|m| link.transfer_time_us(m.src, m.dst, m.bytes))
            .fold(0.0, f64::max);
        prop_assert!(after.makespan_us >= slowest - 1e-6);
    }

    #[test]
    fn benchmark_traffic_is_symmetric_in_totals(
        assignment in prop::collection::vec(0u32..4, 12..=12),
        bytes in 1u64..4096,
    ) {
        // Hyperedges of consecutive triples over 12 vertices.
        let mut b = HypergraphBuilder::new(12);
        for start in 0..10u32 {
            b.add_hyperedge([start, start + 1, start + 2]);
        }
        let hg = b.build();
        let part = Partition::from_assignment(assignment, 4).unwrap();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(4, 100.0, 1.0),
            BenchmarkConfig { message_bytes: bytes, ..BenchmarkConfig::default() },
        );
        let traffic = bench.traffic_for(&hg, &part);
        // The benchmark sends "to and from" every cut pair, so the traffic
        // matrix is symmetric.
        for i in 0..4 {
            for j in 0..4 {
                prop_assert_eq!(traffic.bytes(i, j), traffic.bytes(j, i));
            }
        }
        // And every byte is a multiple of the message size.
        prop_assert_eq!(traffic.remote_bytes() % bytes, 0);
    }

    #[test]
    fn benchmark_time_is_zero_iff_no_remote_traffic(
        assignment in prop::collection::vec(0u32..3, 9..=9),
    ) {
        let mut b = HypergraphBuilder::new(9);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([3u32, 4, 5]);
        b.add_hyperedge([6u32, 7, 8]);
        let hg = b.build();
        let part = Partition::from_assignment(assignment, 3).unwrap();
        let bench = SyntheticBenchmark::new(
            LinkModel::uniform(3, 100.0, 1.0),
            BenchmarkConfig { barrier: false, ..BenchmarkConfig::default() },
        );
        let result = bench.run(&hg, &part);
        if result.remote_messages == 0 {
            prop_assert_eq!(result.total_time_us, 0.0);
        } else {
            prop_assert!(result.total_time_us > 0.0);
        }
    }

    #[test]
    fn profiled_costs_stay_normalised(
        units in 2usize..40,
        noise in 0.0f64..0.1,
        seed in 0u64..500,
    ) {
        let model = MachineModel::archer_like(units);
        let link = LinkModel::from_machine(&model, 0.0, seed);
        let profiler = RingProfiler { noise_sigma: noise, seed, repeats: 1, message_bytes: 1 << 18 };
        let bw = profiler.profile(&link);
        let cost = CostMatrix::from_bandwidth(&bw);
        for i in 0..units {
            for j in 0..units {
                let c = cost.get(i, j);
                if i == j {
                    prop_assert_eq!(c, 0.0);
                } else {
                    prop_assert!((1.0 - 1e-9..=2.0 + 1e-9).contains(&c));
                }
            }
        }
    }
}
