//! Partitioning over the compressed chunked stream is bit-identical to
//! the uncompressed transpose stream and to the in-memory driver, for
//! every lowmem variant: exact and sketched indexes, single pass,
//! multi-pass with sketch rebuilds, and threaded BSP.

use std::io::Cursor;

use hyperpraw_hypergraph::generators::mesh::{mesh_hypergraph, MeshConfig};
use hyperpraw_hypergraph::io::hmetis;
use hyperpraw_hypergraph::io::stream::{stream_hgr_file, StreamOptions};
use hyperpraw_lowmem::{IndexKind, LowMemConfig, LowMemPartitioner, MemoryBudget};
use hyperpraw_storage::{
    write_hypergraph, CachingSource, CompressedReader, MemorySource, ReadMode,
};
use hyperpraw_topology::{BandwidthMatrix, CostMatrix, MachineModel};

const P: usize = 12;
const SEED: u64 = 23;

fn cost() -> CostMatrix {
    let machine = MachineModel::archer_like(P);
    CostMatrix::from_bandwidth(&BandwidthMatrix::from_machine(&machine, 0.05, SEED))
}

fn variants() -> Vec<(&'static str, LowMemConfig)> {
    let base = LowMemConfig {
        budget: MemoryBudget::bytes(256 << 10),
        seed: SEED,
        ..LowMemConfig::default()
    };
    vec![
        (
            "exact_one_pass",
            LowMemConfig {
                index: IndexKind::Exact,
                ..base.clone()
            },
        ),
        (
            "sketched_one_pass",
            LowMemConfig {
                index: IndexKind::Sketched,
                ..base.clone()
            },
        ),
        (
            "sketched_multi_pass_rebuild",
            LowMemConfig {
                index: IndexKind::Sketched,
                passes: 3,
                rebuild_sketches: true,
                ..base.clone()
            },
        ),
        (
            "sketched_bsp_threads",
            LowMemConfig {
                index: IndexKind::Sketched,
                passes: 2,
                rebuild_sketches: true,
                threads: 3,
                sync_interval: 64,
                ..base
            },
        ),
    ]
}

#[test]
fn compressed_streams_are_bit_identical_to_transpose_and_in_memory() {
    let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
    let cost = cost();

    // Encode once, small blocks so many block boundaries are crossed.
    let mut cursor = Cursor::new(Vec::new());
    write_hypergraph(&hg, &mut cursor, 2048).unwrap();
    let bytes = cursor.into_inner();

    // The transpose path streams the same hypergraph from an .hgr file.
    let hgr = std::env::temp_dir().join(format!("hpz-equivalence-{}.hgr", std::process::id()));
    hmetis::write_hgr_file(&hg, &hgr).unwrap();
    let options = StreamOptions {
        buffer_bytes: 64 << 10,
        spill_dir: None,
    };

    for (name, config) in variants() {
        let partitioner = LowMemPartitioner::new(config, cost.clone());
        let in_memory = partitioner.partition_hypergraph(&hg);

        let mut transpose = stream_hgr_file(&hgr, &options).unwrap();
        let from_transpose = partitioner.partition(&mut transpose).unwrap();

        let reader = CompressedReader::open(MemorySource::new(bytes.clone())).unwrap();
        let mut sync_stream = reader.stream(ReadMode::Sync);
        let from_sync = partitioner.partition(&mut sync_stream).unwrap();

        let mut prefetch_stream = reader.stream(ReadMode::Prefetch);
        let from_prefetch = partitioner.partition(&mut prefetch_stream).unwrap();

        let cached = CachingSource::new(MemorySource::new(bytes.clone()), 4096, 6);
        let cached_reader = CompressedReader::open(cached).unwrap();
        let mut cached_stream = cached_reader.stream(ReadMode::Prefetch);
        let from_cached = partitioner.partition(&mut cached_stream).unwrap();

        assert_eq!(
            from_transpose.partition, in_memory.partition,
            "{name}: transpose vs in-memory"
        );
        assert_eq!(
            from_sync.partition, in_memory.partition,
            "{name}: compressed sync vs in-memory"
        );
        assert_eq!(
            from_prefetch.partition, in_memory.partition,
            "{name}: compressed prefetch vs in-memory"
        );
        assert_eq!(
            from_cached.partition, in_memory.partition,
            "{name}: compressed cached prefetch vs in-memory"
        );
        assert_eq!(from_sync.passes, in_memory.passes, "{name}: pass count");
        assert_eq!(
            from_prefetch.restreamed, in_memory.restreamed,
            "{name}: restream count"
        );
    }
    std::fs::remove_file(&hgr).ok();
}
