//! The `.hpz` read path under injected storage faults: every fault a
//! [`FaultySource`] can produce must surface as a structured
//! [`FormatError`] (or, for silently corrupted payloads, a decode error)
//! — never a panic, and never silently wrong pins.

use std::io::Cursor;

use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw_storage::{
    write_hypergraph, CompressedReader, FaultySource, FormatError, MemorySource,
};

fn compressed_bytes() -> Vec<u8> {
    let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
    let mut out = Cursor::new(Vec::new());
    write_hypergraph(&hg, &mut out, 512).unwrap();
    out.into_inner()
}

#[test]
fn clean_wrapper_is_transparent() {
    let bytes = compressed_bytes();
    let clean = CompressedReader::open(MemorySource::new(bytes.clone())).unwrap();
    let wrapped = CompressedReader::open(FaultySource::new(MemorySource::new(bytes))).unwrap();
    assert_eq!(clean.meta(), wrapped.meta());
    for b in 0..clean.num_blocks() {
        assert_eq!(
            clean.decode_block(b).unwrap().nets,
            wrapped.decode_block(b).unwrap().nets
        );
    }
}

#[test]
fn failed_reads_surface_as_errors_not_panics() {
    let bytes = compressed_bytes();
    // Fail each of the first few reads in turn: whether the trailer, the
    // index or a block read dies, open/decode must answer Err.
    for n in 0..4 {
        let source = FaultySource::new(MemorySource::new(bytes.clone())).fail_read(n);
        let outcome = CompressedReader::open(source).and_then(|r| {
            for b in 0..r.num_blocks() {
                r.decode_block(b)?;
            }
            Ok(())
        });
        assert!(outcome.is_err(), "injected failure at read {n} undetected");
    }
}

#[test]
fn short_reads_of_the_payload_are_detected_structurally() {
    let bytes = compressed_bytes();
    // Reads 0 and 1 are the trailer and index; later reads fetch block
    // payloads. A short block read leaves garbage in the buffer tail,
    // which the strict varint decoding must reject.
    let source = FaultySource::new(MemorySource::new(bytes)).short_read(2);
    let outcome = CompressedReader::open(source).and_then(|r| {
        for b in 0..r.num_blocks() {
            r.decode_block(b)?;
        }
        Ok(())
    });
    match outcome {
        Err(FormatError::Corrupt(_)) | Err(FormatError::Io(_)) => {}
        other => panic!("short read slipped through: {other:?}"),
    }
}

#[test]
fn bit_flips_in_block_payloads_do_not_crash_the_decoder() {
    let bytes = compressed_bytes();
    let clean = CompressedReader::open(MemorySource::new(bytes.clone())).unwrap();
    let expected: Vec<_> = (0..clean.num_blocks())
        .map(|b| clean.decode_block(b).unwrap().nets)
        .collect();
    // Flip one byte inside the first block's payload (blocks start right
    // after the 40-byte header). Decoding must either error or produce a
    // different pin list — a flip that decodes to the clean pins would
    // mean the corruption went undetected *and* unexpressed.
    let entry = clean.blocks()[0];
    assert!(entry.len > 0);
    let source = FaultySource::new(MemorySource::new(bytes)).flip_bits(entry.offset, 0x40);
    let reader = CompressedReader::open(source).unwrap();
    match reader.decode_block(0) {
        Err(_) => {}
        Ok(block) => assert_ne!(block.nets, expected[0], "flip produced identical nets"),
    }
}
