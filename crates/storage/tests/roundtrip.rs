//! Format round-trip: convert → read back reproduces the exact pin
//! lists, over random hypergraphs, block sizes, caching budgets, and
//! both read modes.

use std::io::Cursor;

use hyperpraw_hypergraph::io::stream::{InMemoryVertexStream, VertexRecord, VertexStream};
use hyperpraw_hypergraph::{Hypergraph, HypergraphBuilder};
use hyperpraw_storage::{
    write_hypergraph, ByteSource, CachingSource, CompressedReader, MemorySource, ReadMode,
};
use proptest::prelude::*;

/// Random hypergraph: `n` vertices, up to `m` nets with 0–6 pins each
/// (duplicates allowed — the builder dedups), optional non-unit weights.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (1usize..40, 0usize..30, 0u8..2)
        .prop_flat_map(|(n, m, weighted)| {
            let nets = prop::collection::vec(prop::collection::vec(0..n as u32, 0..6), m..=m);
            let weights = prop::collection::vec(1u32..8, if weighted == 1 { n } else { 0 });
            (Just(n), nets, weights)
        })
        .prop_map(|(n, nets, weights)| {
            let mut builder = HypergraphBuilder::new(n);
            for pins in nets {
                builder.add_hyperedge(pins);
            }
            if !weights.is_empty() {
                for (v, w) in weights.iter().enumerate() {
                    builder.set_vertex_weight(v as u32, f64::from(*w));
                }
            }
            builder.build()
        })
}

/// Collects every record of one full pass.
fn drain<S: VertexStream>(stream: &mut S) -> Vec<VertexRecord> {
    let mut record = VertexRecord::default();
    let mut out = Vec::new();
    while stream.next_into(&mut record).expect("stream read") {
        out.push(record.clone());
    }
    out
}

fn encode(hg: &Hypergraph, block_target: u32) -> Vec<u8> {
    let mut cursor = Cursor::new(Vec::new());
    let meta = write_hypergraph(hg, &mut cursor, block_target).expect("encode");
    assert_eq!(meta.num_vertices as usize, hg.num_vertices());
    assert_eq!(meta.num_nets as usize, hg.num_hyperedges());
    assert_eq!(meta.num_pins as usize, hg.num_pins());
    cursor.into_inner()
}

fn check_roundtrip<S: ByteSource + 'static>(hg: &Hypergraph, source: S, mode: ReadMode) {
    let reader = CompressedReader::open(source).expect("open");
    let expected = drain(&mut InMemoryVertexStream::new(hg));
    let mut stream = reader.stream(mode);
    assert_eq!(stream.num_vertices(), hg.num_vertices());
    assert_eq!(stream.num_nets(), hg.num_hyperedges());
    let got = drain(&mut stream);
    assert_eq!(got, expected);
    // A second pass after reset is bit-identical (the restreaming
    // engine's access pattern).
    stream.reset().expect("reset");
    assert_eq!(drain(&mut stream), expected);
    let total: f64 = expected.iter().map(|r| r.weight).sum();
    let streamed = stream.total_vertex_weight().expect("total weight");
    assert!((streamed - total).abs() < 1e-9 * total.max(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_over_random_hypergraphs_blocks_and_budgets(
        hg in arb_hypergraph(),
        block_target in 1u32..4096,
        cache_chunk in 1u64..8192,
        cache_chunks in 1usize..8,
        prefetch in 0u8..2,
    ) {
        let bytes = encode(&hg, block_target);
        let mode = if prefetch == 1 { ReadMode::Prefetch } else { ReadMode::Sync };
        check_roundtrip(&hg, MemorySource::new(bytes.clone()), mode);
        // Same file through a chunk-granular cache with a random
        // chunk size and budget: must be transparent.
        let cached = CachingSource::new(MemorySource::new(bytes), cache_chunk, cache_chunks);
        check_roundtrip(&hg, cached, mode);
    }

    #[test]
    fn corrupt_files_error_instead_of_panicking(
        hg in arb_hypergraph(),
        block_target in 1u32..512,
        flip in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let mut bytes = encode(&hg, block_target);
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bit;
        // Any single-bit corruption must either still parse (the flip
        // may land in padding-free but semantically inert bytes is
        // impossible here — every byte is load-bearing, but a pin gap
        // can decode to another valid pin) or fail cleanly; drains must
        // never panic and never yield out-of-range net ids.
        if let Ok(reader) = CompressedReader::open(MemorySource::new(bytes)) {
            let mut stream = reader.stream(ReadMode::Sync);
            let mut record = VertexRecord::default();
            let num_nets = stream.num_nets() as u32;
            while let Ok(true) = stream.next_into(&mut record) {
                for &net in &record.nets {
                    prop_assert!(net < num_nets);
                }
            }
        }
    }
}

#[test]
fn file_roundtrip_via_convert_file() {
    let dir = std::env::temp_dir().join(format!("hpz-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hgr = dir.join("tiny.hgr");
    std::fs::write(&hgr, "5 6\n1 2\n2 3\n3 4\n4 1\n1 3\n").unwrap();
    let hpz = dir.join("tiny.hpz");
    let meta = hyperpraw_storage::convert_file(
        &hgr,
        &hpz,
        64,
        &hyperpraw_hypergraph::io::stream::StreamOptions::default(),
    )
    .unwrap();
    assert_eq!(meta.num_vertices, 6);
    assert_eq!(meta.num_nets, 5);
    assert!(hyperpraw_storage::is_compressed_file(&hpz));
    assert!(!hyperpraw_storage::is_compressed_file(&hgr));

    let hg = hyperpraw_hypergraph::io::hmetis::read_hgr_file(&hgr).unwrap();
    let reader = CompressedReader::open_file(&hpz).unwrap();
    let expected = drain(&mut InMemoryVertexStream::new(&hg));
    assert_eq!(drain(&mut reader.stream(ReadMode::Sync)), expected);
    assert_eq!(drain(&mut reader.stream(ReadMode::Prefetch)), expected);
    std::fs::remove_dir_all(&dir).ok();
}
