//! Writing the compressed format: encode any [`VertexStream`] (or an
//! in-memory [`Hypergraph`]) into block-compressed CSR, plus file-level
//! conversion from `.hgr` / edge-list inputs via the existing
//! out-of-core transpose readers.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use hyperpraw_hypergraph::io::stream::{
    stream_edgelist_file, stream_hgr_file, StreamOptions, VertexRecord, VertexStream,
};
use hyperpraw_hypergraph::io::IoResult;
use hyperpraw_hypergraph::Hypergraph;

use crate::format::{self, BlockEntry, FileMeta, HEADER_LEN, MAGIC_HEADER};
use crate::varint::encode_u64;

/// Default writer block target: 64 KiB of encoded pins per block.
pub const DEFAULT_BLOCK_TARGET_BYTES: u32 = 64 * 1024;

/// Encodes every vertex of `stream` (which must yield natural order
/// `0..num_vertices`, the contract of the transpose readers and
/// [`hyperpraw_hypergraph::io::stream::InMemoryVertexStream`]) into the
/// compressed format. Returns the metadata of the written file.
///
/// The writer holds one encoded block, the weight vector, and the block
/// index in memory — O(num_vertices + block size), never O(num_pins).
pub fn write_from_stream<S: VertexStream, W: Write + Seek>(
    stream: &mut S,
    out: &mut W,
    block_target_bytes: u32,
) -> IoResult<FileMeta> {
    let block_target = block_target_bytes.max(16) as usize;
    let num_vertices = stream.num_vertices() as u64;
    let num_nets = stream.num_nets() as u64;

    // Placeholder header; patched once pin/weight totals are known.
    out.write_all(&[0u8; HEADER_LEN as usize])
        .map_err(io_to_stream_err)?;

    let mut record = VertexRecord::default();
    let mut scratch: Vec<u64> = Vec::new();
    let mut block = Vec::with_capacity(block_target + 64);
    let mut blocks: Vec<BlockEntry> = Vec::new();
    let mut weights: Vec<f64> = Vec::with_capacity(num_vertices as usize);
    let mut num_pins = 0u64;
    let mut next_offset = HEADER_LEN;
    let mut block_first = 0u64;
    let mut expected = 0u64;

    while stream.next_into(&mut record)? {
        if u64::from(record.vertex) != expected {
            return Err(stream_order_err(expected, u64::from(record.vertex)));
        }
        expected += 1;
        weights.push(record.weight);

        scratch.clear();
        scratch.extend(record.nets.iter().map(|&n| u64::from(n)));
        if !scratch.is_sorted() {
            scratch.sort_unstable();
        }
        scratch.dedup();
        num_pins += scratch.len() as u64;

        encode_u64(scratch.len() as u64, &mut block);
        let mut prev = 0u64;
        for (i, &pin) in scratch.iter().enumerate() {
            encode_u64(if i == 0 { pin } else { pin - prev }, &mut block);
            prev = pin;
        }

        if block.len() >= block_target {
            flush_block(out, &mut block, &mut blocks, &mut next_offset, block_first)?;
            block_first = expected;
        }
    }
    if expected != num_vertices {
        return Err(stream_order_err(num_vertices, expected));
    }
    if !block.is_empty() {
        flush_block(out, &mut block, &mut blocks, &mut next_offset, block_first)?;
    }

    let has_weights = weights.iter().any(|&w| w != 1.0);
    let weights_offset = if has_weights {
        let at = next_offset;
        for &w in &weights {
            out.write_all(&w.to_le_bytes()).map_err(io_to_stream_err)?;
        }
        next_offset += weights.len() as u64 * 8;
        at
    } else {
        0
    };

    let index_offset = next_offset;
    for entry in &blocks {
        let mut buf = Vec::with_capacity(24);
        format::write_u64(&mut buf, entry.first_vertex);
        format::write_u64(&mut buf, entry.offset);
        format::write_u64(&mut buf, entry.len);
        out.write_all(&buf).map_err(io_to_stream_err)?;
    }
    out.write_all(&format::encode_trailer(
        blocks.len() as u64,
        index_offset,
        weights_offset,
    ))
    .map_err(io_to_stream_err)?;

    out.seek(SeekFrom::Start(0)).map_err(io_to_stream_err)?;
    out.write_all(&format::encode_header(
        num_vertices,
        num_nets,
        num_pins,
        block_target_bytes,
        has_weights,
    ))
    .map_err(io_to_stream_err)?;
    out.seek(SeekFrom::End(0)).map_err(io_to_stream_err)?;
    out.flush().map_err(io_to_stream_err)?;

    Ok(FileMeta {
        num_vertices,
        num_nets,
        num_pins,
        block_target_bytes,
        has_weights,
        num_blocks: blocks.len() as u64,
        index_offset,
        weights_offset,
    })
}

fn flush_block<W: Write>(
    out: &mut W,
    block: &mut Vec<u8>,
    blocks: &mut Vec<BlockEntry>,
    next_offset: &mut u64,
    first_vertex: u64,
) -> IoResult<()> {
    out.write_all(block).map_err(io_to_stream_err)?;
    blocks.push(BlockEntry {
        first_vertex,
        offset: *next_offset,
        len: block.len() as u64,
    });
    *next_offset += block.len() as u64;
    block.clear();
    Ok(())
}

fn io_to_stream_err(e: io::Error) -> hyperpraw_hypergraph::io::IoError {
    hyperpraw_hypergraph::io::IoError::Io(e)
}

fn stream_order_err(expected: u64, got: u64) -> hyperpraw_hypergraph::io::IoError {
    hyperpraw_hypergraph::io::IoError::parse(
        0,
        format!("stream must yield natural vertex order: expected vertex {expected}, got {got}"),
    )
}

/// Encodes an in-memory hypergraph (vertex-major transpose of its CSR).
pub fn write_hypergraph<W: Write + Seek>(
    hg: &Hypergraph,
    out: &mut W,
    block_target_bytes: u32,
) -> IoResult<FileMeta> {
    let mut stream = hyperpraw_hypergraph::io::stream::InMemoryVertexStream::new(hg);
    write_from_stream(&mut stream, out, block_target_bytes)
}

/// Converts an `.hgr` or edge-list file to the compressed format using
/// the out-of-core transpose readers (so the input never has to fit in
/// memory). The input format is chosen by extension, mirroring the CLI:
/// `.hgr` → hMETIS, anything else → edge list.
pub fn convert_file(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    block_target_bytes: u32,
    options: &StreamOptions,
) -> IoResult<FileMeta> {
    let input = input.as_ref();
    let ext = input
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    let mut stream = match ext.as_str() {
        "hgr" => stream_hgr_file(input, options)?,
        _ => stream_edgelist_file(input, options)?,
    };
    let file = File::create(output.as_ref()).map_err(io_to_stream_err)?;
    let mut writer = BufWriter::new(file);
    let meta = write_from_stream(&mut stream, &mut writer, block_target_bytes)?;
    writer
        .into_inner()
        .map_err(|e| io_to_stream_err(e.into_error()))?
        .sync_all()
        .map_err(io_to_stream_err)?;
    Ok(meta)
}

/// Sniffs whether `path` starts with the compressed-format magic.
pub fn is_compressed_file(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 8];
    match File::open(path.as_ref()).and_then(|mut f| f.read_exact(&mut magic)) {
        Ok(()) => &magic == MAGIC_HEADER,
        Err(_) => false,
    }
}
