//! LEB128 unsigned varints — the integer encoding for degrees and pin
//! deltas inside compressed blocks. Low 7 bits per byte, continuation
//! bit 0x80, at most 10 bytes for a `u64`.

/// Appends the LEB128 encoding of `value` to `out` and returns the
/// number of bytes written.
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 value from `buf[*pos..]`, advancing `*pos` past
/// it. Returns `None` on truncation, overlong encodings past 10 bytes,
/// or overflow of `u64`.
pub fn decode_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            // 10th byte may only contribute the final bit.
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundary_values() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            buf.clear();
            let n = encode_u64(v, &mut buf);
            assert_eq!(n, buf.len());
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn rejects_truncated_and_overlong() {
        let mut pos = 0;
        assert_eq!(decode_u64(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(decode_u64(&[], &mut pos), None);
        // 11 continuation bytes: too long for a u64.
        let overlong = [0x80u8; 10];
        let mut with_tail = overlong.to_vec();
        with_tail.push(0x01);
        let mut pos = 0;
        assert_eq!(decode_u64(&with_tail, &mut pos), None);
        // 10th byte with more than the final bit set overflows.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        let mut pos = 0;
        assert_eq!(decode_u64(&overflow, &mut pos), None);
    }

    #[test]
    fn decodes_back_to_back_values() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        encode_u64(7, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_u64(&buf, &mut pos), Some(300));
        assert_eq!(decode_u64(&buf, &mut pos), Some(7));
        assert_eq!(pos, buf.len());
    }
}
