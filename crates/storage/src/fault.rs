//! Fault injection for the byte-range IO path.
//!
//! [`FaultySource`] wraps any [`ByteSource`] and injects the failure
//! modes a real storage stack produces — a read that errors outright, a
//! short read that silently leaves part of the buffer unfilled, and a
//! bit flip inside an otherwise successful read. Readers above this
//! layer (the `.hpz` block decoder, the dynamic journal's replay) are
//! expected to surface every injected fault as a structured error or a
//! checksum mismatch, never as a panic or silently wrong data; the
//! storage and journal test suites pin exactly that.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::source::ByteSource;

/// A [`ByteSource`] wrapper that injects read faults at configurable
/// points. Reads are counted from zero in call order; each configured
/// fault fires on the read whose index matches.
///
/// The *short read* fault deliberately violates the [`ByteSource`]
/// contract ("short reads are errors"): it fills only the first half of
/// the requested range and reports success, modelling a lying kernel or
/// a truncated-but-padded transport. Consumers must catch the resulting
/// garbage through checksums or strict structural validation.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    reads: AtomicU64,
    fail_at: Option<u64>,
    short_at: Option<u64>,
    flip: Option<(u64, u8)>,
}

impl<S: ByteSource> FaultySource<S> {
    /// Wraps `inner` with no faults configured — behaves identically to
    /// the wrapped source until a fault is armed.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            reads: AtomicU64::new(0),
            fail_at: None,
            short_at: None,
            flip: None,
        }
    }

    /// Arms an outright failure: the `n`-th `read_at` call (0-based)
    /// returns an [`io::ErrorKind::Other`] error.
    pub fn fail_read(mut self, n: u64) -> Self {
        self.fail_at = Some(n);
        self
    }

    /// Arms a short read: the `n`-th `read_at` call fills only the first
    /// half of the buffer yet still reports success.
    pub fn short_read(mut self, n: u64) -> Self {
        self.short_at = Some(n);
        self
    }

    /// Arms a bit flip: any read covering absolute byte `offset` has that
    /// byte XOR-ed with `mask` after the inner read completes.
    pub fn flip_bits(mut self, offset: u64, mask: u8) -> Self {
        self.flip = Some((offset, mask));
        self
    }

    /// Number of `read_at` calls observed so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Consumes the wrapper, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ByteSource> ByteSource for FaultySource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        if self.fail_at == Some(n) {
            return Err(io::Error::other(format!(
                "injected fault: read {n} ({} bytes at {offset}) failed",
                buf.len()
            )));
        }
        if self.short_at == Some(n) {
            let half = buf.len() / 2;
            self.inner.read_at(offset, &mut buf[..half])?;
            return Ok(()); // the tail of `buf` is left untouched
        }
        self.inner.read_at(offset, buf)?;
        if let Some((flip_offset, mask)) = self.flip {
            if flip_offset >= offset && flip_offset - offset < buf.len() as u64 {
                buf[(flip_offset - offset) as usize] ^= mask;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;

    fn source() -> MemorySource {
        MemorySource::new((0u8..64).collect::<Vec<u8>>())
    }

    #[test]
    fn passes_reads_through_until_a_fault_is_armed() {
        let faulty = FaultySource::new(source());
        let mut buf = [0u8; 8];
        faulty.read_at(4, &mut buf).unwrap();
        assert_eq!(buf, [4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(faulty.len(), 64);
        assert_eq!(faulty.reads(), 1);
    }

    #[test]
    fn fails_exactly_the_configured_read() {
        let faulty = FaultySource::new(source()).fail_read(1);
        let mut buf = [0u8; 4];
        faulty.read_at(0, &mut buf).unwrap();
        let err = faulty.read_at(0, &mut buf).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        faulty.read_at(0, &mut buf).unwrap();
        assert_eq!(faulty.reads(), 3);
    }

    #[test]
    fn short_reads_fill_half_and_still_report_success() {
        let faulty = FaultySource::new(source()).short_read(0);
        let mut buf = [0xaau8; 8];
        faulty.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[0, 1, 2, 3]);
        assert_eq!(&buf[4..], &[0xaa; 4], "tail must stay untouched");
    }

    #[test]
    fn bit_flips_hit_only_reads_covering_the_offset() {
        let faulty = FaultySource::new(source()).flip_bits(10, 0x01);
        let mut buf = [0u8; 4];
        faulty.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3], "read not covering offset 10 is clean");
        faulty.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [8, 9, 11, 11], "byte 10 flipped from 10 to 11");
    }
}
