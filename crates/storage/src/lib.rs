//! Block-compressed out-of-core storage for vertex-major hypergraph CSR.
//!
//! This crate is the data path for inputs past RAM-resident pin counts:
//! a compact on-disk format, a pluggable byte-range abstraction, and a
//! prefetching reader that overlaps block decode with engine compute.
//! The reader surfaces the file as a
//! [`hyperpraw_hypergraph::io::stream::VertexStream`], so the whole
//! restreaming stack — `StreamSource`, the lowmem multi-pass/BSP drivers,
//! `PartitionJob::run_stream` — works over compressed files unchanged.
//!
//! # File format (`.hpz`, version 1)
//!
//! Vertex-major: each record is one vertex's incident-net (pin) list,
//! delta-varint encoded, grouped into independently decodable blocks.
//! All multi-byte integers outside varints are little-endian.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────┐
//! │ header (40 bytes)                                              │
//! │   magic            8  b"HPZCSR01"                              │
//! │   flags            u32  bit0 = explicit vertex weights present │
//! │   block_target     u32  writer's target encoded bytes / block  │
//! │   num_vertices     u64                                         │
//! │   num_nets         u64                                         │
//! │   num_pins         u64                                         │
//! ├────────────────────────────────────────────────────────────────┤
//! │ block 0 │ block 1 │ … │ block B-1        (back to back)        │
//! │   per vertex, in ascending vertex order:                       │
//! │     varint(degree)                                             │
//! │     varint(pins[0]), varint(pins[i] - pins[i-1]) …             │
//! │   (pin lists are sorted ascending and deduplicated, so every   │
//! │    gap varint is ≥ 1; varints are LEB128, 7 bits per byte)     │
//! ├────────────────────────────────────────────────────────────────┤
//! │ weights (optional, flags bit0): num_vertices × f64 LE          │
//! ├────────────────────────────────────────────────────────────────┤
//! │ block index: per block                                         │
//! │   first_vertex u64 │ byte_offset u64 │ byte_len u64            │
//! ├────────────────────────────────────────────────────────────────┤
//! │ trailer (32 bytes, fixed position at EOF)                      │
//! │   num_blocks u64 │ index_offset u64 │ weights_offset u64       │
//! │   magic 8  b"HPZCEND1"        (weights_offset == 0 → none)     │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! A block covers the contiguous vertex range
//! `index[b].first_vertex .. index[b+1].first_vertex` (the last block
//! runs to `num_vertices`) and decodes with no context beyond its own
//! bytes plus that range — random access, mmap windows, and parallel or
//! remote fetches all fall out of the footer index. The trailer sits at
//! a fixed offset from EOF so a reader needs exactly two ranged reads
//! (trailer, then index) before it can serve any block.
//!
//! # Byte sources
//!
//! [`ByteSource`] is the one IO primitive: read a byte range at an
//! offset. [`FileSource`] serves local files via positioned reads,
//! [`MemorySource`] serves an in-memory buffer (and stands in for a
//! future remote ranged-fetch source in tests), and [`CachingSource`]
//! wraps any source with a chunk-granular LRU so repeated passes over
//! the same blocks — restreaming's normal access pattern — hit memory.
//! [`FaultySource`] wraps any source with injected read faults (outright
//! failures, short reads, bit flips) so the decode paths above — block
//! reads here, journal replay in `hyperpraw-dynamic` — can be tested
//! against storage that lies.
//!
//! # Prefetch contract
//!
//! [`CompressedVertexStream`] in [`ReadMode::Prefetch`] runs a
//! background thread that reads and decodes block N+1 while the engine
//! consumes block N (a double buffer: one decoded block in flight in a
//! bounded channel, one being consumed). `reset()` tears the worker
//! down and respawns it at block 0, so every restreaming pass sees the
//! identical vertex order; decode errors are carried across the channel
//! and surface as `Err` from `next_into`, never as a panic or a lost
//! worker. [`ReadMode::Sync`] decodes on the caller's thread and is
//! bit-identical — equivalence tests pin both against the uncompressed
//! transpose readers.

mod checksum;
mod convert;
mod fault;
mod format;
mod reader;
mod source;
mod varint;

pub use checksum::crc32;
pub use convert::{
    convert_file, is_compressed_file, write_from_stream, write_hypergraph,
    DEFAULT_BLOCK_TARGET_BYTES,
};
pub use fault::FaultySource;
pub use format::{BlockEntry, FileMeta, FormatError, COMPRESSED_EXTENSION, MAGIC_HEADER};
pub use reader::{CompressedReader, CompressedVertexStream, DecodedBlock, ReadMode};
pub use source::{ByteSource, CacheStats, CachingSource, FileSource, MemorySource};
pub use varint::{decode_u64, encode_u64};
