//! Pluggable byte-range IO: the [`ByteSource`] trait plus local-file,
//! in-memory, and chunk-granular caching implementations. Everything
//! above this layer (block decode, prefetch, streaming) only ever asks
//! "give me `len` bytes at `offset`", which is exactly the shape a
//! remote ranged-fetch (HTTP `Range`) source satisfies too.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A random-access byte range reader.
///
/// Implementations must be thread-safe: the prefetch pipeline reads
/// from a worker thread while `reset()` may run on the engine thread.
pub trait ByteSource: Send + Sync {
    /// Total length of the underlying byte stream.
    fn len(&self) -> u64;

    /// Fills `buf` from `offset`. Short reads are errors: the caller
    /// always knows the exact range it needs from the block index.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<S: ByteSource + ?Sized> ByteSource for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_at(offset, buf)
    }
}

impl<S: ByteSource + ?Sized> ByteSource for std::sync::Arc<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_at(offset, buf)
    }
}

/// [`ByteSource`] over a local file using positioned reads (no shared
/// cursor, so concurrent readers never interfere).
#[derive(Debug)]
pub struct FileSource {
    file: File,
    len: u64,
}

impl FileSource {
    /// Opens `path` read-only.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, len })
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// [`ByteSource`] over an owned in-memory buffer. Doubles as the test
/// stand-in for a remote source: byte-range semantics are identical.
#[derive(Clone, Debug)]
pub struct MemorySource {
    bytes: Vec<u8>,
}

impl MemorySource {
    /// Wraps `bytes`.
    pub fn new(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Borrows the underlying bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl ByteSource for MemorySource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset past end"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&self.bytes[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "range past end of memory source",
            )),
        }
    }
}

/// Hit/miss counters for a [`CachingSource`], readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunk requests served from the cache.
    pub hits: u64,
    /// Chunk requests that had to touch the inner source.
    pub misses: u64,
}

struct CacheState {
    chunks: HashMap<u64, (Vec<u8>, u64)>,
    stamp: u64,
}

/// Chunk-granular read-through cache over any [`ByteSource`].
///
/// Reads are rounded out to fixed-size chunks; up to `max_chunks`
/// recently used chunks stay resident (LRU eviction). Restreaming
/// makes many passes over the same blocks, so a small cache in front
/// of an expensive source (spinning disk, remote fetch) converts every
/// pass after the first into memory reads.
pub struct CachingSource<S> {
    inner: S,
    chunk_bytes: u64,
    max_chunks: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    hits_metric: hyperpraw_telemetry::Counter,
    misses_metric: hyperpraw_telemetry::Counter,
}

impl<S: ByteSource> CachingSource<S> {
    /// Wraps `inner`, caching `max_chunks` chunks of `chunk_bytes` each
    /// (both clamped to at least 1 / 1 KiB respectively).
    pub fn new(inner: S, chunk_bytes: u64, max_chunks: usize) -> Self {
        Self {
            inner,
            chunk_bytes: chunk_bytes.max(1024),
            max_chunks: max_chunks.max(1),
            state: Mutex::new(CacheState {
                chunks: HashMap::new(),
                stamp: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hits_metric: hyperpraw_telemetry::Counter::noop(),
            misses_metric: hyperpraw_telemetry::Counter::noop(),
        }
    }

    /// Additionally mirrors the hit/miss counters into `registry` as
    /// `storage.cache.hits` / `storage.cache.misses`.
    pub fn with_registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.hits_metric = registry.counter("storage.cache.hits");
        self.misses_metric = registry.counter("storage.cache.misses");
        self
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn chunk(&self, id: u64) -> io::Result<Vec<u8>> {
        {
            let mut state = self.state.lock().unwrap();
            state.stamp += 1;
            let stamp = state.stamp;
            if let Some((bytes, touched)) = state.chunks.get_mut(&id) {
                *touched = stamp;
                let bytes = bytes.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hits_metric.inc();
                return Ok(bytes);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_metric.inc();
        let start = id * self.chunk_bytes;
        let len = (self.inner.len().saturating_sub(start)).min(self.chunk_bytes);
        let mut bytes = vec![0u8; len as usize];
        self.inner.read_at(start, &mut bytes)?;
        let mut state = self.state.lock().unwrap();
        state.stamp += 1;
        let stamp = state.stamp;
        if state.chunks.len() >= self.max_chunks {
            if let Some((&evict, _)) = state.chunks.iter().min_by_key(|(_, (_, t))| *t) {
                state.chunks.remove(&evict);
            }
        }
        state.chunks.insert(id, (bytes.clone(), stamp));
        Ok(bytes)
    }
}

impl<S: ByteSource> ByteSource for CachingSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if offset
            .checked_add(buf.len() as u64)
            .is_none_or(|end| end > self.inner.len())
        {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "range past end of cached source",
            ));
        }
        let mut filled = 0usize;
        while filled < buf.len() {
            let at = offset + filled as u64;
            let id = at / self.chunk_bytes;
            let within = (at % self.chunk_bytes) as usize;
            let chunk = self.chunk(id)?;
            let take = (chunk.len() - within).min(buf.len() - filled);
            if take == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short chunk in cached source",
                ));
            }
            buf[filled..filled + take].copy_from_slice(&chunk[within..within + take]);
            filled += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_reads_ranges_and_rejects_overruns() {
        let src = MemorySource::new((0u8..=99).collect());
        let mut buf = [0u8; 4];
        src.read_at(10, &mut buf).unwrap();
        assert_eq!(buf, [10, 11, 12, 13]);
        assert!(src.read_at(98, &mut buf).is_err());
    }

    #[test]
    fn caching_source_is_transparent_and_counts_hits() {
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let cache = CachingSource::new(MemorySource::new(payload.clone()), 4096, 4);
        let mut buf = vec![0u8; 5000];
        // Spans two chunks; both cold.
        cache.read_at(1000, &mut buf).unwrap();
        assert_eq!(&buf[..], &payload[1000..6000]);
        let cold = cache.stats();
        assert_eq!(cold.hits, 0);
        assert!(cold.misses >= 2);
        // Same range again: all hits.
        cache.read_at(1000, &mut buf).unwrap();
        let warm = cache.stats();
        assert_eq!(warm.misses, cold.misses);
        assert!(warm.hits >= 2);
    }

    #[test]
    fn caching_source_evicts_lru_but_stays_correct() {
        let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 241) as u8).collect();
        let cache = CachingSource::new(MemorySource::new(payload.clone()), 1024, 2);
        let mut buf = [0u8; 16];
        for pass in 0..3 {
            for chunk in [0u64, 20, 40, 0] {
                let off = chunk * 1024 + pass;
                cache.read_at(off, &mut buf).unwrap();
                assert_eq!(&buf[..], &payload[off as usize..off as usize + 16]);
            }
        }
    }
}
