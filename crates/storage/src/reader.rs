//! Decoding side of the compressed format: [`CompressedReader`] parses
//! the footer index and decodes individual blocks; [`CompressedVertexStream`]
//! lifts a reader into a [`VertexStream`], either decoding on the caller's
//! thread ([`ReadMode::Sync`]) or overlapping IO + decode with engine
//! compute on a background thread ([`ReadMode::Prefetch`]).

use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use hyperpraw_hypergraph::io::stream::{VertexRecord, VertexStream};
use hyperpraw_hypergraph::io::{IoError, IoResult};
use hyperpraw_hypergraph::VertexId;

use crate::format::{
    self, BlockEntry, FileMeta, FormatError, HEADER_LEN, INDEX_ENTRY_LEN, TRAILER_LEN,
};
use crate::source::{ByteSource, FileSource};
use crate::varint::decode_u64;

/// How a [`CompressedVertexStream`] schedules block decode work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Decode block N when the consumer first asks for a vertex in it.
    Sync,
    /// A background thread reads and decodes block N+1 into a double
    /// buffer while the consumer drains block N.
    Prefetch,
}

/// One decoded block: a contiguous vertex range with per-vertex pin
/// slices in a flat arena.
#[derive(Clone, Debug, Default)]
pub struct DecodedBlock {
    /// First vertex id in the block.
    pub first_vertex: u64,
    /// Prefix offsets into `nets`; vertex `first_vertex + i` owns
    /// `nets[offsets[i]..offsets[i + 1]]`. Length = vertex count + 1.
    pub offsets: Vec<u32>,
    /// Concatenated incident-net ids, ascending within each vertex.
    pub nets: Vec<VertexId>,
}

impl DecodedBlock {
    /// Number of vertices in the block.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the block holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A parsed compressed file: metadata, block index, and (when present)
/// the weight section, all resident; block payloads decode on demand.
///
/// Cloning is cheap — the index and weights are shared `Arc`s — so one
/// reader can back many concurrent streams.
#[derive(Clone)]
pub struct CompressedReader {
    source: Arc<dyn ByteSource>,
    meta: FileMeta,
    blocks: Arc<[BlockEntry]>,
    weights: Option<Arc<[f64]>>,
    total_weight: f64,
    /// Compressed payload bytes read and decoded; shared by clones (the
    /// prefetch worker decodes through a clone), no-op until bound via
    /// [`CompressedReader::with_registry`].
    bytes_decoded: hyperpraw_telemetry::Counter,
    /// Time the consumer spends blocked on the prefetch channel, µs.
    prefetch_stall_us: hyperpraw_telemetry::Histogram,
}

impl CompressedReader {
    /// Opens a local compressed file via [`FileSource`].
    pub fn open_file(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        Self::open(FileSource::open(path)?)
    }

    /// Parses header, trailer, block index, and weights from `source`.
    pub fn open<S: ByteSource + 'static>(source: S) -> Result<Self, FormatError> {
        let source: Arc<dyn ByteSource> = Arc::new(source);
        let file_len = source.len();
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(FormatError::corrupt("file shorter than header + trailer"));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        source.read_at(0, &mut header)?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        source.read_at(file_len - TRAILER_LEN, &mut trailer)?;
        let meta = format::parse_meta(&header, &trailer, file_len)?;
        let mut raw_index = vec![0u8; (meta.num_blocks * INDEX_ENTRY_LEN) as usize];
        source.read_at(meta.index_offset, &mut raw_index)?;
        let blocks: Arc<[BlockEntry]> = format::parse_index(&meta, &raw_index)?.into();
        let weights = if meta.has_weights {
            let mut raw = vec![0u8; (meta.num_vertices * 8) as usize];
            source.read_at(meta.weights_offset, &mut raw)?;
            let weights: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            if weights.iter().any(|w| !w.is_finite()) {
                return Err(FormatError::corrupt("non-finite vertex weight"));
            }
            Some(Arc::<[f64]>::from(weights))
        } else {
            None
        };
        let total_weight = match &weights {
            Some(w) => w.iter().sum(),
            None => meta.num_vertices as f64,
        };
        Ok(Self {
            source,
            meta,
            blocks,
            weights,
            total_weight,
            bytes_decoded: hyperpraw_telemetry::Counter::noop(),
            prefetch_stall_us: hyperpraw_telemetry::Histogram::noop(),
        })
    }

    /// Binds decode instrumentation to `registry`:
    /// `storage.bytes_decoded` counts compressed payload bytes decoded and
    /// `storage.prefetch.stall_us` tracks how long the consumer waits on
    /// the prefetch worker per block handoff.
    pub fn with_registry(mut self, registry: &hyperpraw_telemetry::Registry) -> Self {
        self.bytes_decoded = registry.counter("storage.bytes_decoded");
        self.prefetch_stall_us = registry.histogram("storage.prefetch.stall_us");
        self
    }

    /// The parsed file metadata.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Number of blocks in the file.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The footer index entries.
    pub fn blocks(&self) -> &[BlockEntry] {
        &self.blocks
    }

    /// Per-vertex weights when the file carries them.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Vertex range `[lo, hi)` covered by block `b`.
    pub fn block_range(&self, b: usize) -> (u64, u64) {
        let lo = self.blocks[b].first_vertex;
        let hi = self
            .blocks
            .get(b + 1)
            .map_or(self.meta.num_vertices, |e| e.first_vertex);
        (lo, hi)
    }

    /// Reads and decodes block `b`, validating degrees, monotone pin
    /// gaps, and net-id bounds.
    pub fn decode_block(&self, b: usize) -> Result<DecodedBlock, FormatError> {
        let entry = self.blocks[b];
        let (lo, hi) = self.block_range(b);
        let mut raw = vec![0u8; entry.len as usize];
        self.source.read_at(entry.offset, &mut raw)?;
        self.bytes_decoded.add(entry.len);
        let count = (hi - lo) as usize;
        let mut block = DecodedBlock {
            first_vertex: lo,
            offsets: Vec::with_capacity(count + 1),
            nets: Vec::new(),
        };
        block.offsets.push(0);
        let mut pos = 0usize;
        for v in lo..hi {
            let degree = decode_u64(&raw, &mut pos)
                .ok_or_else(|| FormatError::corrupt(format!("truncated degree of vertex {v}")))?;
            let mut prev: u64 = 0;
            for i in 0..degree {
                let delta = decode_u64(&raw, &mut pos).ok_or_else(|| {
                    FormatError::corrupt(format!("truncated pin list of vertex {v}"))
                })?;
                let pin = if i == 0 {
                    delta
                } else {
                    if delta == 0 {
                        return Err(FormatError::corrupt(format!(
                            "non-ascending pin list of vertex {v}"
                        )));
                    }
                    prev.checked_add(delta).ok_or_else(|| {
                        FormatError::corrupt(format!("pin id overflow in vertex {v}"))
                    })?
                };
                if pin >= self.meta.num_nets {
                    return Err(FormatError::corrupt(format!(
                        "vertex {v} references net {pin} past the net count {}",
                        self.meta.num_nets
                    )));
                }
                block.nets.push(pin as VertexId);
                prev = pin;
            }
            let end = u32::try_from(block.nets.len())
                .map_err(|_| FormatError::corrupt("block pin arena exceeds u32"))?;
            block.offsets.push(end);
        }
        if pos != raw.len() {
            return Err(FormatError::corrupt(format!(
                "block {b} has {} trailing bytes",
                raw.len() - pos
            )));
        }
        Ok(block)
    }

    /// Creates a [`VertexStream`] over the whole file in natural vertex
    /// order, positioned at vertex 0.
    pub fn stream(&self, mode: ReadMode) -> CompressedVertexStream {
        CompressedVertexStream::new(self.clone(), mode)
    }
}

impl std::fmt::Debug for CompressedReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedReader")
            .field("meta", &self.meta)
            .field("num_blocks", &self.blocks.len())
            .finish()
    }
}

type BlockResult = Result<DecodedBlock, FormatError>;

struct PrefetchWorker {
    rx: Receiver<BlockResult>,
    handle: JoinHandle<()>,
}

fn spawn_prefetch(reader: &CompressedReader) -> PrefetchWorker {
    // Capacity 1 is the double buffer: one decoded block parked in the
    // channel while the consumer drains the previous one and the worker
    // decodes the next.
    let (tx, rx): (SyncSender<BlockResult>, Receiver<BlockResult>) = sync_channel(1);
    let reader = reader.clone();
    let handle = std::thread::Builder::new()
        .name("hpz-prefetch".into())
        .spawn(move || {
            for b in 0..reader.num_blocks() {
                let block = reader.decode_block(b);
                let failed = block.is_err();
                // The consumer dropping its receiver (reset / drop) is
                // the normal shutdown signal.
                if tx.send(block).is_err() || failed {
                    return;
                }
            }
        })
        .expect("spawn prefetch thread");
    PrefetchWorker { rx, handle }
}

/// [`VertexStream`] over a [`CompressedReader`] in natural vertex order.
///
/// In [`ReadMode::Prefetch`] a background thread stays exactly one
/// decoded block ahead; `reset()` tears it down and respawns at block 0
/// so every pass yields the identical sequence. Decode failures surface
/// as `Err` from [`VertexStream::next_into`] on the consumer thread.
pub struct CompressedVertexStream {
    reader: CompressedReader,
    mode: ReadMode,
    next_block: usize,
    current: DecodedBlock,
    cursor: usize,
    worker: Option<PrefetchWorker>,
    finished: bool,
}

impl CompressedVertexStream {
    fn new(reader: CompressedReader, mode: ReadMode) -> Self {
        let mut stream = Self {
            reader,
            mode,
            next_block: 0,
            current: DecodedBlock::default(),
            cursor: 0,
            worker: None,
            finished: false,
        };
        if stream.mode == ReadMode::Prefetch {
            stream.worker = Some(spawn_prefetch(&stream.reader));
        }
        stream
    }

    /// The reader this stream decodes from.
    pub fn reader(&self) -> &CompressedReader {
        &self.reader
    }

    fn stop_worker(&mut self) {
        if let Some(worker) = self.worker.take() {
            // Dropping the receiver makes the worker's next send fail.
            drop(worker.rx);
            let _ = worker.handle.join();
        }
    }

    /// Pulls the next decoded block into `current`. Returns `false`
    /// when the file is exhausted.
    fn advance_block(&mut self) -> IoResult<bool> {
        if self.next_block >= self.reader.num_blocks() {
            self.finished = true;
            return Ok(false);
        }
        let block = match &self.worker {
            Some(worker) => {
                let stall = self.reader.prefetch_stall_us.span();
                let received = worker
                    .rx
                    .recv()
                    .map_err(|_| IoError::parse(0, "prefetch worker exited early".to_string()));
                stall.finish();
                received?.map_err(format_to_io)?
            }
            None => self
                .reader
                .decode_block(self.next_block)
                .map_err(format_to_io)?,
        };
        debug_assert_eq!(
            block.first_vertex,
            self.reader.blocks()[self.next_block].first_vertex
        );
        self.current = block;
        self.cursor = 0;
        self.next_block += 1;
        Ok(true)
    }
}

fn format_to_io(e: FormatError) -> IoError {
    match e {
        FormatError::Io(inner) => IoError::Io(inner),
        FormatError::Corrupt(m) => IoError::parse(0, m),
    }
}

impl VertexStream for CompressedVertexStream {
    fn num_vertices(&self) -> usize {
        self.reader.meta().num_vertices as usize
    }

    fn num_nets(&self) -> usize {
        self.reader.meta().num_nets as usize
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        while self.cursor >= self.current.len() {
            if self.finished || !self.advance_block()? {
                return Ok(false);
            }
        }
        let v = self.current.first_vertex + self.cursor as u64;
        let lo = self.current.offsets[self.cursor] as usize;
        let hi = self.current.offsets[self.cursor + 1] as usize;
        record.vertex = v as VertexId;
        record.weight = self.reader.weights().map_or(1.0, |w| w[v as usize]);
        record.nets.clear();
        record.nets.extend_from_slice(&self.current.nets[lo..hi]);
        self.cursor += 1;
        Ok(true)
    }

    fn reset(&mut self) -> IoResult<()> {
        self.stop_worker();
        self.next_block = 0;
        self.current = DecodedBlock::default();
        self.cursor = 0;
        self.finished = false;
        if self.mode == ReadMode::Prefetch {
            self.worker = Some(spawn_prefetch(&self.reader));
        }
        Ok(())
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        Some(self.reader.total_weight)
    }
}

impl Drop for CompressedVertexStream {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

impl std::fmt::Debug for CompressedVertexStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedVertexStream")
            .field("mode", &self.mode)
            .field("next_block", &self.next_block)
            .field("cursor", &self.cursor)
            .finish()
    }
}
