//! On-disk layout of the block-compressed CSR format: header/trailer
//! framing, the block index, and validation. The byte-level layout
//! diagram lives in the crate docs ([`crate`]).

use std::fmt;
use std::io;

/// Leading 8-byte magic of a compressed CSR file.
pub const MAGIC_HEADER: &[u8; 8] = b"HPZCSR01";
/// Trailing 8-byte magic (last bytes of the file).
pub const MAGIC_TRAILER: &[u8; 8] = b"HPZCEND1";
/// Conventional file extension for the format.
pub const COMPRESSED_EXTENSION: &str = "hpz";

/// Fixed header size in bytes.
pub const HEADER_LEN: u64 = 40;
/// Fixed trailer size in bytes.
pub const TRAILER_LEN: u64 = 32;
/// Bytes per block-index entry (`first_vertex`, `offset`, `len`).
pub const INDEX_ENTRY_LEN: u64 = 24;

/// Header flag bit: an explicit per-vertex weight section is present.
pub const FLAG_WEIGHTS: u32 = 1;

/// Errors raised while parsing or validating a compressed file.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem in the file (bad magic, corrupt index, …).
    Corrupt(String),
}

impl FormatError {
    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        Self::Corrupt(message.into())
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt compressed file: {m}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FormatError> for io::Error {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(inner) => inner,
            FormatError::Corrupt(m) => io::Error::new(io::ErrorKind::InvalidData, m),
        }
    }
}

/// Parsed header + trailer of a compressed file: everything needed to
/// locate and decode blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// Number of vertices (vertex-major records) in the file.
    pub num_vertices: u64,
    /// Number of nets the pin ids index into.
    pub num_nets: u64,
    /// Total pin count across all vertices.
    pub num_pins: u64,
    /// The writer's target encoded bytes per block.
    pub block_target_bytes: u32,
    /// Whether an explicit weight section is present.
    pub has_weights: bool,
    /// Number of blocks.
    pub num_blocks: u64,
    /// Absolute byte offset of the block index.
    pub index_offset: u64,
    /// Absolute byte offset of the weight section (0 when absent).
    pub weights_offset: u64,
}

/// One entry of the footer block index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// First vertex id covered by the block.
    pub first_vertex: u64,
    /// Absolute byte offset of the block's encoded bytes.
    pub offset: u64,
    /// Encoded length of the block in bytes.
    pub len: u64,
}

pub(crate) fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn write_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

pub(crate) fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Encodes the fixed header.
pub(crate) fn encode_header(
    num_vertices: u64,
    num_nets: u64,
    num_pins: u64,
    block_target_bytes: u32,
    has_weights: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN as usize);
    out.extend_from_slice(MAGIC_HEADER);
    write_u32(&mut out, if has_weights { FLAG_WEIGHTS } else { 0 });
    write_u32(&mut out, block_target_bytes);
    write_u64(&mut out, num_vertices);
    write_u64(&mut out, num_nets);
    write_u64(&mut out, num_pins);
    debug_assert_eq!(out.len() as u64, HEADER_LEN);
    out
}

/// Encodes the fixed trailer.
pub(crate) fn encode_trailer(num_blocks: u64, index_offset: u64, weights_offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRAILER_LEN as usize);
    write_u64(&mut out, num_blocks);
    write_u64(&mut out, index_offset);
    write_u64(&mut out, weights_offset);
    out.extend_from_slice(MAGIC_TRAILER);
    debug_assert_eq!(out.len() as u64, TRAILER_LEN);
    out
}

/// Parses header + trailer bytes into a validated [`FileMeta`].
pub(crate) fn parse_meta(
    header: &[u8],
    trailer: &[u8],
    file_len: u64,
) -> Result<FileMeta, FormatError> {
    if header.len() as u64 != HEADER_LEN || trailer.len() as u64 != TRAILER_LEN {
        return Err(FormatError::corrupt("short header or trailer"));
    }
    if &header[..8] != MAGIC_HEADER {
        return Err(FormatError::corrupt("bad header magic"));
    }
    if &trailer[24..32] != MAGIC_TRAILER {
        return Err(FormatError::corrupt("bad trailer magic"));
    }
    let flags = read_u32(header, 8);
    if flags & !FLAG_WEIGHTS != 0 {
        return Err(FormatError::corrupt(format!("unknown flags {flags:#x}")));
    }
    let meta = FileMeta {
        block_target_bytes: read_u32(header, 12),
        num_vertices: read_u64(header, 16),
        num_nets: read_u64(header, 24),
        num_pins: read_u64(header, 32),
        has_weights: flags & FLAG_WEIGHTS != 0,
        num_blocks: read_u64(trailer, 0),
        index_offset: read_u64(trailer, 8),
        weights_offset: read_u64(trailer, 16),
    };
    let index_len = meta
        .num_blocks
        .checked_mul(INDEX_ENTRY_LEN)
        .ok_or_else(|| FormatError::corrupt("block count overflows index size"))?;
    let index_end = meta
        .index_offset
        .checked_add(index_len)
        .ok_or_else(|| FormatError::corrupt("index extends past u64"))?;
    if meta.index_offset < HEADER_LEN || index_end != file_len.saturating_sub(TRAILER_LEN) {
        return Err(FormatError::corrupt("index does not abut the trailer"));
    }
    if meta.has_weights {
        let weights_len = meta
            .num_vertices
            .checked_mul(8)
            .ok_or_else(|| FormatError::corrupt("weight section overflows u64"))?;
        let end = meta
            .weights_offset
            .checked_add(weights_len)
            .ok_or_else(|| FormatError::corrupt("weight section extends past u64"))?;
        if meta.weights_offset < HEADER_LEN || end > meta.index_offset {
            return Err(FormatError::corrupt("weight section out of bounds"));
        }
    } else if meta.weights_offset != 0 {
        return Err(FormatError::corrupt(
            "weights offset set without weights flag",
        ));
    }
    if meta.num_vertices > 0 && meta.num_blocks == 0 {
        return Err(FormatError::corrupt("vertices present but zero blocks"));
    }
    Ok(meta)
}

/// Parses the raw index section into validated [`BlockEntry`]s: ranges
/// must be ascending, contiguous in bytes, and inside the data region.
pub(crate) fn parse_index(meta: &FileMeta, raw: &[u8]) -> Result<Vec<BlockEntry>, FormatError> {
    if raw.len() as u64 != meta.num_blocks * INDEX_ENTRY_LEN {
        return Err(FormatError::corrupt("index section length mismatch"));
    }
    let data_end = if meta.has_weights {
        meta.weights_offset
    } else {
        meta.index_offset
    };
    let mut entries: Vec<BlockEntry> = Vec::with_capacity(meta.num_blocks as usize);
    let mut expected_offset = HEADER_LEN;
    for b in 0..meta.num_blocks as usize {
        let at = b * INDEX_ENTRY_LEN as usize;
        let entry = BlockEntry {
            first_vertex: read_u64(raw, at),
            offset: read_u64(raw, at + 8),
            len: read_u64(raw, at + 16),
        };
        if entry.offset != expected_offset {
            return Err(FormatError::corrupt(format!(
                "block {b} offset {} does not follow previous block (expected {expected_offset})",
                entry.offset
            )));
        }
        let end = entry
            .offset
            .checked_add(entry.len)
            .ok_or_else(|| FormatError::corrupt("block extends past u64"))?;
        if end > data_end {
            return Err(FormatError::corrupt(format!(
                "block {b} extends past the data region"
            )));
        }
        if b == 0 {
            if entry.first_vertex != 0 {
                return Err(FormatError::corrupt(
                    "first block does not start at vertex 0",
                ));
            }
        } else if entry.first_vertex <= entries[b - 1].first_vertex {
            return Err(FormatError::corrupt("block vertex ranges not ascending"));
        }
        if entry.first_vertex >= meta.num_vertices {
            return Err(FormatError::corrupt("block starts past the vertex count"));
        }
        expected_offset = end;
        entries.push(entry);
    }
    Ok(entries)
}
