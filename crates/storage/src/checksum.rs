//! CRC-32 (IEEE 802.3 polynomial) checksums.
//!
//! The `.hpz` format detects corruption structurally (magic headers,
//! strict varint decoding, offset cross-checks); the dynamic journal
//! needs something stronger — a torn or bit-flipped write-ahead record
//! must be *provably* bad, not merely likely to fail decoding — so this
//! module provides the classic reflected CRC-32 with the table computed
//! at compile time. No dependencies, byte-at-a-time; plenty fast for
//! journal records, which are small compared to block payloads.

/// The reflected IEEE 802.3 polynomial.
const POLYNOMIAL: u32 = 0xedb8_8320;

/// The byte-indexed remainder table, computed at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 (IEEE) of `data` — the value `cksum`-style tools and zlib's
/// `crc32()` produce.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        let index = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"hyperpraw journal record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
