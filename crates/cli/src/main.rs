//! The `hyperpraw` command-line tool. See `hyperpraw --help`.

fn main() {
    let code = hyperpraw_cli::run(std::env::args().skip(1));
    std::process::exit(code);
}
