//! The `hyperpraw serve` daemon: a resident dynamic-partitioning session
//! behind a newline-delimited JSON protocol, with optional crash-safe
//! persistence and a concurrent TCP front end.
//!
//! One request per line, one response per line. The daemon holds at most
//! one [`DynamicSession`] at a time; `partition` (re)creates it, every
//! other operation queries or mutates it:
//!
//! ```text
//! → {"op": "partition", "parts": 4, "edges": [[0,1,2],[2,3]], "seed": 7}
//! ← {"ok": true, "report": {...}}
//! → {"op": "update", "updates": [{"op": "add_vertex"}, {"op": "add_edge", "pins": [4,0]}]}
//! ← {"ok": true, "update": {...}}
//! → {"op": "lookup", "vertex": 4}
//! ← {"ok": true, "vertex": 4, "part": 2}
//! → {"op": "report"}
//! ← {"ok": true, "report": {...}}
//! → {"op": "metrics"}
//! ← {"ok": true, "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}
//! → {"op": "shutdown"}
//! ← {"ok": true, "bye": true}
//! ```
//!
//! `partition` takes the hypergraph inline (`"edges"`, optional
//! `"vertices"` floor) or from disk (`"path"`), plus optional
//! `"algorithm"` (default `hyperpraw-basic`), `"seed"`, `"imbalance"` and
//! `"machine"` (profiles a preset into the cost matrix the aware
//! algorithm needs).
//!
//! # Durability (`--state-dir`)
//!
//! With `--state-dir DIR` the daemon keeps its session crash-safe via
//! [`hyperpraw::dynamic::StateDir`]: `partition` writes a full
//! binary snapshot, every accepted `update` batch is appended to a
//! write-ahead journal and fsynced *before* the response is sent, and a
//! fresh snapshot folds the journal in every `--snapshot-every` batches
//! (and on shutdown). On restart the daemon loads the latest valid
//! snapshot, replays the journal tail — truncating a torn or corrupt
//! final record rather than replaying it — and resumes with a
//! bit-identical assignment. The `report` op then carries a
//! `"recovery"` object with the replay stats. Persistence failures never
//! kill the daemon: they are logged and surfaced as
//! `"persistence_error"` in `report`, serving continues in memory, and
//! the journal is *disarmed* — a gapped journal must never be replayed,
//! so no further batch is appended until a full snapshot (attempted
//! immediately, then retried on every later update) provably re-syncs
//! the disk with the live session, at which point the error clears.
//!
//! # Observability
//!
//! The daemon keeps a live [`hyperpraw::telemetry::Registry`]: every
//! request increments a per-op counter (`serve.requests.<op>`) and a
//! per-op latency histogram (`serve.request.<op>_us`), the TCP front
//! end tracks queued-connection wait (`serve.queue.wait_us`) and active
//! connections (`serve.connections.active`), and persistence degradation
//! shows as `serve.persistence_errors` = 1 until a snapshot re-syncs the
//! disk. The same registry is threaded through the partitioning engine
//! (`engine.*`), the dynamic partitioner (`dynamic.*`) and the state
//! directory's journal/snapshot latencies, so one scrape sees the whole
//! stack. Read it with the `metrics` op (JSON, shown above) or — with
//! `--metrics-addr HOST:PORT` — as a Prometheus-style plain-text
//! exposition answered to any HTTP request on that address. The `report`
//! op additionally carries `uptime_secs`, per-op `requests` totals and
//! (with `--state-dir`) `batches_since_snapshot`.
//!
//! # Concurrency and robustness (TCP mode)
//!
//! The TCP front end accepts connections on a small worker pool
//! ([`run_on_workers`]); each connection gets its own worker, so an idle
//! client never blocks an active one, while requests serialise only on
//! the shared session lock for the duration of one request. A failed
//! `accept()` is logged and retried with exponential backoff — it does
//! not tear the daemon down. Per-connection reads carry a timeout
//! (`--read-timeout-secs`) so workers notice shutdown, and a connection
//! that stays completely silent for `IDLE_TIMEOUT_STRIKES` consecutive
//! timeout windows is disconnected — idle (or slow-loris) clients cannot
//! pin all `SERVE_WORKERS` workers forever and starve the accept
//! queue. Request lines are capped at `--max-line-bytes` (default
//! 16 MiB): an oversized line is drained and answered with a structured
//! error, keeping the connection alive. `shutdown` (from any client) and
//! SIGTERM/SIGINT both stop the daemon after flushing the journal and
//! writing a final snapshot.
//!
//! Responses embed the facade's [`hyperpraw::report::PartitionReport`] /
//! `UpdateReport` JSON,
//! compacted onto the line (the report writer escapes every newline inside
//! strings, so stripping layout whitespace is loss-free). Errors never
//! kill the session: every failure answers a structured
//! `{"ok": false, "error": {"message": "...", "offset": N}}` object —
//! `offset` is the parser's byte offset into the request line when the
//! line itself was malformed (invalid JSON, or not UTF-8 at all), and is
//! omitted for semantic errors — and the loop keeps reading. Transport is
//! TCP ([`std::net::TcpListener`]) or — for tests and supervisors that
//! prefer pipes — stdin/stdout via `--stdio`.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hyperpraw::api::{Algorithm, DynamicSession, PartitionJob};
use hyperpraw::dynamic::{GraphUpdate, StateDir};
use hyperpraw::hypergraph::{run_on_workers, HypergraphBuilder};
use hyperpraw::json::{self, JsonValue};
use hyperpraw::report::RecoveryReport;
use hyperpraw::telemetry::{Counter, Gauge, Histogram, Registry};

use crate::args::MachinePreset;
use crate::commands::{load_hypergraph, profile, CommandError};

/// Worker threads serving TCP connections (plus one acceptor).
const SERVE_WORKERS: usize = 4;

/// Consecutive read-timeout windows (each `--read-timeout-secs` long)
/// with zero bytes received before an idle connection is dropped to free
/// its worker for queued connections.
const IDLE_TIMEOUT_STRIKES: u32 = 4;

/// How the daemon runs: transport, durability and robustness knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP address to listen on (ignored with `stdio`).
    pub bind: String,
    /// Serve a single session over stdin/stdout instead of TCP.
    pub stdio: bool,
    /// Directory for the snapshot + write-ahead journal; `None` keeps
    /// the session in memory only.
    pub state_dir: Option<PathBuf>,
    /// Maximum accepted request-line size in bytes; longer lines answer
    /// a structured error and are drained, keeping the connection.
    pub max_line_bytes: usize,
    /// Per-connection read timeout in seconds — how quickly idle
    /// workers notice a daemon shutdown.
    pub read_timeout_secs: u64,
    /// Fold the journal into a fresh snapshot every N accepted batches.
    pub snapshot_every: u64,
    /// Address for the Prometheus-style plain-text metrics exposition
    /// (`GET` anything → `text/plain; version=0.0.4`); `None` disables
    /// the endpoint. Runs beside both transports, including `--stdio`.
    pub metrics_addr: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:7700".to_string(),
            stdio: false,
            state_dir: None,
            max_line_bytes: 16 * 1024 * 1024,
            read_timeout_secs: 30,
            snapshot_every: 64,
            metrics_addr: None,
        }
    }
}

/// Every request op the daemon answers, in protocol order — one
/// `serve.requests.<op>` counter and one `serve.request.<op>_us` latency
/// histogram each.
const OPS: [&str; 6] = [
    "partition",
    "update",
    "lookup",
    "report",
    "metrics",
    "shutdown",
];

/// The daemon's observability handles, all off one shared live
/// [`Registry`]. Cheap to clone (handles are `Arc`s over the same
/// atomics): the TCP front end holds a copy for queue-wait and
/// connection accounting while the session state holds another for
/// request accounting.
#[derive(Clone)]
struct ServeMetrics {
    registry: Registry,
    /// Daemon start, for the `report` op's uptime.
    started: Instant,
    /// Connections currently being served by a worker.
    active_connections: Gauge,
    /// Time accepted connections spent queued before a worker took them.
    queue_wait_us: Histogram,
    /// 1 while the on-disk state lags the session (journal disarmed),
    /// 0 once a snapshot re-syncs it.
    persist_errors: Gauge,
    /// Per-op request totals and wall-clock latency, [`OPS`] order.
    ops: [(&'static str, Counter, Histogram); 6],
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let ops = OPS.map(|name| {
            (
                name,
                registry.counter(&format!("serve.requests.{name}")),
                registry.histogram(&format!("serve.request.{name}_us")),
            )
        });
        Self {
            started: Instant::now(),
            active_connections: registry.gauge("serve.connections.active"),
            queue_wait_us: registry.histogram("serve.queue.wait_us"),
            persist_errors: registry.gauge("serve.persistence_errors"),
            ops,
            registry,
        }
    }

    /// The counter/histogram pair for a known op (`None` for ops the
    /// protocol rejects anyway).
    fn op(&self, name: &str) -> Option<(&Counter, &Histogram)> {
        self.ops
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, c, h)| (c, h))
    }
}

/// The daemon's shared mutable state: the resident session plus its
/// durable home (when `--state-dir` is given).
struct ServeState {
    session: Option<DynamicSession>,
    store: Option<StateDir>,
    /// The on-disk state may be missing acknowledged batches (an append
    /// or snapshot failed). While set, appends are refused — replaying a
    /// gapped journal would silently diverge — and every update instead
    /// retries a full snapshot until one re-syncs the disk.
    store_dirty: bool,
    persist_error: Option<String>,
    metrics: ServeMetrics,
}

/// Everything the TCP workers share. Queued connections carry their
/// accept time so the pop records how long they waited for a worker.
struct Shared {
    state: Mutex<ServeState>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
}

/// Set by the SIGTERM/SIGINT handler; polled by every serve loop.
static TERMINATED: AtomicBool = AtomicBool::new(false);

fn should_stop() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_terminate(_signum: i32) {
    TERMINATED.store(true, Ordering::SeqCst);
}

#[cfg(target_os = "linux")]
fn install_signal_handlers() {
    // glibc's signal() installs BSD (SA_RESTART) semantics: a blocking
    // stdin read would be transparently restarted, so an idle --stdio
    // daemon would not reach its should_stop() check (or write its final
    // snapshot) until the next input line. sigaction with empty flags
    // makes blocking reads fail with EINTR instead, which every serve
    // loop maps to a prompt shutdown check. Layout below matches glibc
    // and musl on every Linux target this workspace builds for:
    // handler, 1024-bit signal mask, flags, restorer.
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        restorer: usize,
    }
    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, old: *mut SigAction) -> i32;
    }
    let act = SigAction {
        handler: on_terminate as *const () as usize,
        mask: [0; 16],
        flags: 0, // notably: no SA_RESTART
        restorer: 0,
    };
    // SIGTERM = 15, SIGINT = 2 on every unix the toolchain targets.
    unsafe {
        sigaction(15, &act, std::ptr::null_mut());
        sigaction(2, &act, std::ptr::null_mut());
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
fn install_signal_handlers() {
    // Portable fallback for unixes whose sigaction layout we do not pin:
    // signal() restarts blocking reads, so an idle --stdio daemon may
    // only notice a signal at its next input line; TCP mode is unaffected
    // (socket reads carry a timeout and re-check should_stop()).
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_terminate);
        signal(2, on_terminate);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A mutex that survives a panicking holder: the state it guards is
/// repaired or replaced by whoever observes the poison, never abandoned.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Opens (or creates) the state directory and recovers any persisted
/// session; `None` state dir yields a purely in-memory daemon. The
/// store, any recovered session, and the recovery stats all bind their
/// instrumentation to the daemon's registry.
fn open_state(opts: &ServeOptions, metrics: ServeMetrics) -> Result<ServeState, CommandError> {
    let mut state = ServeState {
        session: None,
        store: None,
        store_dirty: false,
        persist_error: None,
        metrics,
    };
    let Some(dir) = &opts.state_dir else {
        return Ok(state);
    };
    let (mut store, recovered) =
        StateDir::open(dir).map_err(|e| CommandError::Io(format!("{}: {e}", dir.display())))?;
    store.set_registry(&state.metrics.registry);
    state.store = Some(store);
    if let Some(rec) = recovered {
        rec.stats.record_into(&state.metrics.registry);
        let report = RecoveryReport::from(rec.stats.clone());
        let mut session = DynamicSession::resume(&rec.meta, rec.partitioner, Some(report))
            .map_err(|e| {
                CommandError::Io(format!(
                    "cannot resume the session persisted in {}: {e}",
                    dir.display()
                ))
            })?;
        session.set_registry(&state.metrics.registry);
        eprintln!(
            "hyperpraw serve: recovered session from {} ({} journal batches replayed{})",
            dir.display(),
            rec.stats.batches_replayed,
            if rec.stats.torn_tail {
                format!(", {} torn bytes truncated", rec.stats.truncated_bytes)
            } else {
                String::new()
            }
        );
        state.session = Some(session);
    }
    Ok(state)
}

/// Writes a final snapshot when the on-disk state lags the session —
/// journalled batches since the last snapshot, or a dirty (gapped)
/// store; called on every shutdown path.
fn persist_final(state: &mut ServeState) {
    let ServeState {
        session,
        store,
        store_dirty,
        ..
    } = state;
    if let (Some(store), Some(session)) = (store.as_mut(), session.as_ref()) {
        if store.batches_since_snapshot() > 0 || *store_dirty {
            if let Err(e) = store.write_snapshot(&session.session_meta(), session.partitioner()) {
                eprintln!("hyperpraw serve: final snapshot failed: {e}");
            }
        }
    }
}

fn note_persist_error(persist_error: &mut Option<String>, what: &str, e: impl std::fmt::Display) {
    let message = format!("{what}: {e}");
    eprintln!("hyperpraw serve: persistence degraded — {message}");
    *persist_error = Some(message);
}

/// Re-syncs the on-disk state with the live session via a full snapshot
/// (which also rotates in a fresh, gap-free journal). Success proves
/// disk and memory agree again: the dirty flag and the advertised
/// persistence error both clear. Failure (re-)marks the store dirty so
/// no append can ever follow a gap.
fn resync_snapshot(
    store: &mut StateDir,
    session: &DynamicSession,
    store_dirty: &mut bool,
    persist_error: &mut Option<String>,
    what: &str,
) {
    match store.write_snapshot(&session.session_meta(), session.partitioner()) {
        Ok(()) => {
            *store_dirty = false;
            *persist_error = None;
        }
        Err(e) => {
            *store_dirty = true;
            note_persist_error(persist_error, what, e);
        }
    }
}

/// Runs the daemon until a `shutdown` request, SIGTERM/SIGINT, or EOF in
/// `--stdio` mode.
pub fn serve(opts: &ServeOptions) -> Result<(), CommandError> {
    install_signal_handlers();
    if opts.stdio {
        let metrics = ServeMetrics::new();
        let endpoint = start_metrics_endpoint(opts, &metrics)?;
        let mut state = open_state(opts, metrics)?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let outcome = session_loop(stdin.lock(), &mut stdout.lock(), &mut state, opts);
        persist_final(&mut state);
        stop_metrics_endpoint(endpoint);
        outcome?;
        return Ok(());
    }
    let listener = TcpListener::bind(&opts.bind)
        .map_err(|e| CommandError::Io(format!("cannot bind {}: {e}", opts.bind)))?;
    serve_on(listener, opts)
}

/// Runs the TCP daemon on an already-bound listener (tests and benches
/// bind port 0 and pass the listener in to learn the actual port).
pub fn serve_on(listener: TcpListener, opts: &ServeOptions) -> Result<(), CommandError> {
    let metrics = ServeMetrics::new();
    let endpoint = start_metrics_endpoint(opts, &metrics)?;
    let state = open_state(opts, metrics.clone())?;
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "hyperpraw serve: listening on {}",
        local.as_deref().unwrap_or(&opts.bind)
    );
    listener
        .set_nonblocking(true)
        .map_err(|e| CommandError::Io(e.to_string()))?;
    let shared = Shared {
        state: Mutex::new(state),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        metrics,
    };
    run_on_workers(SERVE_WORKERS + 1, |id| {
        if id == 0 {
            accept_loop(&listener, &shared, opts);
        } else {
            worker_loop(&shared, opts);
        }
    });
    persist_final(&mut lock(&shared.state));
    stop_metrics_endpoint(endpoint);
    Ok(())
}

/// A running `--metrics-addr` exposition endpoint: its thread plus the
/// flag that stops it.
type MetricsEndpoint = Option<(std::thread::JoinHandle<()>, Arc<AtomicBool>)>;

/// Binds and spawns the Prometheus-style exposition endpoint when
/// `--metrics-addr` was given. A bind failure is a startup error (a
/// daemon asked to expose metrics but silently not doing so would be
/// worse); per-scrape failures later are logged and dropped.
fn start_metrics_endpoint(
    opts: &ServeOptions,
    metrics: &ServeMetrics,
) -> Result<MetricsEndpoint, CommandError> {
    let Some(addr) = &opts.metrics_addr else {
        return Ok(None);
    };
    let listener = TcpListener::bind(addr)
        .map_err(|e| CommandError::Io(format!("cannot bind metrics endpoint {addr}: {e}")))?;
    eprintln!(
        "hyperpraw serve: metrics exposition on http://{}",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone())
    );
    listener
        .set_nonblocking(true)
        .map_err(|e| CommandError::Io(e.to_string()))?;
    let registry = metrics.registry.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::spawn(move || metrics_endpoint_loop(listener, registry, stop_flag));
    Ok(Some((handle, stop)))
}

fn stop_metrics_endpoint(endpoint: MetricsEndpoint) {
    if let Some((handle, stop)) = endpoint {
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
}

/// Serves Prometheus text-format scrapes until the daemon stops. Every
/// request — regardless of method or path — answers the current
/// snapshot; a scrape endpoint has exactly one resource.
fn metrics_endpoint_loop(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) && !should_stop() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) = answer_scrape(stream, &registry) {
                    eprintln!("hyperpraw serve: metrics scrape failed: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("hyperpraw serve: metrics accept failed: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

/// Answers one HTTP scrape: drain the request head, write the
/// exposition. The hand-rolled response is deliberate — the workspace
/// is dependency-free, and a scrape endpoint needs nothing more than
/// status line + three headers.
fn answer_scrape(stream: TcpStream, registry: &Registry) -> io::Result<()> {
    // The accepted stream must block (with a cap) while the client
    // finishes sending its request head.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = registry.render_prometheus();
    let mut writer = stream;
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    writer.flush()
}

/// Accepts connections until shutdown. Accept errors are logged and
/// retried with exponential backoff — one bad `accept()` (fd pressure,
/// a reset in the backlog) must not kill a daemon holding live state.
fn accept_loop(listener: &TcpListener, shared: &Shared, opts: &ServeOptions) {
    let mut backoff = Duration::from_millis(50);
    while !shared.shutdown.load(Ordering::SeqCst) && !should_stop() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = Duration::from_millis(50);
                // One-line requests and responses: Nagle + delayed ACK
                // would add ~40ms to every round trip.
                let _ = stream.set_nodelay(true);
                let _ = stream
                    .set_read_timeout(Some(Duration::from_secs(opts.read_timeout_secs.max(1))));
                lock(&shared.queue).push_back((stream, Instant::now()));
                shared.available.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("hyperpraw serve: accept failed: {e}; retrying in {backoff:?}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
    shared.available.notify_all();
}

/// One worker: pop a connection, serve it to completion, repeat.
fn worker_loop(shared: &Shared, opts: &ServeOptions) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) || should_stop() {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let Some((stream, enqueued)) = stream else {
            return;
        };
        shared
            .metrics
            .queue_wait_us
            .record_duration(enqueued.elapsed());
        shared.metrics.active_connections.inc();
        let outcome = connection(stream, shared, opts);
        shared.metrics.active_connections.dec();
        if let Err(e) = outcome {
            eprintln!("hyperpraw serve: connection error: {e}");
        }
    }
}

/// Serves one TCP connection until it closes, goes silent for
/// [`IDLE_TIMEOUT_STRIKES`] read-timeout windows, the daemon shuts
/// down, or transport IO fails.
fn connection(stream: TcpStream, shared: &Shared, opts: &ServeOptions) -> io::Result<()> {
    let reader = stream.try_clone()?;
    let mut writer = stream;
    let mut lines = LineReader::new(BufReader::new(reader), opts.max_line_bytes);
    // Consecutive timeout windows with zero bytes received. A timeout
    // only fires when a whole `--read-timeout-secs` window passed with
    // nothing to read, so any traffic at all resets the count.
    let mut idle_strikes = 0u32;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || should_stop() {
            return Ok(());
        }
        match lines.next_line() {
            Line::Eof => return Ok(()),
            Line::TimedOut => {
                idle_strikes += 1;
                if idle_strikes >= IDLE_TIMEOUT_STRIKES {
                    // Free the worker: with a bounded pool, idle clients
                    // must not be able to starve queued connections.
                    return Ok(());
                }
                continue;
            }
            Line::Io(e) => return Err(e),
            Line::TooLong => {
                idle_strikes = 0;
                let response = error_response(&ServeError::from(format!(
                    "request line exceeds {} bytes",
                    opts.max_line_bytes
                )));
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
            Line::Data(buf) => {
                idle_strikes = 0;
                let Some((response, shutdown)) =
                    respond_bytes(&buf, &mut lock(&shared.state), opts)
                else {
                    continue;
                };
                writeln!(writer, "{response}")?;
                writer.flush()?;
                if shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.available.notify_all();
                    return Ok(());
                }
            }
        }
    }
}

/// Serves one session over any line-oriented transport with a fresh
/// in-memory state (the persistence-aware daemon path goes through
/// [`serve`]); returns whether a `shutdown` request ended it (as opposed
/// to EOF). Kept for embedding and tests.
pub fn session<R: BufRead, W: Write>(input: R, out: &mut W) -> Result<bool, CommandError> {
    let opts = ServeOptions::default();
    let mut state = fresh_state();
    session_loop(input, out, &mut state, &opts)
}

/// A purely in-memory [`ServeState`] with its own live registry.
fn fresh_state() -> ServeState {
    ServeState {
        session: None,
        store: None,
        store_dirty: false,
        persist_error: None,
        metrics: ServeMetrics::new(),
    }
}

/// The single-transport serve loop (stdio mode and [`session`]).
///
/// Lines are read as raw bytes, so a request that is not valid UTF-8 gets
/// a structured error response (with the byte offset where the encoding
/// broke) instead of tearing down the whole connection; only transport
/// I/O failures end the session.
fn session_loop<R: BufRead, W: Write>(
    input: R,
    out: &mut W,
    state: &mut ServeState,
    opts: &ServeOptions,
) -> Result<bool, CommandError> {
    let mut lines = LineReader::new(input, opts.max_line_bytes);
    loop {
        if should_stop() {
            return Ok(false);
        }
        let (response, shutdown) = match lines.next_line() {
            Line::Eof => return Ok(false),
            Line::TimedOut => continue,
            Line::Io(e) => return Err(CommandError::Io(e.to_string())),
            Line::TooLong => (
                error_response(&ServeError::from(format!(
                    "request line exceeds {} bytes",
                    opts.max_line_bytes
                ))),
                false,
            ),
            Line::Data(buf) => match respond_bytes(&buf, state, opts) {
                Some(reply) => reply,
                None => continue,
            },
        };
        writeln!(out, "{response}").map_err(|e| CommandError::Io(e.to_string()))?;
        out.flush().map_err(|e| CommandError::Io(e.to_string()))?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Handles one raw request line; `None` for blank lines (no response).
fn respond_bytes(
    buf: &[u8],
    state: &mut ServeState,
    opts: &ServeOptions,
) -> Option<(String, bool)> {
    match std::str::from_utf8(buf) {
        Ok(line) if line.trim().is_empty() => None,
        Ok(line) => Some(respond(line, state, opts)),
        Err(e) => Some((
            error_response(&ServeError {
                message: "bad request: line is not valid UTF-8".to_string(),
                offset: Some(e.valid_up_to()),
            }),
            false,
        )),
    }
}

/// Handles one request line; never fails the session (errors become
/// `{"ok": false, ...}` responses).
fn respond(line: &str, state: &mut ServeState, opts: &ServeOptions) -> (String, bool) {
    match handle(line, state, opts) {
        Ok(Reply::Payload(body)) => (format!("{{\"ok\": true, {body}}}"), false),
        Ok(Reply::Shutdown) => ("{\"ok\": true, \"bye\": true}".to_string(), true),
        Err(error) => (error_response(&error), false),
    }
}

/// A request failure: what went wrong, plus — for malformed lines — the
/// parser's byte offset into the request.
struct ServeError {
    message: String,
    offset: Option<usize>,
}

impl From<String> for ServeError {
    fn from(message: String) -> Self {
        ServeError {
            message,
            offset: None,
        }
    }
}

impl From<&str> for ServeError {
    fn from(message: &str) -> Self {
        ServeError::from(message.to_string())
    }
}

/// Serialises a [`ServeError`] into the protocol's structured error
/// object; `offset` appears only when the request line itself failed to
/// parse.
fn error_response(error: &ServeError) -> String {
    let mut out = format!(
        "{{\"ok\": false, \"error\": {{\"message\": {}",
        escape(&error.message)
    );
    if let Some(offset) = error.offset {
        out.push_str(&format!(", \"offset\": {offset}"));
    }
    out.push_str("}}");
    out
}

enum Reply {
    Payload(String),
    Shutdown,
}

fn handle(line: &str, state: &mut ServeState, opts: &ServeOptions) -> Result<Reply, ServeError> {
    let request = json::parse(line).map_err(|e| ServeError {
        message: format!("bad request: {}", e.message),
        offset: Some(e.offset),
    })?;
    let op = request
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field 'op'")?;
    // Clone the handles before handle_op borrows the state mutably;
    // they are Arcs over the same cells. Errors count too — the totals
    // are requests received, not requests satisfied.
    let timed = state.metrics.op(op).map(|(c, h)| (c.clone(), h.clone()));
    let started = Instant::now();
    let result = handle_op(op, &request, state, opts);
    state
        .metrics
        .persist_errors
        .set(i64::from(state.persist_error.is_some()));
    if let Some((requests, latency)) = timed {
        requests.inc();
        latency.record_duration(started.elapsed());
    }
    result
}

/// Dispatches one parsed request; split from [`handle`] so the wrapper
/// can time every op uniformly.
fn handle_op(
    op: &str,
    request: &JsonValue,
    state: &mut ServeState,
    opts: &ServeOptions,
) -> Result<Reply, ServeError> {
    match op {
        "partition" => {
            let report = start_session(request, state)?;
            let ServeState {
                session,
                store,
                store_dirty,
                persist_error,
                ..
            } = state;
            if let (Some(store), Some(session)) = (store.as_mut(), session.as_ref()) {
                resync_snapshot(
                    store,
                    session,
                    store_dirty,
                    persist_error,
                    "initial snapshot",
                );
            }
            Ok(Reply::Payload(format!("\"report\": {report}")))
        }
        "update" => {
            let updates = parse_updates(request)?;
            let ServeState {
                session,
                store,
                store_dirty,
                persist_error,
                ..
            } = state;
            let session = session
                .as_mut()
                .ok_or("no session: send 'partition' first")?;
            let update = session.update(&updates).map_err(|e| e.to_string())?;
            if let Some(store) = store.as_mut() {
                // The batch was accepted: journal it (fsynced) before the
                // client sees the acknowledgement, folding into a fresh
                // snapshot once the replay tail gets long. Any failure
                // leaves the disk behind the session, so the journal is
                // disarmed until a full snapshot re-syncs it — appending
                // past a gap would replay a silently divergent history.
                if *store_dirty {
                    resync_snapshot(
                        store,
                        session,
                        store_dirty,
                        persist_error,
                        "resync snapshot",
                    );
                } else if let Err(e) = store.append(&updates) {
                    *store_dirty = true;
                    eprintln!(
                        "hyperpraw serve: journal append failed ({e}); snapshotting to re-sync"
                    );
                    resync_snapshot(store, session, store_dirty, persist_error, "journal append");
                } else if store.batches_since_snapshot() >= opts.snapshot_every.max(1) {
                    resync_snapshot(
                        store,
                        session,
                        store_dirty,
                        persist_error,
                        "periodic snapshot",
                    );
                }
            }
            Ok(Reply::Payload(format!(
                "\"update\": {}",
                compact(&update.to_json())
            )))
        }
        "lookup" => {
            let session = state
                .session
                .as_ref()
                .ok_or("no session: send 'partition' first")?;
            let vertex = field_u64(request, "vertex")?;
            let vertex = u32::try_from(vertex).map_err(|_| "'vertex' out of range")?;
            let known = session.hypergraph().num_vertices();
            if vertex as usize >= known {
                return Err(
                    format!("vertex {vertex} outside the session's id space (0..{known})").into(),
                );
            }
            // In-range but tombstoned ids answer null: the id existed,
            // its vertex is gone.
            let part = match session.lookup(vertex) {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            Ok(Reply::Payload(format!(
                "\"vertex\": {vertex}, \"part\": {part}"
            )))
        }
        "report" => {
            let session = state
                .session
                .as_ref()
                .ok_or("no session: send 'partition' first")?;
            let mut body = format!("\"report\": {}", compact(&session.report().to_json()));
            if let Some(recovery) = session.recovery() {
                body.push_str(&format!(", \"recovery\": {}", recovery.to_json()));
            }
            if let Some(err) = &state.persist_error {
                body.push_str(&format!(", \"persistence_error\": {}", escape(err)));
            }
            body.push_str(&format!(
                ", \"uptime_secs\": {:.3}",
                state.metrics.started.elapsed().as_secs_f64()
            ));
            // Requests answered so far, per op. The `report` being built
            // has not been counted yet — totals are through the previous
            // request.
            body.push_str(", \"requests\": {");
            for (i, (name, requests, _)) in state.metrics.ops.iter().enumerate() {
                if i > 0 {
                    body.push_str(", ");
                }
                body.push_str(&format!("\"{name}\": {}", requests.get()));
            }
            body.push('}');
            if let Some(store) = &state.store {
                body.push_str(&format!(
                    ", \"batches_since_snapshot\": {}",
                    store.batches_since_snapshot()
                ));
            }
            Ok(Reply::Payload(body))
        }
        "metrics" => Ok(Reply::Payload(format!(
            "\"metrics\": {}",
            state.metrics.registry.render_json()
        ))),
        "shutdown" => Ok(Reply::Shutdown),
        other => Err(format!(
            "unknown op '{other}' (expected partition | update | lookup | report | metrics | shutdown)"
        )
        .into()),
    }
}

/// Builds the hypergraph named by a `partition` request and starts (or
/// replaces) the resident session; returns the compacted initial report.
fn start_session(request: &JsonValue, state: &mut ServeState) -> Result<String, String> {
    let parts = field_u64(request, "parts")?;
    let parts = u32::try_from(parts).map_err(|_| "'parts' out of range")?;
    let hg = match (request.get("edges"), request.get("path")) {
        (Some(edges), None) => inline_hypergraph(edges, request)?,
        (None, Some(path)) => {
            let path = path.as_str().ok_or("'path' must be a string")?;
            load_hypergraph(Path::new(path)).map_err(|e| e.to_string())?
        }
        (Some(_), Some(_)) => return Err("give either 'edges' or 'path', not both".into()),
        (None, None) => return Err("missing hypergraph: give 'edges' or 'path'".into()),
    };
    let algorithm = match request.get("algorithm").map(|v| {
        v.as_str()
            .ok_or("'algorithm' must be a string")
            .and_then(|s| Algorithm::parse(s).map_err(|_| "unknown 'algorithm'"))
    }) {
        Some(result) => result.map_err(String::from)?,
        None => Algorithm::HyperPrawBasic,
    };
    let seed = match request.get("seed") {
        Some(seed) => seed
            .as_u64()
            .ok_or("'seed' must be a non-negative integer")?,
        None => 2019,
    };
    let mut job = PartitionJob::new(algorithm)
        .partitions(parts)
        .seed(seed)
        .registry(&state.metrics.registry);
    if let Some(machine) = request.get("machine") {
        let preset = machine
            .as_str()
            .ok_or("'machine' must be a string")
            .and_then(|s| MachinePreset::parse(s).map_err(|_| "unknown 'machine' preset"))?;
        let (_, cost) = profile(preset, parts as usize, seed);
        job = job.cost(cost);
    }
    if let Some(tol) = request.get("imbalance") {
        let tol = tol.as_f64().ok_or("'imbalance' must be a number")?;
        if !tol.is_finite() || tol < 1.0 {
            return Err("'imbalance' must be a finite number >= 1.0".into());
        }
        job = job.imbalance_tolerance(tol);
    }
    let session = job.run_dynamic(&hg).map_err(|e| e.to_string())?;
    let report = compact(&session.initial_report().to_json());
    state.session = Some(session);
    Ok(report)
}

/// An inline hypergraph: `"edges": [[pins...], ...]` plus an optional
/// `"vertices": N` floor for trailing isolated vertices.
fn inline_hypergraph(
    edges: &JsonValue,
    request: &JsonValue,
) -> Result<hyperpraw::hypergraph::Hypergraph, String> {
    let edges = edges.as_array().ok_or("'edges' must be an array")?;
    let mut builder = HypergraphBuilder::with_capacity(0, edges.len());
    builder.name("serve".to_string());
    for (i, edge) in edges.iter().enumerate() {
        let pins = edge
            .as_array()
            .ok_or_else(|| format!("edge {i} must be an array of vertex ids"))?;
        let pins: Vec<u32> = pins
            .iter()
            .map(|p| {
                p.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| format!("edge {i} holds a non-vertex-id pin"))
            })
            .collect::<Result<_, _>>()?;
        builder.add_hyperedge(pins);
    }
    if let Some(n) = request.get("vertices") {
        let n = n
            .as_u64()
            .ok_or("'vertices' must be a non-negative integer")?;
        if n > u64::from(u32::MAX) {
            return Err("'vertices' out of range (vertex ids are u32)".into());
        }
        builder.ensure_vertices(n as usize);
    }
    Ok(builder.build())
}

/// Decodes the `update` request's batch into [`GraphUpdate`]s.
fn parse_updates(request: &JsonValue) -> Result<Vec<GraphUpdate>, String> {
    let updates = request
        .get("updates")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field 'updates'")?;
    updates
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let op = u
                .get("op")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("update {i}: missing string field 'op'"))?;
            let vertex = || -> Result<u32, String> {
                let v = field_u64(u, "vertex").map_err(|e| format!("update {i}: {e}"))?;
                u32::try_from(v).map_err(|_| format!("update {i}: 'vertex' out of range"))
            };
            let edge = || -> Result<u32, String> {
                let e = field_u64(u, "edge").map_err(|e| format!("update {i}: {e}"))?;
                u32::try_from(e).map_err(|_| format!("update {i}: 'edge' out of range"))
            };
            let weight = u
                .get("weight")
                .map(|w| {
                    w.as_f64()
                        .ok_or_else(|| format!("update {i}: 'weight' must be a number"))
                })
                .transpose()?
                .unwrap_or(1.0);
            // Non-finite or negative weights would poison the load
            // accounting and are rejected by the snapshot codec; refuse
            // them at the door.
            if !weight.is_finite() || weight < 0.0 {
                return Err(format!(
                    "update {i}: 'weight' must be finite and non-negative"
                ));
            }
            match op {
                "add_vertex" => Ok(GraphUpdate::AddVertex { weight }),
                "remove_vertex" => Ok(GraphUpdate::RemoveVertex { vertex: vertex()? }),
                "add_edge" => {
                    let pins = u
                        .get("pins")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("update {i}: missing array field 'pins'"))?
                        .iter()
                        .map(|p| {
                            p.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or_else(|| format!("update {i}: bad pin"))
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    Ok(GraphUpdate::AddHyperedge { pins, weight })
                }
                "remove_edge" => Ok(GraphUpdate::RemoveHyperedge { edge: edge()? }),
                "add_pin" => Ok(GraphUpdate::AddPin {
                    edge: edge()?,
                    vertex: vertex()?,
                }),
                "remove_pin" => Ok(GraphUpdate::RemovePin {
                    edge: edge()?,
                    vertex: vertex()?,
                }),
                other => Err(format!("update {i}: unknown op '{other}'")),
            }
        })
        .collect()
}

fn field_u64(value: &JsonValue, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field '{key}'"))
}

// ---------------------------------------------------------------------------
// Capped, timeout-aware line reading
// ---------------------------------------------------------------------------

/// One read attempt's outcome.
enum Line {
    /// A complete request line (newline stripped).
    Data(Vec<u8>),
    /// The line passed the size cap; it has been / is being drained.
    /// Reported exactly once per oversized line.
    TooLong,
    /// The transport timed out (or was interrupted by a signal) with a
    /// partial line buffered; call again — the partial line is kept.
    TimedOut,
    /// Clean end of input.
    Eof,
    /// Transport failure.
    Io(io::Error),
}

/// A resumable line reader with a hard per-line size cap.
///
/// Unlike [`BufRead::read_until`], a read timeout does not lose the
/// partially received line (it stays buffered for the next call), and a
/// line over the cap is reported once, then silently drained to its
/// newline without ever buffering it — a client cannot make the daemon
/// allocate more than the cap per connection.
struct LineReader<R> {
    input: R,
    buf: Vec<u8>,
    discarding: bool,
    max: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(input: R, max: usize) -> Self {
        Self {
            input,
            buf: Vec::new(),
            discarding: false,
            max,
        }
    }

    fn next_line(&mut self) -> Line {
        loop {
            let (consumed, found_newline) = {
                let available = match self.input.fill_buf() {
                    Ok(b) => b,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                                | io::ErrorKind::Interrupted
                        ) =>
                    {
                        return Line::TimedOut
                    }
                    Err(e) => return Line::Io(e),
                };
                if available.is_empty() {
                    if self.discarding {
                        self.discarding = false;
                        return Line::Eof;
                    }
                    if self.buf.is_empty() {
                        return Line::Eof;
                    }
                    // A trailing line without a newline still counts.
                    return Line::Data(std::mem::take(&mut self.buf));
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(idx) => {
                        if !self.discarding {
                            self.buf.extend_from_slice(&available[..idx]);
                        }
                        (idx + 1, true)
                    }
                    None => {
                        if !self.discarding {
                            self.buf.extend_from_slice(available);
                        }
                        (available.len(), false)
                    }
                }
            };
            self.input.consume(consumed);
            if found_newline {
                if self.discarding {
                    // The oversized line (already reported) just ended.
                    self.discarding = false;
                    continue;
                }
                if self.buf.len() > self.max {
                    self.buf.clear();
                    return Line::TooLong;
                }
                return Line::Data(std::mem::take(&mut self.buf));
            }
            if !self.discarding && self.buf.len() > self.max {
                self.discarding = true;
                self.buf.clear();
                return Line::TooLong;
            }
        }
    }
}

/// Compacts the pretty-printed report JSON onto one line. The report
/// writer escapes newlines inside strings, so every raw newline in its
/// output is layout — dropping the indentation after it cannot corrupt a
/// value.
fn compact(pretty: &str) -> String {
    let mut out = String::with_capacity(pretty.len());
    for (i, line) in pretty.lines().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(line.trim_start());
    }
    out
}

/// Escapes a message into a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Read};
    use std::net::TcpStream;

    fn drive(requests: &str) -> (Vec<String>, bool) {
        drive_bytes(requests.as_bytes())
    }

    fn drive_bytes(requests: &[u8]) -> (Vec<String>, bool) {
        let mut out = Vec::new();
        let shutdown = session(Cursor::new(requests.to_vec()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(|l| l.to_string()).collect(), shutdown)
    }

    #[test]
    fn full_round_trip_over_pipes() {
        let (lines, shutdown) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, ",
            "\"edges\": [[0,1,2],[2,3],[3,4,5],[5,0]], \"vertices\": 6}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, ",
            "{\"op\": \"add_edge\", \"pins\": [6, 0, 1]}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 6}\n",
            "{\"op\": \"report\"}\n",
            "{\"op\": \"shutdown\"}\n",
        ));
        assert!(shutdown);
        assert_eq!(lines.len(), 5);
        for line in &lines {
            // Every response is itself one valid JSON document on one line.
            hyperpraw::json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"ok\": true") && lines[0].contains("\"report\""));
        assert!(lines[1].contains("\"update\"") && lines[1].contains("\"migration\""));
        let lookup = hyperpraw::json::parse(&lines[2]).unwrap();
        assert_eq!(lookup.get("vertex").and_then(JsonValue::as_u64), Some(6));
        assert!(lookup.get("part").and_then(JsonValue::as_u64).is_some());
        assert!(lines[3].contains("\"quality\": \"evaluated\""));
        assert_eq!(lines[4], "{\"ok\": true, \"bye\": true}");
    }

    #[test]
    fn errors_keep_the_session_alive() {
        let (lines, shutdown) = drive(concat!(
            "not json\n",
            "{\"op\": \"lookup\", \"vertex\": 0}\n",
            "{\"op\": \"mystery\"}\n",
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"remove_vertex\", \"vertex\": 99}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 1}\n",
        ));
        assert!(!shutdown, "EOF, not shutdown");
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"ok\": false") && lines[0].contains("bad request"));
        assert!(lines[1].contains("no session"));
        assert!(lines[2].contains("unknown op"));
        assert!(lines[3].contains("\"ok\": true"));
        assert!(lines[4].contains("\"ok\": false"), "{}", lines[4]);
        assert!(lines[5].contains("\"part\":"));
    }

    #[test]
    fn malformed_lines_answer_structured_errors_with_offsets() {
        let mut requests = Vec::new();
        requests.extend_from_slice(b"[true, fals]\n");
        requests.extend_from_slice(b"{\"op\": \xff\xfe}\n"); // not UTF-8 at byte 7
        requests.extend_from_slice(b"{\"op\": \"shutdown\"}\n");
        let (lines, shutdown) = drive_bytes(&requests);
        assert!(
            shutdown,
            "garbage must not tear down the session: {lines:#?}"
        );
        assert_eq!(lines.len(), 3);

        let bad_json = json::parse(&lines[0]).unwrap();
        assert_eq!(bad_json.get("ok").and_then(JsonValue::as_bool), Some(false));
        let error = bad_json.get("error").expect("structured error object");
        let message = error.get("message").and_then(JsonValue::as_str).unwrap();
        assert!(message.contains("bad request"), "{message}");
        let offset = error.get("offset").and_then(JsonValue::as_u64).unwrap();
        assert!(offset >= 7, "offset {offset} points at the bad token");

        let bad_utf8 = json::parse(&lines[1]).unwrap();
        let error = bad_utf8.get("error").expect("structured error object");
        let message = error.get("message").and_then(JsonValue::as_str).unwrap();
        assert!(message.contains("UTF-8"), "{message}");
        assert_eq!(
            error.get("offset").and_then(JsonValue::as_u64),
            Some(7),
            "offset is where the encoding broke"
        );

        assert_eq!(lines[2], "{\"ok\": true, \"bye\": true}");
    }

    #[test]
    fn semantic_errors_carry_no_offset() {
        let (lines, _) = drive("{\"op\": \"lookup\", \"vertex\": 0}\n");
        let v = json::parse(&lines[0]).unwrap();
        let error = v.get("error").expect("structured error object");
        assert!(error
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("no session"));
        assert_eq!(error.get("offset"), None);
    }

    #[test]
    fn tombstoned_lookups_answer_null() {
        let (lines, _) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1,2],[2,3,4],[4,5,0]]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"remove_vertex\", \"vertex\": 3}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 3}\n",
        ));
        assert!(lines[2].contains("\"part\": null"), "{}", lines[2]);
    }

    #[test]
    fn out_of_range_lookups_answer_structured_errors() {
        let (lines, _) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1,2],[2,3]]}\n",
            "{\"op\": \"lookup\", \"vertex\": 4}\n",
            "{\"op\": \"lookup\", \"vertex\": 4000000000}\n",
            "{\"op\": \"lookup\", \"vertex\": 3}\n",
        ));
        assert!(
            lines[1].contains("\"ok\": false") && lines[1].contains("outside the session"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"ok\": false"), "{}", lines[2]);
        assert!(lines[3].contains("\"ok\": true"), "session still live");
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        let (lines, _) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\", \"weight\": 1e999}]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\", \"weight\": -1}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 0}\n",
        ));
        assert!(lines[1].contains("finite"), "{}", lines[1]);
        assert!(lines[2].contains("finite"), "{}", lines[2]);
        assert!(lines[3].contains("\"ok\": true"), "session survives");
    }

    #[test]
    fn oversized_lines_answer_an_error_and_keep_the_connection() {
        let mut requests = Vec::new();
        requests.extend_from_slice(
            b"{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n",
        );
        requests.extend_from_slice(&vec![b'x'; 4096]);
        requests.push(b'\n');
        requests.extend_from_slice(b"{\"op\": \"lookup\", \"vertex\": 0}\n");

        let opts = ServeOptions {
            max_line_bytes: 1024,
            ..ServeOptions::default()
        };
        let mut state = fresh_state();
        let mut out = Vec::new();
        session_loop(Cursor::new(requests), &mut out, &mut state, &opts).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[1].contains("exceeds 1024 bytes"),
            "one structured error for the oversized line: {}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"part\":"),
            "connection kept: {}",
            lines[2]
        );
    }

    #[test]
    fn line_reader_drains_without_buffering() {
        // 3 MiB line under a 1 KiB cap through a 64-byte reader: at most
        // cap+read-chunk bytes may ever be buffered.
        let mut input = vec![b'a'; 3 << 20];
        input.push(b'\n');
        input.extend_from_slice(b"next\n");
        let mut reader = LineReader::new(BufReader::with_capacity(64, Cursor::new(input)), 1024);
        assert!(matches!(reader.next_line(), Line::TooLong));
        assert!(reader.buf.capacity() <= 2048, "drained, not buffered");
        match reader.next_line() {
            Line::Data(d) => assert_eq!(d, b"next"),
            other => panic!("expected the next line, got {}", line_name(&other)),
        }
        assert!(matches!(reader.next_line(), Line::Eof));
    }

    fn line_name(l: &Line) -> &'static str {
        match l {
            Line::Data(_) => "Data",
            Line::TooLong => "TooLong",
            Line::TimedOut => "TimedOut",
            Line::Eof => "Eof",
            Line::Io(_) => "Io",
        }
    }

    /// A dirty store (an earlier append or snapshot failure) must never
    /// append again — the next accepted batch re-syncs the disk with a
    /// full snapshot instead, clearing the advertised error, and the
    /// re-synced directory recovers to the live assignment.
    #[test]
    fn dirty_store_resyncs_via_snapshot_and_clears_the_error() {
        let dir = std::env::temp_dir().join(format!("hpraw-serve-dirty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            state_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let mut state = open_state(&opts, ServeMetrics::new()).unwrap();
        let mut out = Vec::new();
        session_loop(
            Cursor::new(
                b"{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, \"edges\": [[0,1,2],[2,3],[3,4,0]]}\n"
                    .to_vec(),
            ),
            &mut out,
            &mut state,
            &opts,
        )
        .unwrap();
        assert!(!state.store_dirty);

        // Simulate a journal-append failure having disarmed the store.
        state.store_dirty = true;
        state.persist_error = Some("journal append: injected".to_string());

        let mut out = Vec::new();
        session_loop(
            Cursor::new(
                concat!(
                    "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, ",
                    "{\"op\": \"add_edge\", \"pins\": [5, 0]}]}\n",
                    "{\"op\": \"report\"}\n",
                )
                .as_bytes()
                .to_vec(),
            ),
            &mut out,
            &mut state,
            &opts,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"ok\": true"), "{}", lines[0]);
        assert!(
            !state.store_dirty,
            "a successful snapshot re-arms the store"
        );
        assert_eq!(state.persist_error, None);
        // The telemetry section always carries the `serve.persistence_errors`
        // gauge, so look for the report's own error field specifically.
        assert!(
            !lines[1].contains("\"persistence_error\":"),
            "the error must clear once disk and memory agree: {}",
            lines[1]
        );

        // The re-sync captured the batch the journal never saw: a fresh
        // recovery answers identically to the live session.
        let live: Vec<Option<u32>> = (0..6)
            .map(|v| state.session.as_ref().unwrap().lookup(v))
            .collect();
        drop(state);
        let (_, recovered) = StateDir::open(&dir).unwrap();
        let rec = recovered.expect("state must recover");
        let report = RecoveryReport::from(rec.stats.clone());
        let resumed = DynamicSession::resume(&rec.meta, rec.partitioner, Some(report)).unwrap();
        for v in 0..6u32 {
            assert_eq!(resumed.lookup(v), live[v as usize], "vertex {v}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A connection that never sends a byte is hung up on after
    /// [`IDLE_TIMEOUT_STRIKES`] read-timeout windows, and the daemon
    /// keeps serving new clients afterwards — idle clients cannot pin
    /// the worker pool.
    #[test]
    fn idle_connections_are_disconnected_to_free_workers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = ServeOptions {
            read_timeout_secs: 1,
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || serve_on(listener, &opts));

        let idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut buf = [0u8; 1];
        // Blocks until the server closes the idle connection (~strikes
        // × 1s); a zero-byte read is that hang-up.
        let n = (&idle)
            .read(&mut buf)
            .expect("server must hang up, not time us out");
        assert_eq!(n, 0, "expected EOF from the server side");

        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(
            b"{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n{\"op\": \"shutdown\"}\n",
        )
        .unwrap();
        let mut responses = String::new();
        BufReader::new(&busy)
            .read_to_string(&mut responses)
            .unwrap();
        assert!(responses.contains("\"bye\""), "{responses}");
        server.join().unwrap().unwrap();
    }

    /// Two clients at once: an idle connection (A) must not block a full
    /// round trip on another (B) — connections are not served serially.
    #[test]
    fn concurrent_clients_are_not_serialised() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = ServeOptions {
            read_timeout_secs: 1,
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || serve_on(listener, &opts));

        // A connects first and stays silent.
        let idle = TcpStream::connect(addr).unwrap();

        // B completes a full session while A is open.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1,2],[2,3]]}\n")
            .unwrap();
        busy.write_all(b"{\"op\": \"lookup\", \"vertex\": 1}\n")
            .unwrap();
        busy.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        let mut responses = String::new();
        BufReader::new(&busy)
            .read_to_string(&mut responses)
            .unwrap();
        let lines: Vec<&str> = responses.lines().collect();
        assert_eq!(lines.len(), 3, "{responses}");
        assert!(lines[0].contains("\"ok\": true"));
        assert!(lines[1].contains("\"part\":"));
        assert!(lines[2].contains("\"bye\""));

        drop(idle);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn compacted_reports_stay_valid_json() {
        let pretty = "{\n  \"a\": \"line\\nbreak\",\n  \"b\": [\n    1,\n    2\n  ]\n}";
        let compacted = compact(pretty);
        assert!(!compacted.contains('\n'));
        let v = json::parse(&compacted).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_str), Some("line\nbreak"));
    }
}
