//! The `hyperpraw serve` daemon: a resident dynamic-partitioning session
//! behind a newline-delimited JSON protocol.
//!
//! One request per line, one response per line. The daemon holds at most
//! one [`DynamicSession`] at a time; `partition` (re)creates it, every
//! other operation queries or mutates it:
//!
//! ```text
//! → {"op": "partition", "parts": 4, "edges": [[0,1,2],[2,3]], "seed": 7}
//! ← {"ok": true, "report": {...}}
//! → {"op": "update", "updates": [{"op": "add_vertex"}, {"op": "add_edge", "pins": [4,0]}]}
//! ← {"ok": true, "update": {...}}
//! → {"op": "lookup", "vertex": 4}
//! ← {"ok": true, "vertex": 4, "part": 2}
//! → {"op": "report"}
//! ← {"ok": true, "report": {...}}
//! → {"op": "shutdown"}
//! ← {"ok": true, "bye": true}
//! ```
//!
//! `partition` takes the hypergraph inline (`"edges"`, optional
//! `"vertices"` floor) or from disk (`"path"`), plus optional
//! `"algorithm"` (default `hyperpraw-basic`), `"seed"`, `"imbalance"` and
//! `"machine"` (profiles a preset into the cost matrix the aware
//! algorithm needs).
//!
//! Responses embed the facade's [`hyperpraw::report::PartitionReport`] /
//! `UpdateReport` JSON,
//! compacted onto the line (the report writer escapes every newline inside
//! strings, so stripping layout whitespace is loss-free). Errors never
//! kill the session: every failure answers a structured
//! `{"ok": false, "error": {"message": "...", "offset": N}}` object —
//! `offset` is the parser's byte offset into the request line when the
//! line itself was malformed (invalid JSON, or not UTF-8 at all), and is
//! omitted for semantic errors — and the loop keeps reading. Transport is
//! TCP ([`std::net::TcpListener`]) or — for tests and supervisors that
//! prefer pipes — stdin/stdout via `--stdio`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::Path;

use hyperpraw::api::{Algorithm, DynamicSession, PartitionJob};
use hyperpraw::dynamic::GraphUpdate;
use hyperpraw::hypergraph::HypergraphBuilder;
use hyperpraw::json::{self, JsonValue};

use crate::args::MachinePreset;
use crate::commands::{load_hypergraph, profile, CommandError};

/// Runs the daemon until a `shutdown` request (or EOF in `--stdio` mode).
pub fn serve(bind: &str, stdio: bool) -> Result<(), CommandError> {
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        session(stdin.lock(), &mut stdout.lock())?;
        return Ok(());
    }
    let listener = TcpListener::bind(bind)
        .map_err(|e| CommandError::Io(format!("cannot bind {bind}: {e}")))?;
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "hyperpraw serve: listening on {}",
        local.as_deref().unwrap_or(bind)
    );
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| CommandError::Io(e.to_string()))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CommandError::Io(e.to_string()))?,
        );
        let mut writer = stream;
        // One session per connection, served serially; a shutdown request
        // stops the whole daemon so it can be driven to completion
        // remotely.
        if session(reader, &mut writer)? {
            break;
        }
    }
    Ok(())
}

/// Serves one session over any line-oriented transport; returns whether a
/// `shutdown` request ended it (as opposed to EOF).
///
/// Lines are read as raw bytes, so a request that is not valid UTF-8 gets
/// a structured error response (with the byte offset where the encoding
/// broke) instead of tearing down the whole connection; only transport
/// I/O failures end the session.
pub fn session<R: BufRead, W: Write>(mut input: R, out: &mut W) -> Result<bool, CommandError> {
    let mut state: Option<DynamicSession> = None;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = input
            .read_until(b'\n', &mut buf)
            .map_err(|e| CommandError::Io(e.to_string()))?;
        if n == 0 {
            return Ok(false);
        }
        let (response, shutdown) = match std::str::from_utf8(&buf) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => respond(line, &mut state),
            Err(e) => (
                error_response(&ServeError {
                    message: "bad request: line is not valid UTF-8".to_string(),
                    offset: Some(e.valid_up_to()),
                }),
                false,
            ),
        };
        writeln!(out, "{response}").map_err(|e| CommandError::Io(e.to_string()))?;
        out.flush().map_err(|e| CommandError::Io(e.to_string()))?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Handles one request line; never fails the session (errors become
/// `{"ok": false, ...}` responses).
fn respond(line: &str, state: &mut Option<DynamicSession>) -> (String, bool) {
    match handle(line, state) {
        Ok(Reply::Payload(body)) => (format!("{{\"ok\": true, {body}}}"), false),
        Ok(Reply::Shutdown) => ("{\"ok\": true, \"bye\": true}".to_string(), true),
        Err(error) => (error_response(&error), false),
    }
}

/// A request failure: what went wrong, plus — for malformed lines — the
/// parser's byte offset into the request.
struct ServeError {
    message: String,
    offset: Option<usize>,
}

impl From<String> for ServeError {
    fn from(message: String) -> Self {
        ServeError {
            message,
            offset: None,
        }
    }
}

impl From<&str> for ServeError {
    fn from(message: &str) -> Self {
        ServeError::from(message.to_string())
    }
}

/// Serialises a [`ServeError`] into the protocol's structured error
/// object; `offset` appears only when the request line itself failed to
/// parse.
fn error_response(error: &ServeError) -> String {
    let mut out = format!(
        "{{\"ok\": false, \"error\": {{\"message\": {}",
        escape(&error.message)
    );
    if let Some(offset) = error.offset {
        out.push_str(&format!(", \"offset\": {offset}"));
    }
    out.push_str("}}");
    out
}

enum Reply {
    Payload(String),
    Shutdown,
}

fn handle(line: &str, state: &mut Option<DynamicSession>) -> Result<Reply, ServeError> {
    let request = json::parse(line).map_err(|e| ServeError {
        message: format!("bad request: {}", e.message),
        offset: Some(e.offset),
    })?;
    let op = request
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field 'op'")?;
    match op {
        "partition" => {
            let report = start_session(&request, state)?;
            Ok(Reply::Payload(format!("\"report\": {report}")))
        }
        "update" => {
            let session = state.as_mut().ok_or("no session: send 'partition' first")?;
            let updates = parse_updates(&request)?;
            let update = session.update(&updates).map_err(|e| e.to_string())?;
            Ok(Reply::Payload(format!(
                "\"update\": {}",
                compact(&update.to_json())
            )))
        }
        "lookup" => {
            let session = state.as_ref().ok_or("no session: send 'partition' first")?;
            let vertex = field_u64(&request, "vertex")?;
            let vertex = u32::try_from(vertex).map_err(|_| "'vertex' out of range")?;
            let part = match session.lookup(vertex) {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            Ok(Reply::Payload(format!(
                "\"vertex\": {vertex}, \"part\": {part}"
            )))
        }
        "report" => {
            let session = state.as_ref().ok_or("no session: send 'partition' first")?;
            Ok(Reply::Payload(format!(
                "\"report\": {}",
                compact(&session.report().to_json())
            )))
        }
        "shutdown" => Ok(Reply::Shutdown),
        other => Err(format!(
            "unknown op '{other}' (expected partition | update | lookup | report | shutdown)"
        )
        .into()),
    }
}

/// Builds the hypergraph named by a `partition` request and starts (or
/// replaces) the resident session; returns the compacted initial report.
fn start_session(
    request: &JsonValue,
    state: &mut Option<DynamicSession>,
) -> Result<String, String> {
    let parts = field_u64(request, "parts")?;
    let parts = u32::try_from(parts).map_err(|_| "'parts' out of range")?;
    let hg = match (request.get("edges"), request.get("path")) {
        (Some(edges), None) => inline_hypergraph(edges, request)?,
        (None, Some(path)) => {
            let path = path.as_str().ok_or("'path' must be a string")?;
            load_hypergraph(Path::new(path)).map_err(|e| e.to_string())?
        }
        (Some(_), Some(_)) => return Err("give either 'edges' or 'path', not both".into()),
        (None, None) => return Err("missing hypergraph: give 'edges' or 'path'".into()),
    };
    let algorithm = match request.get("algorithm").map(|v| {
        v.as_str()
            .ok_or("'algorithm' must be a string")
            .and_then(|s| Algorithm::parse(s).map_err(|_| "unknown 'algorithm'"))
    }) {
        Some(result) => result.map_err(String::from)?,
        None => Algorithm::HyperPrawBasic,
    };
    let seed = match request.get("seed") {
        Some(seed) => seed
            .as_u64()
            .ok_or("'seed' must be a non-negative integer")?,
        None => 2019,
    };
    let mut job = PartitionJob::new(algorithm).partitions(parts).seed(seed);
    if let Some(machine) = request.get("machine") {
        let preset = machine
            .as_str()
            .ok_or("'machine' must be a string")
            .and_then(|s| MachinePreset::parse(s).map_err(|_| "unknown 'machine' preset"))?;
        let (_, cost) = profile(preset, parts as usize, seed);
        job = job.cost(cost);
    }
    if let Some(tol) = request.get("imbalance") {
        job = job.imbalance_tolerance(tol.as_f64().ok_or("'imbalance' must be a number")?);
    }
    let session = job.run_dynamic(&hg).map_err(|e| e.to_string())?;
    let report = compact(&session.initial_report().to_json());
    *state = Some(session);
    Ok(report)
}

/// An inline hypergraph: `"edges": [[pins...], ...]` plus an optional
/// `"vertices": N` floor for trailing isolated vertices.
fn inline_hypergraph(
    edges: &JsonValue,
    request: &JsonValue,
) -> Result<hyperpraw::hypergraph::Hypergraph, String> {
    let edges = edges.as_array().ok_or("'edges' must be an array")?;
    let mut builder = HypergraphBuilder::with_capacity(0, edges.len());
    builder.name("serve".to_string());
    for (i, edge) in edges.iter().enumerate() {
        let pins = edge
            .as_array()
            .ok_or_else(|| format!("edge {i} must be an array of vertex ids"))?;
        let pins: Vec<u32> = pins
            .iter()
            .map(|p| {
                p.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| format!("edge {i} holds a non-vertex-id pin"))
            })
            .collect::<Result<_, _>>()?;
        builder.add_hyperedge(pins);
    }
    if let Some(n) = request.get("vertices") {
        let n = n
            .as_u64()
            .ok_or("'vertices' must be a non-negative integer")?;
        builder.ensure_vertices(usize::try_from(n).map_err(|_| "'vertices' out of range")?);
    }
    Ok(builder.build())
}

/// Decodes the `update` request's batch into [`GraphUpdate`]s.
fn parse_updates(request: &JsonValue) -> Result<Vec<GraphUpdate>, String> {
    let updates = request
        .get("updates")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field 'updates'")?;
    updates
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let op = u
                .get("op")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("update {i}: missing string field 'op'"))?;
            let vertex = || -> Result<u32, String> {
                let v = field_u64(u, "vertex").map_err(|e| format!("update {i}: {e}"))?;
                u32::try_from(v).map_err(|_| format!("update {i}: 'vertex' out of range"))
            };
            let edge = || -> Result<u32, String> {
                let e = field_u64(u, "edge").map_err(|e| format!("update {i}: {e}"))?;
                u32::try_from(e).map_err(|_| format!("update {i}: 'edge' out of range"))
            };
            let weight = u
                .get("weight")
                .map(|w| {
                    w.as_f64()
                        .ok_or_else(|| format!("update {i}: 'weight' must be a number"))
                })
                .transpose()?
                .unwrap_or(1.0);
            match op {
                "add_vertex" => Ok(GraphUpdate::AddVertex { weight }),
                "remove_vertex" => Ok(GraphUpdate::RemoveVertex { vertex: vertex()? }),
                "add_edge" => {
                    let pins = u
                        .get("pins")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("update {i}: missing array field 'pins'"))?
                        .iter()
                        .map(|p| {
                            p.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or_else(|| format!("update {i}: bad pin"))
                        })
                        .collect::<Result<Vec<u32>, _>>()?;
                    Ok(GraphUpdate::AddHyperedge { pins, weight })
                }
                "remove_edge" => Ok(GraphUpdate::RemoveHyperedge { edge: edge()? }),
                "add_pin" => Ok(GraphUpdate::AddPin {
                    edge: edge()?,
                    vertex: vertex()?,
                }),
                "remove_pin" => Ok(GraphUpdate::RemovePin {
                    edge: edge()?,
                    vertex: vertex()?,
                }),
                other => Err(format!("update {i}: unknown op '{other}'")),
            }
        })
        .collect()
}

fn field_u64(value: &JsonValue, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field '{key}'"))
}

/// Compacts the pretty-printed report JSON onto one line. The report
/// writer escapes newlines inside strings, so every raw newline in its
/// output is layout — dropping the indentation after it cannot corrupt a
/// value.
fn compact(pretty: &str) -> String {
    let mut out = String::with_capacity(pretty.len());
    for (i, line) in pretty.lines().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(line.trim_start());
    }
    out
}

/// Escapes a message into a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drive(requests: &str) -> (Vec<String>, bool) {
        drive_bytes(requests.as_bytes())
    }

    fn drive_bytes(requests: &[u8]) -> (Vec<String>, bool) {
        let mut out = Vec::new();
        let shutdown = session(Cursor::new(requests.to_vec()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(|l| l.to_string()).collect(), shutdown)
    }

    #[test]
    fn full_round_trip_over_pipes() {
        let (lines, shutdown) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, ",
            "\"edges\": [[0,1,2],[2,3],[3,4,5],[5,0]], \"vertices\": 6}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, ",
            "{\"op\": \"add_edge\", \"pins\": [6, 0, 1]}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 6}\n",
            "{\"op\": \"report\"}\n",
            "{\"op\": \"shutdown\"}\n",
        ));
        assert!(shutdown);
        assert_eq!(lines.len(), 5);
        for line in &lines {
            // Every response is itself one valid JSON document on one line.
            hyperpraw::json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"ok\": true") && lines[0].contains("\"report\""));
        assert!(lines[1].contains("\"update\"") && lines[1].contains("\"migration\""));
        let lookup = hyperpraw::json::parse(&lines[2]).unwrap();
        assert_eq!(lookup.get("vertex").and_then(JsonValue::as_u64), Some(6));
        assert!(lookup.get("part").and_then(JsonValue::as_u64).is_some());
        assert!(lines[3].contains("\"quality\": \"evaluated\""));
        assert_eq!(lines[4], "{\"ok\": true, \"bye\": true}");
    }

    #[test]
    fn errors_keep_the_session_alive() {
        let (lines, shutdown) = drive(concat!(
            "not json\n",
            "{\"op\": \"lookup\", \"vertex\": 0}\n",
            "{\"op\": \"mystery\"}\n",
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"remove_vertex\", \"vertex\": 99}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 1}\n",
        ));
        assert!(!shutdown, "EOF, not shutdown");
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"ok\": false") && lines[0].contains("bad request"));
        assert!(lines[1].contains("no session"));
        assert!(lines[2].contains("unknown op"));
        assert!(lines[3].contains("\"ok\": true"));
        assert!(lines[4].contains("\"ok\": false"), "{}", lines[4]);
        assert!(lines[5].contains("\"part\":"));
    }

    #[test]
    fn malformed_lines_answer_structured_errors_with_offsets() {
        let mut requests = Vec::new();
        requests.extend_from_slice(b"[true, fals]\n");
        requests.extend_from_slice(b"{\"op\": \xff\xfe}\n"); // not UTF-8 at byte 7
        requests.extend_from_slice(b"{\"op\": \"shutdown\"}\n");
        let (lines, shutdown) = drive_bytes(&requests);
        assert!(
            shutdown,
            "garbage must not tear down the session: {lines:#?}"
        );
        assert_eq!(lines.len(), 3);

        let bad_json = json::parse(&lines[0]).unwrap();
        assert_eq!(bad_json.get("ok").and_then(JsonValue::as_bool), Some(false));
        let error = bad_json.get("error").expect("structured error object");
        let message = error.get("message").and_then(JsonValue::as_str).unwrap();
        assert!(message.contains("bad request"), "{message}");
        let offset = error.get("offset").and_then(JsonValue::as_u64).unwrap();
        assert!(offset >= 7, "offset {offset} points at the bad token");

        let bad_utf8 = json::parse(&lines[1]).unwrap();
        let error = bad_utf8.get("error").expect("structured error object");
        let message = error.get("message").and_then(JsonValue::as_str).unwrap();
        assert!(message.contains("UTF-8"), "{message}");
        assert_eq!(
            error.get("offset").and_then(JsonValue::as_u64),
            Some(7),
            "offset is where the encoding broke"
        );

        assert_eq!(lines[2], "{\"ok\": true, \"bye\": true}");
    }

    #[test]
    fn semantic_errors_carry_no_offset() {
        let (lines, _) = drive("{\"op\": \"lookup\", \"vertex\": 0}\n");
        let v = json::parse(&lines[0]).unwrap();
        let error = v.get("error").expect("structured error object");
        assert!(error
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("no session"));
        assert_eq!(error.get("offset"), None);
    }

    #[test]
    fn tombstoned_lookups_answer_null() {
        let (lines, _) = drive(concat!(
            "{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1,2],[2,3,4],[4,5,0]]}\n",
            "{\"op\": \"update\", \"updates\": [{\"op\": \"remove_vertex\", \"vertex\": 3}]}\n",
            "{\"op\": \"lookup\", \"vertex\": 3}\n",
        ));
        assert!(lines[2].contains("\"part\": null"), "{}", lines[2]);
    }

    #[test]
    fn compacted_reports_stay_valid_json() {
        let pretty = "{\n  \"a\": \"line\\nbreak\",\n  \"b\": [\n    1,\n    2\n  ]\n}";
        let compacted = compact(pretty);
        assert!(!compacted.contains('\n'));
        let v = json::parse(&compacted).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_str), Some("line\nbreak"));
    }
}
