//! Implementations of the `hyperpraw` subcommands.
//!
//! Both partitioning subcommands (`partition`, `lowmem`) dispatch through
//! the facade's unified [`PartitionJob`] API — the CLI contains no
//! per-driver wiring of its own — and can emit the common
//! [`hyperpraw::report::PartitionReport`] as JSON (`--json` /
//! `--json-out`).

use std::fmt;
use std::fs;
use std::path::Path;

use hyperpraw::api::{Algorithm, PartitionError, PartitionJob};
use hyperpraw::core::metrics::QualityReport;
use hyperpraw::core::CostMatrix;
use hyperpraw::hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw::hypergraph::io::stream::{
    read_hgr_header, stream_edgelist_file, stream_hgr_file, StreamOptions, VertexStream,
};
use hyperpraw::hypergraph::io::{edgelist, hmetis, matrix_market, IoError};
use hyperpraw::hypergraph::{Hypergraph, HypergraphStats, Partition};
use hyperpraw::lowmem::{quality, MemoryBudget};
use hyperpraw::netsim::{BenchmarkConfig, LinkModel, RingProfiler, SyntheticBenchmark};
use hyperpraw::report::PartitionReport;
use hyperpraw::storage;
use hyperpraw::telemetry;
use hyperpraw::topology::MachineModel;

use crate::args::{Cli, Command, MachinePreset, StreamFormat};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CommandError {
    /// Problem reading or parsing an input file.
    Io(String),
    /// Problem with the provided inputs (sizes, ids, ...).
    Invalid(String),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(m) | Self::Invalid(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<IoError> for CommandError {
    fn from(e: IoError) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<PartitionError> for CommandError {
    fn from(e: PartitionError) -> Self {
        match e {
            PartitionError::Io(m) => Self::Io(m),
            other => Self::Invalid(other.to_string()),
        }
    }
}

/// Loads a hypergraph, dispatching on the file extension: `.hgr` (hMetis),
/// `.mtx` (MatrixMarket row-net model), anything else as an edge list.
pub fn load_hypergraph(path: &Path) -> Result<Hypergraph, CommandError> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    let hg = match ext.as_str() {
        "hgr" => hmetis::read_hgr_file(path)?,
        "mtx" => matrix_market::read_mtx_file(path, matrix_market::SparseMatrixModel::RowNet)?,
        _ => edgelist::read_edgelist_file(path)?,
    };
    Ok(hg)
}

/// Builds the machine preset at the requested size.
pub fn build_machine(preset: MachinePreset, procs: usize) -> MachineModel {
    match preset {
        MachinePreset::Archer => MachineModel::archer_like(procs),
        MachinePreset::Cluster => MachineModel::dual_socket_cluster(procs, 12),
        MachinePreset::Cloud => MachineModel::cloud_like(procs, 8),
        MachinePreset::Flat => MachineModel::flat(procs, 1_000.0, 1.5),
    }
}

/// Profiles a machine preset: link model plus measured bandwidth/cost.
pub(crate) fn profile(preset: MachinePreset, procs: usize, seed: u64) -> (LinkModel, CostMatrix) {
    let machine = build_machine(preset, procs);
    let link = LinkModel::from_machine(&machine, 0.05, seed);
    let bandwidth = RingProfiler {
        seed,
        ..RingProfiler::default()
    }
    .profile(&link);
    (link, CostMatrix::from_bandwidth(&bandwidth))
}

/// Reads an assignment file: one partition id per line, `#` comments.
pub fn read_assignment(path: &Path, num_vertices: usize) -> Result<Partition, CommandError> {
    let text = fs::read_to_string(path)?;
    let mut assignment = Vec::with_capacity(num_vertices);
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let part: u32 = t.parse().map_err(|_| {
            CommandError::Invalid(format!(
                "assignment line {}: '{t}' is not a partition id",
                i + 1
            ))
        })?;
        assignment.push(part);
    }
    if assignment.len() != num_vertices {
        return Err(CommandError::Invalid(format!(
            "assignment has {} entries but the hypergraph has {num_vertices} vertices",
            assignment.len()
        )));
    }
    let parts = assignment.iter().copied().max().unwrap_or(0) + 1;
    Partition::from_assignment(assignment, parts).map_err(|e| CommandError::Invalid(e.to_string()))
}

/// Writes an assignment file (one partition id per line).
pub fn write_assignment(path: &Path, partition: &Partition) -> Result<(), CommandError> {
    let mut out = String::with_capacity(partition.num_vertices() * 3);
    out.push_str(&format!(
        "# hyperpraw assignment: {} vertices, {} parts\n",
        partition.num_vertices(),
        partition.num_parts()
    ));
    for &p in partition.assignment() {
        out.push_str(&p.to_string());
        out.push('\n');
    }
    fs::write(path, out)?;
    Ok(())
}

/// Shared report output of the partitioning subcommands: JSON to stdout
/// and/or file when requested, text summary otherwise, plus the optional
/// assignment file.
fn emit_report(
    report: &PartitionReport,
    header: &str,
    json: bool,
    json_out: Option<&Path>,
    output: Option<&Path>,
) -> Result<(), CommandError> {
    if json {
        print!("{}", report.to_json());
    } else {
        println!("{header}");
        print!("{}", report.text_summary());
    }
    if let Some(path) = json_out {
        fs::write(path, report.to_json())?;
        if !json {
            println!("json report      : {}", path.display());
        }
    }
    if let Some(path) = output {
        write_assignment(path, &report.partition)?;
        if !json {
            println!("assignment       : {}", path.display());
        }
    }
    Ok(())
}

/// Dumps the run's telemetry registry as single-line JSON when
/// `--metrics-out` asked for it.
fn write_metrics(
    path: Option<&Path>,
    metrics: &telemetry::Registry,
    json: bool,
) -> Result<(), CommandError> {
    if let Some(path) = path {
        fs::write(path, metrics.render_json())?;
        if !json {
            println!("metrics          : {}", path.display());
        }
    }
    Ok(())
}

/// Executes a parsed invocation.
pub fn execute(cli: &Cli) -> Result<(), CommandError> {
    match &cli.command {
        Command::Stats { input } => {
            let hg = load_hypergraph(input)?;
            let stats = HypergraphStats::compute(&hg);
            println!("{}", HypergraphStats::csv_header());
            println!("{}", stats.csv_row());
            println!("\n{stats}");
            Ok(())
        }
        Command::Serve {
            bind,
            stdio,
            state_dir,
            max_line_bytes,
            read_timeout_secs,
            snapshot_every,
            metrics_addr,
        } => crate::serve::serve(&crate::serve::ServeOptions {
            bind: bind.clone(),
            stdio: *stdio,
            state_dir: state_dir.clone(),
            max_line_bytes: *max_line_bytes,
            read_timeout_secs: *read_timeout_secs,
            snapshot_every: *snapshot_every,
            metrics_addr: metrics_addr.clone(),
        }),
        Command::Partition {
            input,
            parts,
            algorithm,
            machine,
            imbalance,
            connectivity,
            threads,
            parallel_mode,
            seed,
            output,
            json,
            json_out,
            metrics_out,
        } => {
            let hg = load_hypergraph(input)?;
            if *parts < 2 {
                return Err(CommandError::Invalid("--parts must be at least 2".into()));
            }
            let (_, cost) = profile(*machine, *parts as usize, *seed);
            let metrics = telemetry::Registry::new();
            let mut job = PartitionJob::new(*algorithm)
                .partitions(*parts)
                .cost(cost)
                .seed(*seed)
                .imbalance_tolerance(*imbalance)
                .connectivity(*connectivity)
                .parallel_mode(*parallel_mode)
                .registry(&metrics);
            if let Some(t) = threads {
                if !algorithm.supports_threads() {
                    return Err(CommandError::Invalid(format!(
                        "--threads does not apply to {}; pick a parallel or lowmem algorithm",
                        algorithm.name()
                    )));
                }
                job = job.threads(*t);
            }
            let report = job.run(&hg)?;
            emit_report(
                &report,
                &format!("hypergraph       : {hg}"),
                *json,
                json_out.as_deref(),
                output.as_deref(),
            )?;
            write_metrics(metrics_out.as_deref(), &metrics, *json)
        }
        Command::LowMem {
            input,
            parts,
            budget_mib,
            exact,
            restream,
            passes,
            rebuild_sketches,
            threads,
            parallel_mode,
            machine,
            seed,
            output,
            json,
            json_out,
            format,
            no_prefetch,
            metrics_out,
        } => {
            if *parts < 2 {
                return Err(CommandError::Invalid("--parts must be at least 2".into()));
            }
            if *rebuild_sketches && *exact {
                return Err(CommandError::Invalid(
                    "--rebuild-sketches only applies to the sketched index; drop --exact".into(),
                ));
            }
            let input_is_compressed = storage::is_compressed_file(input);
            let use_compressed = match format {
                StreamFormat::Transpose => {
                    if input_is_compressed {
                        return Err(CommandError::Invalid(
                            "input is a compressed .hpz file; drop --format transpose".into(),
                        ));
                    }
                    false
                }
                StreamFormat::Compressed => true,
                StreamFormat::Auto => input_is_compressed,
            };
            let ext = input
                .extension()
                .and_then(|e| e.to_str())
                .unwrap_or("")
                .to_ascii_lowercase();
            if ext == "mtx" && !input_is_compressed {
                return Err(CommandError::Invalid(
                    "MatrixMarket files are not streamable; convert to .hgr first".into(),
                ));
            }
            let algorithm = if *exact {
                Algorithm::LowMemExact
            } else {
                Algorithm::LowMemSketched
            };
            let budget = MemoryBudget::mebibytes((*budget_mib).max(1));
            let (_, cost) = profile(*machine, *parts as usize, *seed);
            let metrics = telemetry::Registry::new();
            let job = PartitionJob::new(algorithm)
                .partitions(*parts)
                .cost(cost)
                .memory_budget(budget)
                .restream_capacity(*restream)
                .passes(*passes)
                .rebuild_sketches(*rebuild_sketches)
                .threads(*threads)
                .parallel_mode(*parallel_mode)
                .seed(*seed)
                .prefetch(!*no_prefetch)
                .registry(&metrics);
            job.validate()?;
            let options = StreamOptions {
                buffer_bytes: budget.plan(*parts as usize, 0).transpose_buffer_bytes,
                spill_dir: None,
            };
            let is_hgr = ext == "hgr" && !input_is_compressed;
            if is_hgr {
                // The header carries the vertex count; reject an oversized
                // --parts before paying for the on-disk transpose.
                let header = read_hgr_header(input)?;
                if (*parts as usize) > header.num_vertices {
                    return Err(CommandError::Invalid(format!(
                        "cannot split {} vertices into {parts} parts",
                        header.num_vertices
                    )));
                }
            }
            if use_compressed {
                // Run over the block-compressed CSR, converting first when
                // the input is still an .hgr / edge list.
                let temp_hpz = if input_is_compressed {
                    None
                } else {
                    let tmp = std::env::temp_dir().join(format!(
                        "hyperpraw-lowmem-{}-{}.hpz",
                        std::process::id(),
                        seed
                    ));
                    storage::convert_file(
                        input,
                        &tmp,
                        storage::DEFAULT_BLOCK_TARGET_BYTES,
                        &options,
                    )?;
                    Some(tmp)
                };
                let hpz_path = temp_hpz.as_deref().unwrap_or(input.as_path());
                let reader = storage::CompressedReader::open_file(hpz_path)
                    .map_err(|e| CommandError::Io(e.to_string()))?;
                let meta = *reader.meta();
                if (*parts as u64) > meta.num_vertices {
                    if let Some(tmp) = &temp_hpz {
                        fs::remove_file(tmp).ok();
                    }
                    return Err(CommandError::Invalid(format!(
                        "cannot split {} vertices into {parts} parts",
                        meta.num_vertices
                    )));
                }
                let result = job.run_compressed_file(hpz_path);
                if let Some(tmp) = &temp_hpz {
                    fs::remove_file(tmp).ok();
                }
                let mut report = result?;
                // The original edge-major file (when we have one) back-fills
                // the cut metrics; a bare .hpz leaves quality deferred.
                if !input_is_compressed {
                    let streamed = if is_hgr {
                        quality::evaluate_hgr_file(input, &report.partition)?
                    } else {
                        quality::evaluate_edgelist_file(input, &report.partition)?
                    };
                    report.attach_streamed_quality(&streamed);
                }
                emit_report(
                    &report,
                    &format!(
                        "hypergraph       : {} (|V|={}, |E|={}, pins={})\n\
                         memory budget    : {budget}\n\
                         stream           : compressed CSR, {} block(s), prefetch {}\n\
                         block cache      : {} hit(s), {} miss(es)",
                        input.display(),
                        meta.num_vertices,
                        meta.num_nets,
                        meta.num_pins,
                        meta.num_blocks,
                        if *no_prefetch { "off" } else { "on" },
                        metrics.counter("storage.cache.hits").get(),
                        metrics.counter("storage.cache.misses").get(),
                    ),
                    *json,
                    json_out.as_deref(),
                    output.as_deref(),
                )?;
                return write_metrics(metrics_out.as_deref(), &metrics, *json);
            }
            let mut stream = if is_hgr {
                stream_hgr_file(input, &options)?
            } else {
                stream_edgelist_file(input, &options)?
            };
            let mut report = job.run_stream(&mut stream)?;
            let streamed = if is_hgr {
                quality::evaluate_hgr_file(input, &report.partition)?
            } else {
                quality::evaluate_edgelist_file(input, &report.partition)?
            };
            report.attach_streamed_quality(&streamed);
            emit_report(
                &report,
                &format!(
                    "hypergraph       : {} (|V|={}, |E|={}, pins={})\n\
                     memory budget    : {budget}\n\
                     transpose peak   : {} B",
                    input.display(),
                    stream.num_vertices(),
                    stream.num_nets(),
                    stream.num_pins(),
                    stream.peak_loaded_bytes()
                ),
                *json,
                json_out.as_deref(),
                output.as_deref(),
            )?;
            write_metrics(metrics_out.as_deref(), &metrics, *json)
        }
        Command::Convert {
            input,
            output,
            block_bytes,
        } => {
            let ext = input
                .extension()
                .and_then(|e| e.to_str())
                .unwrap_or("")
                .to_ascii_lowercase();
            if ext == "mtx" {
                return Err(CommandError::Invalid(
                    "MatrixMarket files are not streamable; convert to .hgr first".into(),
                ));
            }
            if storage::is_compressed_file(input) {
                return Err(CommandError::Invalid(
                    "input is already in the compressed format".into(),
                ));
            }
            let meta =
                storage::convert_file(input, output, *block_bytes, &StreamOptions::default())?;
            let in_bytes = fs::metadata(input)?.len();
            let out_bytes = fs::metadata(output)?.len();
            println!(
                "converted {} -> {}\n\
                 |V|={}, |E|={}, pins={}, {} block(s) of ~{} B\n\
                 {} B -> {} B ({:.2}x)",
                input.display(),
                output.display(),
                meta.num_vertices,
                meta.num_nets,
                meta.num_pins,
                meta.num_blocks,
                meta.block_target_bytes,
                in_bytes,
                out_bytes,
                in_bytes as f64 / out_bytes.max(1) as f64,
            );
            Ok(())
        }
        Command::Generate {
            output,
            vertices,
            cardinality,
            seed,
        } => {
            if *vertices == 0 || *cardinality == 0 {
                return Err(CommandError::Invalid(
                    "--vertices and --cardinality must be positive".into(),
                ));
            }
            let mut config = MeshConfig::new(*vertices, *cardinality);
            config.seed = *seed;
            let hg = mesh_hypergraph(&config);
            hmetis::write_hgr_file(&hg, output)?;
            println!(
                "wrote {} (|V|={}, |E|={}, pins={})",
                output.display(),
                hg.num_vertices(),
                hg.num_hyperedges(),
                hg.num_pins()
            );
            Ok(())
        }
        Command::Profile {
            machine,
            procs,
            output,
        } => {
            if *procs < 2 {
                return Err(CommandError::Invalid(
                    "profiling needs at least two compute units".into(),
                ));
            }
            let (link, cost) = profile(*machine, *procs, 2019);
            let csv = link.bandwidth().to_csv();
            match output {
                Some(path) => {
                    fs::write(path, &csv)?;
                    println!("wrote {}", path.display());
                }
                None => print!("{csv}"),
            }
            println!(
                "# {} units, bandwidth {:.0}..{:.0} MB/s, cost {:.2}..{:.2}",
                procs,
                link.bandwidth().min_off_diagonal(),
                link.bandwidth().max_off_diagonal(),
                cost.min_off_diagonal(),
                cost.max_off_diagonal()
            );
            // Cost centrality: the precomputed row sums bound what each
            // unit pays to reach every peer — the spread flags poorly
            // connected units worth keeping off chatty partitions.
            let sums: Vec<f64> = (0..*procs).map(|i| cost.row_sum(i)).collect();
            let most = sums.iter().cloned().fold(f64::INFINITY, f64::min);
            let least = sums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            println!(
                "# per-unit total reach cost (row sums): {most:.1} (best) .. {least:.1} (worst)"
            );
            Ok(())
        }
        Command::Benchmark {
            input,
            assignment,
            machine,
            message_bytes,
            supersteps,
        } => {
            let hg = load_hypergraph(input)?;
            let partition = read_assignment(assignment, hg.num_vertices())?;
            let procs = partition.num_parts() as usize;
            if procs < 2 {
                return Err(CommandError::Invalid(
                    "the assignment uses a single partition; nothing to benchmark".into(),
                ));
            }
            let (link, cost) = profile(*machine, procs, 2019);
            let bench = SyntheticBenchmark::new(
                link,
                BenchmarkConfig {
                    message_bytes: *message_bytes,
                    supersteps: *supersteps,
                    ..BenchmarkConfig::default()
                },
            );
            let result = bench.run(&hg, &partition);
            let quality = QualityReport::compute(&hg, &partition, &cost);
            println!("hypergraph       : {hg}");
            println!("partitions       : {procs}");
            println!("remote messages  : {}", result.remote_messages);
            println!("remote bytes     : {}", result.remote_bytes);
            println!("comm cost        : {:.1}", quality.comm_cost);
            println!("simulated time   : {:.3} ms", result.total_time_us / 1e3);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw::core::{Connectivity, ParallelMode};
    use hyperpraw::hypergraph::HypergraphBuilder;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hyperpraw_cli_{}_{name}", std::process::id()))
    }

    fn sample_hgr() -> std::path::PathBuf {
        let path = temp_path("sample.hgr");
        let mut b = HypergraphBuilder::new(8);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        b.add_hyperedge([4u32, 5, 6, 7]);
        b.add_hyperedge([0u32, 7]);
        hmetis::write_hgr_file(&b.build(), &path).unwrap();
        path
    }

    /// Builder for `Command::Partition` literals in tests.
    struct PartitionArgs {
        input: std::path::PathBuf,
        parts: u32,
        algorithm: Algorithm,
        connectivity: Connectivity,
        threads: Option<usize>,
        parallel_mode: ParallelMode,
        seed: u64,
        output: Option<std::path::PathBuf>,
        json_out: Option<std::path::PathBuf>,
    }

    impl PartitionArgs {
        fn new(input: std::path::PathBuf, parts: u32) -> Self {
            Self {
                input,
                parts,
                algorithm: Algorithm::HyperPrawBasic,
                connectivity: Connectivity::Auto,
                threads: None,
                parallel_mode: ParallelMode::Bsp,
                seed: 1,
                output: None,
                json_out: None,
            }
        }

        fn command(self) -> Command {
            Command::Partition {
                input: self.input,
                parts: self.parts,
                algorithm: self.algorithm,
                machine: MachinePreset::Flat,
                imbalance: 1.2,
                connectivity: self.connectivity,
                threads: self.threads,
                parallel_mode: self.parallel_mode,
                seed: self.seed,
                output: self.output,
                json: false,
                json_out: self.json_out,
                metrics_out: None,
            }
        }
    }

    #[test]
    fn load_dispatches_on_extension() {
        let path = sample_hgr();
        let hg = load_hypergraph(&path).unwrap();
        assert_eq!(hg.num_vertices(), 8);
        assert_eq!(hg.num_hyperedges(), 4);
        fs::remove_file(path).ok();
    }

    #[test]
    fn assignment_round_trips() {
        let part = Partition::round_robin(10, 3);
        let path = temp_path("assignment.txt");
        write_assignment(&path, &part).unwrap();
        let back = read_assignment(&path, 10).unwrap();
        assert_eq!(back.assignment(), part.assignment());
        fs::remove_file(path).ok();
    }

    #[test]
    fn assignment_length_mismatch_is_reported() {
        let part = Partition::round_robin(5, 2);
        let path = temp_path("short.txt");
        write_assignment(&path, &part).unwrap();
        let err = read_assignment(&path, 10).unwrap_err();
        assert!(err.to_string().contains("10 vertices"));
        fs::remove_file(path).ok();
    }

    #[test]
    fn partition_command_writes_an_assignment_file() {
        let input = sample_hgr();
        let output = temp_path("out_assignment.txt");
        let cli = Cli {
            command: PartitionArgs {
                output: Some(output.clone()),
                ..PartitionArgs::new(input.clone(), 2)
            }
            .command(),
        };
        execute(&cli).unwrap();
        let hg = load_hypergraph(&input).unwrap();
        let part = read_assignment(&output, hg.num_vertices()).unwrap();
        assert!(part.num_parts() <= 2);
        fs::remove_file(input).ok();
        fs::remove_file(output).ok();
    }

    #[test]
    fn every_algorithm_dispatches_through_the_partition_command() {
        let input = sample_hgr();
        for algorithm in Algorithm::all() {
            execute(&Cli {
                command: PartitionArgs {
                    algorithm,
                    ..PartitionArgs::new(input.clone(), 2)
                }
                .command(),
            })
            .unwrap_or_else(|e| panic!("{}: {e}", algorithm.name()));
        }
        fs::remove_file(input).ok();
    }

    #[test]
    fn json_out_writes_a_partition_report() {
        let input = sample_hgr();
        let json_out = temp_path("report.json");
        execute(&Cli {
            command: PartitionArgs {
                json_out: Some(json_out.clone()),
                ..PartitionArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        let json = fs::read_to_string(&json_out).unwrap();
        assert!(json.contains("\"algorithm\": \"hyperpraw-basic\""));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"config\""));
        fs::remove_file(input).ok();
        fs::remove_file(json_out).ok();
    }

    #[test]
    fn partition_command_is_identical_across_connectivity_providers() {
        // The provider axis must be quality-neutral all the way through the
        // CLI: the same invocation with --connectivity csr/adjacency/auto
        // writes the same assignment file.
        let input = sample_hgr();
        let mut assignments = Vec::new();
        for choice in [
            Connectivity::Csr,
            Connectivity::Adjacency,
            Connectivity::Auto,
        ] {
            let output = temp_path(&format!("conn_{choice:?}.txt"));
            execute(&Cli {
                command: PartitionArgs {
                    connectivity: choice,
                    seed: 3,
                    output: Some(output.clone()),
                    ..PartitionArgs::new(input.clone(), 2)
                }
                .command(),
            })
            .unwrap();
            assignments.push(fs::read_to_string(&output).unwrap());
            fs::remove_file(output).ok();
        }
        fs::remove_file(input).ok();
        assert_eq!(assignments[0], assignments[1]);
        assert_eq!(assignments[0], assignments[2]);
    }

    /// Builder for `Command::LowMem` literals in tests (enum variants do
    /// not support functional record update).
    struct LowMemArgs {
        input: std::path::PathBuf,
        parts: u32,
        exact: bool,
        restream: Option<usize>,
        passes: usize,
        rebuild_sketches: bool,
        threads: usize,
        parallel_mode: ParallelMode,
        seed: u64,
        output: Option<std::path::PathBuf>,
        json_out: Option<std::path::PathBuf>,
        format: StreamFormat,
        no_prefetch: bool,
    }

    impl LowMemArgs {
        fn new(input: std::path::PathBuf, parts: u32) -> Self {
            Self {
                input,
                parts,
                exact: false,
                restream: None,
                passes: 1,
                rebuild_sketches: false,
                threads: 1,
                parallel_mode: ParallelMode::Bsp,
                seed: 0,
                output: None,
                json_out: None,
                format: StreamFormat::Auto,
                no_prefetch: false,
            }
        }

        fn command(self) -> Command {
            Command::LowMem {
                input: self.input,
                parts: self.parts,
                budget_mib: 1,
                exact: self.exact,
                restream: self.restream,
                passes: self.passes,
                rebuild_sketches: self.rebuild_sketches,
                threads: self.threads,
                parallel_mode: self.parallel_mode,
                machine: MachinePreset::Flat,
                seed: self.seed,
                output: self.output,
                json: false,
                json_out: self.json_out,
                format: self.format,
                no_prefetch: self.no_prefetch,
                metrics_out: None,
            }
        }
    }

    #[test]
    fn lowmem_command_partitions_in_one_pass_and_writes_an_assignment() {
        let input = sample_hgr();
        let output = temp_path("lowmem_assignment.txt");
        for exact in [false, true] {
            execute(&Cli {
                command: LowMemArgs {
                    exact,
                    restream: Some(4),
                    seed: 1,
                    output: Some(output.clone()),
                    ..LowMemArgs::new(input.clone(), 2)
                }
                .command(),
            })
            .unwrap();
            let hg = load_hypergraph(&input).unwrap();
            let part = read_assignment(&output, hg.num_vertices()).unwrap();
            assert!(part.num_parts() <= 2);
        }
        fs::remove_file(input).ok();
        fs::remove_file(output).ok();
    }

    #[test]
    fn convert_then_compressed_lowmem_matches_the_transpose_path() {
        // The CI pipeline scenario: generate -> convert -> partition the
        // compressed file, diff against the uncompressed stream path.
        let input = sample_hgr();
        let hpz = temp_path("sample.hpz");
        execute(&Cli {
            command: Command::Convert {
                input: input.clone(),
                output: hpz.clone(),
                block_bytes: 128,
            },
        })
        .unwrap();
        assert!(storage::is_compressed_file(&hpz));

        let from_transpose = temp_path("assignment_transpose.txt");
        let from_compressed = temp_path("assignment_compressed.txt");
        let from_hpz = temp_path("assignment_hpz.txt");
        // Uncompressed baseline.
        execute(&Cli {
            command: LowMemArgs {
                seed: 5,
                output: Some(from_transpose.clone()),
                format: StreamFormat::Transpose,
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        // Same .hgr forced through the compressed reader (converted to a
        // temporary .hpz internally).
        execute(&Cli {
            command: LowMemArgs {
                seed: 5,
                output: Some(from_compressed.clone()),
                format: StreamFormat::Compressed,
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        // The pre-converted .hpz picked up by the auto sniff, prefetch off.
        execute(&Cli {
            command: LowMemArgs {
                seed: 5,
                output: Some(from_hpz.clone()),
                no_prefetch: true,
                ..LowMemArgs::new(hpz.clone(), 2)
            }
            .command(),
        })
        .unwrap();

        let baseline = fs::read_to_string(&from_transpose).unwrap();
        assert_eq!(baseline, fs::read_to_string(&from_compressed).unwrap());
        assert_eq!(baseline, fs::read_to_string(&from_hpz).unwrap());
        for p in [&input, &hpz, &from_transpose, &from_compressed, &from_hpz] {
            fs::remove_file(p).ok();
        }
    }

    #[test]
    fn lowmem_command_runs_bsp_sketched_restreaming_end_to_end() {
        // The acceptance scenario of the engine refactor: bulk-synchronous
        // workers over the sketched connectivity provider, with multi-pass
        // restreaming and sketch rebuilds, straight from the CLI.
        let input = sample_hgr();
        let output = temp_path("lowmem_bsp_assignment.txt");
        let json_out = temp_path("lowmem_bsp_report.json");
        execute(&Cli {
            command: LowMemArgs {
                passes: 2,
                rebuild_sketches: true,
                threads: 3,
                seed: 7,
                output: Some(output.clone()),
                json_out: Some(json_out.clone()),
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        let hg = load_hypergraph(&input).unwrap();
        let part = read_assignment(&output, hg.num_vertices()).unwrap();
        assert!(part.num_parts() <= 2);
        let json = fs::read_to_string(&json_out).unwrap();
        assert!(json.contains("\"algorithm\": \"lowmem-sketched\""));
        assert!(json.contains("\"lowmem\": {"));
        // The streamed quality evaluation back-fills the cut metrics.
        assert!(!json.contains("\"hyperedge_cut\": null"));
        fs::remove_file(input).ok();
        fs::remove_file(output).ok();
        fs::remove_file(json_out).ok();
    }

    #[test]
    fn lowmem_command_rejects_mtx_too_many_parts_and_exact_rebuilds() {
        let err = execute(&Cli {
            command: LowMemArgs::new(std::path::PathBuf::from("matrix.mtx"), 4).command(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("not streamable"));

        let input = sample_hgr();
        let err = execute(&Cli {
            command: LowMemArgs::new(input.clone(), 1000).command(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot split"));

        let err = execute(&Cli {
            command: LowMemArgs {
                exact: true,
                rebuild_sketches: true,
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap_err();
        fs::remove_file(input).ok();
        assert!(err.to_string().contains("rebuild-sketches"));
    }

    #[test]
    fn invalid_job_configs_surface_as_errors_not_panics() {
        let input = sample_hgr();
        // Zero lowmem passes reach the job API and come back as
        // InvalidConfig, not a panic or an infinite loop.
        let err = execute(&Cli {
            command: LowMemArgs {
                passes: 0,
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("streaming pass"));
        fs::remove_file(input).ok();
    }

    #[test]
    fn zero_threads_auto_detects_instead_of_erroring() {
        // `--threads 0` used to be an InvalidConfig; it now resolves to
        // the machine's available parallelism inside the job API.
        let input = sample_hgr();
        let output = temp_path("lowmem_auto_threads.txt");
        execute(&Cli {
            command: LowMemArgs {
                threads: 0,
                output: Some(output.clone()),
                ..LowMemArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        let hg = load_hypergraph(&input).unwrap();
        let part = read_assignment(&output, hg.num_vertices()).unwrap();
        assert!(part.num_parts() <= 2);
        fs::remove_file(input).ok();
        fs::remove_file(output).ok();
    }

    #[test]
    fn partition_command_runs_the_work_stealing_mode_end_to_end() {
        let input = sample_hgr();
        let json_out = temp_path("steal_report.json");
        execute(&Cli {
            command: PartitionArgs {
                algorithm: Algorithm::ParallelBasic,
                threads: Some(4),
                parallel_mode: ParallelMode::WorkStealing,
                json_out: Some(json_out.clone()),
                ..PartitionArgs::new(input.clone(), 2)
            }
            .command(),
        })
        .unwrap();
        let json = fs::read_to_string(&json_out).unwrap();
        assert!(json.contains("\"parallel_mode\": \"steal\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"sync_interval\": null"));
        fs::remove_file(input).ok();
        fs::remove_file(json_out).ok();
    }

    #[test]
    fn stats_and_profile_commands_run() {
        let input = sample_hgr();
        execute(&Cli {
            command: Command::Stats {
                input: input.clone(),
            },
        })
        .unwrap();
        let out = temp_path("bw.csv");
        execute(&Cli {
            command: Command::Profile {
                machine: MachinePreset::Archer,
                procs: 12,
                output: Some(out.clone()),
            },
        })
        .unwrap();
        assert!(fs::read_to_string(&out).unwrap().lines().count() == 12);
        fs::remove_file(input).ok();
        fs::remove_file(out).ok();
    }

    #[test]
    fn benchmark_command_uses_an_existing_assignment() {
        let input = sample_hgr();
        let hg = load_hypergraph(&input).unwrap();
        let assignment = temp_path("bench_assignment.txt");
        write_assignment(&assignment, &Partition::round_robin(hg.num_vertices(), 4)).unwrap();
        execute(&Cli {
            command: Command::Benchmark {
                input: input.clone(),
                assignment: assignment.clone(),
                machine: MachinePreset::Cluster,
                message_bytes: 128,
                supersteps: 2,
            },
        })
        .unwrap();
        fs::remove_file(input).ok();
        fs::remove_file(assignment).ok();
    }

    #[test]
    fn invalid_inputs_produce_errors_not_panics() {
        let missing = execute(&Cli {
            command: Command::Stats {
                input: temp_path("does_not_exist.hgr"),
            },
        });
        assert!(missing.is_err());
        let too_many_parts = {
            let input = sample_hgr();
            let r = execute(&Cli {
                command: PartitionArgs {
                    algorithm: Algorithm::RoundRobin,
                    ..PartitionArgs::new(input.clone(), 1000)
                }
                .command(),
            });
            fs::remove_file(input).ok();
            r
        };
        assert!(too_many_parts.is_err());
        let bad_profile = execute(&Cli {
            command: Command::Profile {
                machine: MachinePreset::Flat,
                procs: 1,
                output: None,
            },
        });
        assert!(bad_profile.is_err());
    }
}
